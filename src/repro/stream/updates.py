"""Edge-update batches: the unit of streaming graph mutation.

An :class:`UpdateBatch` is an ordered list of *edge* operations over the
graph's fixed node set — ``op = +1`` upserts the undirected edge
``{src, dst}`` at ``weight`` (insert if absent, reweight if present) and
``op = -1`` deletes it.  Order matters: the batch is applied
sequentially to the :class:`~repro.stream.dynamic.DynamicGraph` mirror,
so a later operation on the same edge wins.  Batches are value objects;
splitting and re-concatenating a batch yields the same applied effect,
which the metamorphic suite in ``tests/test_stream_incremental.py``
relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError

OP_UPSERT = 1
OP_DELETE = -1


class UpdateBatch:
    """An ordered batch of undirected edge upserts/deletes.

    Parameters
    ----------
    src, dst:
        Edge endpoints (global node ids, ``src != dst``).
    weight:
        Edge weight for upserts (must be > 0 there); ignored for deletes.
    op:
        ``+1`` (upsert) or ``-1`` (delete) per operation.
    """

    __slots__ = ("src", "dst", "weight", "op")

    def __init__(self, src, dst, weight, op) -> None:
        self.src = np.ascontiguousarray(src, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        self.weight = np.ascontiguousarray(weight, dtype=np.float64)
        self.op = np.ascontiguousarray(op, dtype=np.int8)
        n = self.src.shape[0]
        if not (self.dst.shape[0] == self.weight.shape[0]
                == self.op.shape[0] == n):
            raise GraphFormatError("update batch arrays must share length")
        if n and bool(np.any(self.src == self.dst)):
            raise GraphFormatError("self-loop in update batch")
        if n and not bool(np.all(np.isin(self.op, (OP_UPSERT, OP_DELETE)))):
            raise GraphFormatError("update ops must be +1 (upsert) or -1 "
                                   "(delete)")
        upsert = self.op == OP_UPSERT
        if n and bool(np.any(self.weight[upsert] <= 0.0)):
            raise GraphFormatError("upsert weights must be positive")

    def __len__(self) -> int:
        return int(self.src.shape[0])

    @property
    def n_upserts(self) -> int:
        return int(np.count_nonzero(self.op == OP_UPSERT))

    @property
    def n_deletes(self) -> int:
        return int(np.count_nonzero(self.op == OP_DELETE))

    @classmethod
    def empty(cls) -> "UpdateBatch":
        return cls(np.empty(0, np.int64), np.empty(0, np.int64),
                   np.empty(0, np.float64), np.empty(0, np.int8))

    @classmethod
    def concat(cls, batches) -> "UpdateBatch":
        """Concatenate batches in order (merge of a split stream)."""
        batches = list(batches)
        if not batches:
            return cls.empty()
        return cls(
            np.concatenate([b.src for b in batches]),
            np.concatenate([b.dst for b in batches]),
            np.concatenate([b.weight for b in batches]),
            np.concatenate([b.op for b in batches]),
        )

    def split(self, at: int) -> tuple["UpdateBatch", "UpdateBatch"]:
        """Split into (ops[:at], ops[at:]) preserving order."""
        if not 0 <= at <= len(self):
            raise GraphFormatError(f"split point {at} outside batch of "
                                   f"{len(self)}")
        return (
            UpdateBatch(self.src[:at], self.dst[:at],
                        self.weight[:at], self.op[:at]),
            UpdateBatch(self.src[at:], self.dst[at:],
                        self.weight[at:], self.op[at:]),
        )

    def inverse_of_inserts(self, graph_like) -> "UpdateBatch":
        """A batch that deletes every edge this batch would insert.

        ``graph_like`` must expose ``has_edge(u, v)`` for the *pre*-batch
        state; only upserts of edges absent there become deletes (a
        reweight's inverse would be the old weight, not a delete).
        Used by the insert-then-delete metamorphic test.
        """
        keep = [i for i in range(len(self))
                if self.op[i] == OP_UPSERT
                and not graph_like.has_edge(int(self.src[i]),
                                            int(self.dst[i]))]
        idx = np.asarray(keep, dtype=np.int64)
        return UpdateBatch(self.src[idx][::-1], self.dst[idx][::-1],
                           self.weight[idx][::-1],
                           np.full(idx.shape[0], OP_DELETE, np.int8))

    def describe(self) -> dict:
        return {
            "n_ops": len(self),
            "n_upserts": self.n_upserts,
            "n_deletes": self.n_deletes,
        }
