"""Two-phase distributed application of one update batch.

The driver coroutine stages one :class:`~repro.storage.shard_update.ShardUpdate`
on every shard (invisible to readers), then commits everywhere:

* any **stage** failure aborts the staged state on all shards — nothing
  was ever visible, the batch is simply not applied;
* any **commit** failure rolls every shard back to its retained
  pre-image — including shards whose commit *reply* was lost but whose
  commit applied (``rollback_updates`` restores either way);
* a rollback that itself fails permanently is reported as
  ``"inconsistent"`` — the typed :class:`~repro.errors.StreamIngestError`
  carries ``applied=None`` and the cluster needs operator attention.

So a batch is all-or-nothing across the cluster under drops, stragglers
and crash windows, which ``tests/test_failure_and_sync.py`` pins.

All traffic flows through the normal RPC layer (fault injection,
retries, ``rpc.*`` metrics, spans), and the driver runs identically on
the virtual-time scheduler and on
:class:`~repro.rpc.thread_runtime.ThreadRuntime`.  The one asymmetry
between the runtimes — the sim scheduler *throws* a failed future's
exception into the waiting coroutine, while the thread trampoline calls
``future.value()`` itself so the exception never reaches the generator —
is neutralized by *shielded futures*: wrappers that always resolve with
an ``("ok", value)`` / ``("err", exc)`` tuple, so the driver branches on
data instead of catching across a ``yield``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RpcTimeoutError, StreamIngestError, \
    WorkerCrashedError
from repro.rpc.retry import RetryPolicy
from repro.simt.events import WaitAll
from repro.simt.futures import SimFuture
from repro.storage.shard_update import ShardUpdate

#: injected-fault errors the two-phase driver tolerates and reacts to;
#: anything else (e.g. a ShardError) is a bug and propagates
TRANSPORT_ERRORS = (RpcTimeoutError, WorkerCrashedError)

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


@dataclass
class IngestReport:
    """Outcome of one distributed batch application."""

    tag: int
    status: str          # "applied" | "aborted" | "rolled_back" |
    #                      "inconsistent" | "empty"
    n_changed: int       # vertices whose rows the batch changed
    staged_rows: int     # core rows staged across all shards
    error: str | None
    retries: int         # RPC retransmissions the round needed

    @property
    def applied(self) -> bool:
        return self.status in ("applied", "empty")


# -- payload planning -------------------------------------------------------

def build_shard_payloads(sharded, dyn, changed) -> list[ShardUpdate]:
    """One :class:`ShardUpdate` per shard for the given changed vertices.

    ``dyn`` must already hold the *post*-batch adjacency.  Row targets
    carry owner addressing from ``sharded`` (ownership never changes
    during ingestion — only rebalancing moves vertices) and the targets'
    new weighted degrees, so shards apply rows without lookups.
    """
    k = sharded.n_shards
    changed = np.asarray(changed, dtype=np.int64)
    deg_wdeg = np.array([dyn.wdeg(int(v)) for v in changed],
                        dtype=np.float64)
    rows = {}
    for v in changed.tolist():
        gids, wts = dyn.row(v)
        loc, shd = sharded.address_of(gids)
        t_wdeg = np.array([dyn.wdeg(int(g)) for g in gids],
                          dtype=np.float64)
        rows[v] = (gids, wts, loc, shd, t_wdeg)

    # Halo refresh block: every changed vertex's full row, keyed and
    # sorted by packed owner address — identical for all shards.
    halo_keys = sharded.keys_of(changed) if len(changed) else _EMPTY_I
    order = np.argsort(halo_keys)
    h_vertices = changed[order]
    halo_keys = halo_keys[order]
    halo_src_wdeg = deg_wdeg[order]
    h_counts = np.array([rows[int(v)][0].shape[0] for v in h_vertices],
                        dtype=np.int64)
    halo_indptr = np.zeros(len(h_vertices) + 1, dtype=np.int64)
    np.cumsum(h_counts, out=halo_indptr[1:])
    halo = {name: (np.concatenate([rows[int(v)][i] for v in h_vertices])
                   if len(h_vertices) else empty)
            for i, (name, empty) in enumerate((
                ("global", _EMPTY_I), ("weight", _EMPTY_F),
                ("local", _EMPTY_I), ("shard", _EMPTY_I),
                ("wdeg", _EMPTY_F)))}

    payloads = []
    for p in range(k):
        owned = changed[sharded.owner_shard[changed] == p] \
            if len(changed) else changed
        lids = sharded.owner_local[owned] if len(owned) else _EMPTY_I
        counts = np.array([rows[int(v)][0].shape[0] for v in owned],
                          dtype=np.int64)
        indptr = np.zeros(len(owned) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])

        def _cat(i, empty):
            if not len(owned):
                return empty
            return np.concatenate([rows[int(v)][i] for v in owned])

        payloads.append(ShardUpdate(
            row_lids=lids, row_indptr=indptr,
            row_local=_cat(2, _EMPTY_I), row_shard=_cat(3, _EMPTY_I),
            row_global=_cat(0, _EMPTY_I), row_weight=_cat(1, _EMPTY_F),
            row_wdeg=_cat(4, _EMPTY_F),
            deg_gids=changed, deg_wdeg=deg_wdeg,
            halo_keys=halo_keys, halo_src_wdeg=halo_src_wdeg,
            halo_indptr=halo_indptr, halo_local=halo["local"],
            halo_shard=halo["shard"], halo_global=halo["global"],
            halo_weight=halo["weight"], halo_wdeg=halo["wdeg"],
        ))
    return payloads


# -- shielded futures -------------------------------------------------------

class _ThreadShield:
    """Wraps a ThreadFuture so ``value()`` returns a status tuple."""

    __slots__ = ("_fut",)

    def __init__(self, fut) -> None:
        self._fut = fut

    def value(self):
        try:
            return ("ok", self._fut.value())
        except TRANSPORT_ERRORS as exc:
            return ("err", exc)


def _shielded(fut):
    """A future resolving with ``("ok", v)`` / ``("err", exc)``.

    Transport faults become data; genuine handler errors still
    propagate (on the sim runtime via ``set_exception``, on threads by
    re-raising out of ``value()``).
    """
    if isinstance(fut, SimFuture):
        out = SimFuture(tag="stream.shield")

        def _done(f: SimFuture) -> None:
            exc = f.exception
            if exc is None:
                out.set_result(("ok", f.value()), f.ready_time)
            elif isinstance(exc, TRANSPORT_ERRORS):
                out.set_result(("err", exc), f.ready_time)
            else:
                out.set_exception(exc, f.ready_time)

        fut.add_done_callback(_done)
        return out
    return _ThreadShield(fut)


# -- the two-phase driver ---------------------------------------------------

def _phase(rrefs, caller, method, args_per_shard):
    """Issue one RPC per shard; collect all shielded outcomes."""
    futs = [_shielded(rrefs[p].rpc_async(caller, method, *args_per_shard[p]))
            for p in range(len(rrefs))]
    results = yield WaitAll(futs)
    return results


def ingest_driver(rrefs, caller, payloads, tag, metrics):
    """Coroutine body of the two-phase protocol (see module docstring).

    Never raises for transport faults — returns an outcome dict the
    runner converts into an :class:`IngestReport`, so both runtimes
    surface failures the same way.
    """
    k = len(rrefs)
    stage = yield from _phase(rrefs, caller, "stage_updates",
                              [(tag, payloads[p]) for p in range(k)])
    stage_errs = [val for status, val in stage if status == "err"]
    if stage_errs:
        metrics.inc("stream.stage_failures", len(stage_errs))
        metrics.inc("stream.batches_aborted")
        # Best-effort abort: staged state is invisible, so a lost abort
        # only leaves garbage the next stage_updates clears.
        yield from _phase(rrefs, caller, "abort_updates", [(tag,)] * k)
        return {"status": "aborted", "error": repr(stage_errs[0]),
                "staged_rows": 0}
    staged_rows = sum(int(val) for _, val in stage)
    metrics.inc("stream.staged_rows", staged_rows)

    commit = yield from _phase(rrefs, caller, "commit_updates", [(tag,)] * k)
    commit_errs = [val for status, val in commit if status == "err"]
    if not commit_errs:
        metrics.inc("stream.batches_committed")
        return {"status": "applied", "error": None,
                "staged_rows": staged_rows}
    metrics.inc("stream.commit_failures", len(commit_errs))
    rollback = yield from _phase(rrefs, caller, "rollback_updates",
                                 [(tag,)] * k)
    rollback_errs = [val for status, val in rollback if status == "err"]
    if rollback_errs:
        metrics.inc("stream.rollback_failures", len(rollback_errs))
        return {"status": "inconsistent", "error": repr(commit_errs[0]),
                "staged_rows": staged_rows}
    metrics.inc("stream.batches_rolled_back")
    return {"status": "rolled_back", "error": repr(commit_errs[0]),
            "staged_rows": staged_rows}


# -- runners (one per runtime) ----------------------------------------------

def _resolve_retry_policy(fault_plan, retry_policy):
    if retry_policy is None and fault_plan is not None \
            and not fault_plan.is_empty():
        return RetryPolicy()
    return retry_policy


def ingest_on_cluster(engine, payloads, tag, *, fault_plan=None,
                      retry_policy=None):
    """Apply one batch on a fresh virtual-time cluster.

    Returns ``(outcome dict, metrics registry, retries)``; the metrics
    carry this round's ``stream.*`` and ``rpc.*`` counters.
    """
    from repro.engine.cluster import SimCluster

    cfg = engine.config
    cluster = SimCluster(engine.sharded, cfg, fault_plan=fault_plan,
                         retry_policy=_resolve_retry_policy(fault_plan,
                                                            retry_policy))
    name = cluster.spawn_compute(0, 0, ingest_driver(
        cluster.rrefs, cfg.worker_name(0, 0), payloads, tag,
        cluster.obs.metrics))
    cluster.run()
    outcome = cluster.scheduler.result_of(name)
    return outcome, cluster.obs.metrics, cluster.ctx.retries


def ingest_on_threads(engine, payloads, tag, *, fault_plan=None,
                      retry_policy=None):
    """Apply one batch over :class:`ThreadRuntime` (same driver body)."""
    from repro.rpc.thread_runtime import ThreadRuntime

    cfg = engine.config
    runtime = ThreadRuntime(
        fault_plan=fault_plan,
        retry_policy=_resolve_retry_policy(fault_plan, retry_policy))
    rrefs = []
    try:
        for m in range(cfg.n_machines):
            runtime.register_server(cfg.server_name(m), m)
            rrefs.append(runtime.create_remote(
                cfg.server_name(m), "storage",
                lambda shard=engine.sharded.shards[m]: shard,
            ))
        name = cfg.worker_name(0, 0)
        runtime.register_worker(name, 0)
        runtime.spawn(name, ingest_driver(rrefs, name, payloads, tag,
                                          runtime.obs.metrics))
        runtime.join(timeout=180)
        outcome = runtime.process_of(name).result
    finally:
        runtime.shutdown()
    return outcome, runtime.obs.metrics, runtime.retries


def report_from_outcome(tag, outcome, n_changed, retries) -> IngestReport:
    return IngestReport(tag=int(tag), status=outcome["status"],
                        n_changed=int(n_changed),
                        staged_rows=int(outcome["staged_rows"]),
                        error=outcome["error"], retries=int(retries))


def raise_if_failed(report: IngestReport) -> None:
    """Typed atomicity escalation for a batch that did not apply."""
    if report.applied:
        return
    applied = None if report.status == "inconsistent" else False
    raise StreamIngestError(
        f"batch tag {report.tag} {report.status}: {report.error}",
        applied=applied)
