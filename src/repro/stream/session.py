"""Streaming entry point: updates and queries on one serving clock.

:class:`StreamingSession` owns the full streaming loop around one
:class:`~repro.engine.engine.GraphEngine`:

* **publish** — run admitted sources through the normal distributed
  batched engine and keep each query's exact ``(p, r)`` pair as an
  :class:`~repro.ppr.incremental.IncrementalState`;
* **ingest** — apply one :class:`~repro.stream.updates.UpdateBatch` to
  the driver-side :class:`~repro.stream.dynamic.DynamicGraph` mirror and
  to every shard through the atomic two-phase protocol
  (:mod:`repro.stream.ingest`); a batch that fails to apply reverts the
  mirror and raises :class:`~repro.errors.StreamIngestError`, so mirror
  and shards never diverge;
* **refresh** — fold the accumulated row diffs into every published
  vector by residual correction + signed re-push
  (:mod:`repro.ppr.incremental`) instead of recomputing from scratch;
* **rebalance** — between epochs, turn the fetch layer's accumulated
  heat into migrations/replications (:mod:`repro.stream.rebalance`).

Every step advances the serving clock only through the deterministic
:class:`StreamCostModel` (never wall time), and all distributed traffic
runs on the session's configured runtime — so the same event stream and
fault plan replay bitwise-identically on the virtual-time scheduler and
on :class:`~repro.rpc.thread_runtime.ThreadRuntime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import MetricsRegistry
from repro.ppr.incremental import IncrementalState, RefreshStats
from repro.ppr.incremental import refresh as refresh_state
from repro.ppr.params import PPRParams
from repro.serving.session import Query, Session, SessionConfig, \
    _batch_pushes
from repro.stream.dynamic import DynamicGraph
from repro.stream.ingest import IngestReport, build_shard_payloads, \
    ingest_on_cluster, ingest_on_threads, raise_if_failed, \
    report_from_outcome
from repro.stream.rebalance import RebalancePolicy, RebalanceReport, \
    execute_rebalance, plan_rebalance
from repro.stream.updates import UpdateBatch


@dataclass(frozen=True)
class StreamCostModel:
    """Deterministic virtual service time of streaming operations.

    Inputs are runtime-independent operator counts (staged rows, applied
    corrections, signed pushes, retry counts), so the serving clock
    advances identically on both runtimes.
    """

    batch_overhead: float = 2e-3   # two-phase round trips + bookkeeping
    per_row: float = 1e-4          # per core row staged across the cluster
    per_correction: float = 1e-6   # per residual correction folded in
    per_push: float = 5e-8         # per signed push (same rate as serving)
    per_retry: float = 1e-3        # per RPC retransmission
    per_move: float = 5e-3         # per rebalance decision executed

    def ingest_time(self, staged_rows: int, retries: int) -> float:
        return (self.batch_overhead + self.per_row * staged_rows
                + self.per_retry * retries)

    def refresh_time(self, corrections: int, pushes: int) -> float:
        return (self.per_correction * corrections
                + self.per_push * pushes)

    def rebalance_time(self, report: RebalanceReport) -> float:
        return (self.per_move * len(report.decisions)
                + self.per_retry * report.retries)


@dataclass(frozen=True)
class StreamEvent:
    """One item of a serving-clock event stream."""

    kind: str                      # "update" | "query" | "rebalance"
    batch: UpdateBatch | None = None
    source: int = -1
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.kind not in ("update", "query", "rebalance"):
            raise ValueError(f"unknown stream event kind {self.kind!r}")
        if self.kind == "update" and self.batch is None:
            raise ValueError("update events need a batch")
        if self.kind == "query" and self.source < 0:
            raise ValueError("query events need a source >= 0")


@dataclass
class StreamConfig:
    """Knobs of one streaming session."""

    runtime: str = "sim"           # "sim" | "threads"
    params: PPRParams | None = None
    #: refresh published vectors every N *applied* batches
    refresh_every: int = 1
    fault_plan: object = None
    retry_policy: object = None
    rebalance: RebalancePolicy = field(default_factory=RebalancePolicy)
    cost_model: StreamCostModel = field(default_factory=StreamCostModel)
    #: inner serving-session knobs; built from the fields above if None
    serving: SessionConfig | None = None
    max_pushes: int | None = None
    #: sample a serving-clock Timeline (repro.obs.analysis) after every
    #: streaming step; count-derived, so it replays bitwise on both runtimes
    timeline: bool = False

    def __post_init__(self) -> None:
        if self.runtime not in ("sim", "threads"):
            raise ValueError(f"runtime must be sim|threads, "
                             f"got {self.runtime!r}")
        if self.refresh_every <= 0:
            raise ValueError(f"refresh_every must be > 0, "
                             f"got {self.refresh_every}")


@dataclass
class StreamReport:
    """Cumulative outcome of one streaming session."""

    n_batches: int = 0
    n_applied: int = 0
    n_failed: int = 0
    n_queries: int = 0
    n_refreshes: int = 0
    clock: float = 0.0
    ingest_reports: list = field(default_factory=list)
    refresh_stats: list = field(default_factory=list)
    rebalance_reports: list = field(default_factory=list)


class StreamingSession:
    """Deterministic interleaving of updates and queries (see module doc)."""

    def __init__(self, engine, config: StreamConfig | None = None) -> None:
        self.engine = engine
        self.config = config if config is not None else StreamConfig()
        cfg = self.config
        serving_cfg = cfg.serving
        if serving_cfg is None:
            serving_cfg = SessionConfig(
                mode="batched", runtime=cfg.runtime, params=cfg.params,
                fault_plan=cfg.fault_plan, retry_policy=cfg.retry_policy,
            )
        #: inner admission/drain front end; owns the serving clock
        self.serving = Session(engine, serving_cfg)
        #: authoritative mutable adjacency, kept in lockstep with shards
        self.dyn = DynamicGraph.from_csr(engine.graph)
        #: source gid -> incrementally maintained (p, r)
        self.states: dict[int, IncrementalState] = {}
        #: accumulated fetch heat: machine -> {packed key -> count}
        self.heat: dict[int, dict[int, int]] = {}
        #: stream.* / rebalance.* counters plus merged per-round registries
        self.metrics = MetricsRegistry()
        self.report = StreamReport()
        self._tag = 0
        self._since_refresh = 0
        #: serving-clock Timeline when StreamConfig(timeline=True)
        self.timeline = None
        if cfg.timeline:
            from repro.obs.analysis.timeline import Timeline

            self.timeline = Timeline()
            self._sample_timeline()

    def _sample_timeline(self) -> None:
        """Snapshot the stream.*/serve.* watch lists at the serving clock."""
        from repro.obs.analysis.timeline import SESSION_WATCH, \
            STREAM_WATCH, sample_counters

        values = sample_counters(self.metrics, STREAM_WATCH)
        values.update(sample_counters(self.serving.metrics, SESSION_WATCH))
        values["serve.clock"] = self.now
        values["serve.queue_depth"] = self.serving.admission.depth
        self.timeline.sample(self.now, values)

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.serving.now

    def _advance(self, dt: float) -> None:
        self.serving.advance_to(self.serving.now + dt)

    # -- publish ------------------------------------------------------------
    def publish(self, sources) -> None:
        """Run ``sources`` through the batched engine; keep exact states.

        Each published vector's ``(p, r)`` pair comes straight out of the
        distributed ``MultiSSPPR`` — the very pair both runtimes produce
        bitwise-identically — and is maintained incrementally from then
        on.
        """
        from repro.engine.request import RunRequest

        cfg = self.config
        params = cfg.params if cfg.params is not None else PPRParams()
        sources = np.asarray(sources, dtype=np.int64)
        result = self.serving.run(RunRequest(
            sources=sources, params=params, mode="batched",
            keep_states=True, fault_plan=cfg.fault_plan,
            retry_policy=cfg.retry_policy,
        ))
        n = self.engine.graph.n_nodes
        sharded = self.engine.sharded
        for gid in sources.tolist():
            view = result.states[gid]
            p = view.dense_result(sharded, n)
            r = view.multi.dense_residual_for(view.qid, sharded, n)
            self.states[gid] = IncrementalState(gid, params, p, r)
        self._merge_heat(result.heat)
        self.metrics.merge(result.obs.metrics)
        self.metrics.inc("stream.published", len(sources))
        self._advance(self.serving.config.cost_model.service_time(
            n_queries=len(sources), n_pushes=_batch_pushes(result.states),
            n_walk_steps=0, n_retries=result.retries))
        if self.timeline is not None:
            self._sample_timeline()

    # -- ingest -------------------------------------------------------------
    def ingest(self, batch: UpdateBatch) -> IngestReport:
        """Apply one update batch atomically to mirror + shards.

        Pre-rows are captured for every published state *before* the
        mirror mutates (first touch since the last refresh wins), then
        the batch goes through the two-phase shard protocol.  On any
        distributed failure the mirror is reverted bitwise and a
        :class:`~repro.errors.StreamIngestError` is raised — the graph
        is unchanged everywhere.
        """
        cfg = self.config
        cm = cfg.cost_model
        self._tag += 1
        tag = self._tag
        self.report.n_batches += 1
        self.metrics.inc("stream.batches")
        if len(batch):
            touched = np.unique(np.concatenate([batch.src, batch.dst]))
            for state in self.states.values():
                state.capture_pre_rows(self.dyn, touched)
        delta = self.dyn.apply(batch)
        if not delta:
            report = IngestReport(tag=tag, status="empty", n_changed=0,
                                  staged_rows=0, error=None, retries=0)
            self.report.ingest_reports.append(report)
            self.report.n_applied += 1
            self._advance(cm.batch_overhead)
            if self.timeline is not None:
                self._sample_timeline()
            return report

        payloads = build_shard_payloads(self.engine.sharded, self.dyn,
                                        delta.changed)
        runner = (ingest_on_threads if cfg.runtime == "threads"
                  else ingest_on_cluster)
        outcome, metrics, retries = runner(
            self.engine, payloads, tag,
            fault_plan=cfg.fault_plan, retry_policy=cfg.retry_policy)
        self.metrics.merge(metrics)
        report = report_from_outcome(tag, outcome, delta.n_changed, retries)
        self.report.ingest_reports.append(report)
        self._advance(cm.ingest_time(report.staged_rows, retries))
        if not report.applied:
            self.dyn.revert(delta)
            self.report.n_failed += 1
            raise_if_failed(report)
        self.report.n_applied += 1
        self.metrics.inc("stream.arcs_inserted", delta.arcs_inserted)
        self.metrics.inc("stream.arcs_deleted", delta.arcs_deleted)
        self.metrics.inc("stream.arcs_reweighted", delta.arcs_reweighted)
        # Keep the engine's frozen view current for later (re)builds.
        self.engine.graph = self.dyn.snapshot()
        self.engine.sharded.graph = self.engine.graph
        self._since_refresh += 1
        if self._since_refresh >= cfg.refresh_every:
            self.refresh()
        if self.timeline is not None:
            self._sample_timeline()
        return report

    # -- incremental maintenance --------------------------------------------
    def refresh(self) -> list[RefreshStats]:
        """Fold pending row diffs into every published vector."""
        cfg = self.config
        stats: list[RefreshStats] = []
        for gid in sorted(self.states):
            stats.append(refresh_state(self.states[gid], self.dyn,
                                       max_pushes=cfg.max_pushes))
        self._since_refresh = 0
        if not self.states:
            return stats
        corrections = sum(s.n_corrections for s in stats)
        pushes = sum(s.n_pushes for s in stats)
        self.report.n_refreshes += 1
        self.report.refresh_stats.append(stats)
        self.metrics.inc("stream.refreshes")
        self.metrics.inc("stream.refresh_corrections", corrections)
        self.metrics.inc("stream.refresh_pushes", pushes)
        self._advance(cfg.cost_model.refresh_time(corrections, pushes))
        if self.timeline is not None:
            self._sample_timeline()
        return stats

    # -- queries ------------------------------------------------------------
    def submit(self, source: int, *, tenant: str = "default"):
        """Admit one SSPPR query at the current serving clock."""
        self.report.n_queries += 1
        self.metrics.inc("stream.queries")
        return self.serving.submit(Query(source=int(source)), tenant=tenant)

    def drain(self):
        """Execute pending admitted queries; harvest their fetch heat."""
        if not self.serving.pending:
            return None
        result = self.serving.drain()
        self._merge_heat(result.heat)
        if self.timeline is not None:
            self._sample_timeline()
        return result

    def _merge_heat(self, heat) -> None:
        for machine, hmap in heat.items():
            acc = self.heat.setdefault(machine, {})
            for key, count in hmap.items():
                acc[key] = acc.get(key, 0) + count

    # -- rebalancing --------------------------------------------------------
    def epoch_rebalance(self) -> RebalanceReport:
        """Act on the epoch's accumulated heat; reset it afterwards."""
        cfg = self.config
        self.drain()
        plan = plan_rebalance(self.engine.sharded, self.heat,
                              cfg.rebalance)
        if plan:
            for metrics in execute_rebalance(
                    self.engine, plan, runtime=cfg.runtime,
                    fault_plan=cfg.fault_plan,
                    retry_policy=cfg.retry_policy):
                self.metrics.merge(metrics)
            self._advance(cfg.cost_model.rebalance_time(plan))
        self.heat = {}
        self.metrics.inc("rebalance.epochs")
        self.metrics.inc("rebalance.migrations_planned", plan.n_migrated)
        self.metrics.inc("rebalance.replications_planned",
                         plan.n_replicated)
        self.report.rebalance_reports.append(plan)
        if self.timeline is not None:
            self._sample_timeline()
        return plan

    # -- the loop -----------------------------------------------------------
    def run_stream(self, events) -> StreamReport:
        """Process an event sequence in order; return the session report.

        Update and rebalance events first drain pending queries, so each
        admitted batch executes against one consistent snapshot; a final
        drain and (if diffs are pending) refresh leave the published
        vectors current.
        """
        for event in events:
            if event.kind == "update":
                self.drain()
                self.ingest(event.batch)
            elif event.kind == "query":
                self.submit(event.source, tenant=event.tenant)
            else:
                self.epoch_rebalance()
        self.drain()
        if self._since_refresh:
            self.refresh()
        self.report.clock = self.now
        self.metrics.merge(self.serving.metrics)
        return self.report

    # -- results ------------------------------------------------------------
    def published(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        """The maintained ``(p, r)`` pair of one published source."""
        state = self.states[int(source)]
        return state.p, state.r
