"""Telemetry-driven shard rebalancing (``repro.stream.rebalance``).

The fetch layer records per-machine *heat*: how often each remote row
(packed owner key) was requested during a serving epoch
(:class:`~repro.engine.engine.QueryRunResult.heat`).  Between epochs the
planner turns that demand into deterministic decisions:

* **migrate** — one requester dominates a hot vertex's traffic and is
  not its owner: move the vertex to that shard.  The copy is executed
  as normal RPC traffic (``get_neighbor_batch`` from the old owner,
  ``install_halo_rows`` on the new one — both priced, retried, and
  fault-injected like any other message), then the new assignment is
  rebuilt deterministically with
  :func:`~repro.storage.build.build_shards`.
* **replicate** — demand is spread across requesters: push the row into
  each requester's halo cache (``install_halo_rows``), so future
  fetches are partial-halo hits instead of remote misses.

Planning is pure and runs driver-side; only execution touches the
network.  Identical heat maps yield identical decisions and identical
RPC sequences on both runtimes, which the differential suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simt.events import Wait, WaitAll
from repro.stream.ingest import _resolve_retry_policy


@dataclass(frozen=True)
class RebalanceDecision:
    """One planned action on one hot boundary vertex."""

    vertex: int               # global id
    action: str               # "migrate" | "replicate"
    src_shard: int            # current owner
    dst_shards: tuple         # migrate: (new owner,); replicate: requesters
    heat: int                 # remote-row requests observed this epoch


@dataclass(frozen=True)
class RebalancePolicy:
    """Deterministic knobs of the planner (all thresholds inclusive)."""

    top_k: int = 8            # max vertices acted on per epoch
    min_heat: int = 4         # ignore vertices requested fewer times
    migrate_frac: float = 0.6  # one requester >= this share -> migrate
    max_migrations: int = 4   # cap on ownership changes per epoch


@dataclass
class RebalanceReport:
    """Planned (and, after execution, performed) epoch rebalancing."""

    decisions: list = field(default_factory=list)
    moves: dict = field(default_factory=dict)   # gid -> new owner shard
    n_migrated: int = 0
    n_replicated: int = 0
    bytes_copied: int = 0     # filled by execution
    retries: int = 0          # filled by execution

    def __bool__(self) -> bool:
        return bool(self.decisions)


def plan_rebalance(sharded, heat_maps, policy=None) -> RebalanceReport:
    """Turn per-machine heat into a deterministic action plan.

    ``heat_maps`` is ``machine -> {packed owner key -> request count}``
    as gathered by :class:`~repro.storage.fetch.NeighborFetchService`.
    Candidates are ranked by total demand (ties by global id), capped at
    ``policy.top_k``; a vertex migrates when one requester holds at
    least ``migrate_frac`` of its demand, otherwise its row is
    replicated to every requester.  Migrations never empty a shard.
    """
    if policy is None:
        policy = RebalancePolicy()
    totals: dict[int, int] = {}
    by: dict[int, dict[int, int]] = {}
    for machine in sorted(heat_maps):
        hmap = heat_maps[machine]
        if not hmap:
            continue
        keys = np.fromiter(sorted(hmap), dtype=np.int64, count=len(hmap))
        gids = sharded.globals_from_keys(keys)
        for key, gid in zip(keys.tolist(), gids.tolist()):
            count = int(hmap[key])
            totals[gid] = totals.get(gid, 0) + count
            acc = by.setdefault(gid, {})
            acc[machine] = acc.get(machine, 0) + count

    candidates = sorted(
        (g for g, t in totals.items() if t >= policy.min_heat),
        key=lambda g: (-totals[g], g))[:max(policy.top_k, 0)]

    sizes = np.bincount(sharded.owner_shard,
                        minlength=sharded.n_shards).tolist()
    report = RebalanceReport()
    for gid in candidates:
        owner = int(sharded.owner_shard[gid])
        requesters = {m: c for m, c in by[gid].items() if m != owner}
        if not requesters:
            continue
        total = totals[gid]
        top_m, top_c = min(requesters.items(),
                           key=lambda mc: (-mc[1], mc[0]))
        if (top_c >= policy.migrate_frac * total
                and report.n_migrated < policy.max_migrations
                and sizes[owner] > 1):
            report.decisions.append(RebalanceDecision(
                vertex=int(gid), action="migrate", src_shard=owner,
                dst_shards=(top_m,), heat=total))
            report.moves[int(gid)] = top_m
            report.n_migrated += 1
            sizes[owner] -= 1
            sizes[top_m] += 1
        else:
            report.decisions.append(RebalanceDecision(
                vertex=int(gid), action="replicate", src_shard=owner,
                dst_shards=tuple(sorted(requesters)), heat=total))
            report.n_replicated += 1
    return report


# -- execution --------------------------------------------------------------

def _jobs_for(sharded, decisions):
    """Resolve decisions against the *current* address book."""
    jobs = []
    for d in decisions:
        lid = int(sharded.owner_local[d.vertex])
        key = int(sharded.keys_of(
            np.array([d.vertex], dtype=np.int64))[0])
        jobs.append((d.vertex, d.src_shard, lid, key, d.dst_shards))
    return jobs


def rebalance_driver(rrefs, caller, jobs, metrics):
    """Move/replicate rows as ordinary RPC traffic (coroutine body).

    Per job: one ``get_neighbor_batch`` from the owner (the copy), then
    one ``install_halo_rows`` per destination — so drops, retries,
    spans and payload pricing all apply.
    """
    bytes_copied = 0
    for _vertex, src, lid, key, dsts in jobs:
        fut = rrefs[src].rpc_async(caller, "get_neighbor_batch",
                                   np.array([lid], dtype=np.int64))
        batch = yield Wait(fut)
        bytes_copied += batch.rpc_payload()[0]
        keys = np.array([key], dtype=np.int64)
        futs = [rrefs[d].rpc_async(
                    caller, "install_halo_rows", keys, batch.source_wdeg,
                    batch.indptr, batch.local_ids, batch.shard_ids,
                    batch.global_ids, batch.weights,
                    batch.weighted_degrees)
                for d in dsts]
        counts = yield WaitAll(futs)
        metrics.inc("rebalance.rows_installed",
                    sum(int(c) for c in counts))
    metrics.inc("rebalance.bytes_copied", bytes_copied)
    return {"bytes_copied": bytes_copied}


def rebalance_on_cluster(engine, jobs, *, fault_plan=None,
                         retry_policy=None):
    """One traffic round on a fresh virtual-time cluster."""
    from repro.engine.cluster import SimCluster

    cfg = engine.config
    cluster = SimCluster(engine.sharded, cfg, fault_plan=fault_plan,
                         retry_policy=_resolve_retry_policy(fault_plan,
                                                            retry_policy))
    name = cluster.spawn_compute(0, 0, rebalance_driver(
        cluster.rrefs, cfg.worker_name(0, 0), jobs, cluster.obs.metrics))
    cluster.run()
    outcome = cluster.scheduler.result_of(name)
    return outcome, cluster.obs.metrics, cluster.ctx.retries


def rebalance_on_threads(engine, jobs, *, fault_plan=None,
                         retry_policy=None):
    """Same traffic round over :class:`ThreadRuntime`."""
    from repro.rpc.thread_runtime import ThreadRuntime

    cfg = engine.config
    runtime = ThreadRuntime(
        fault_plan=fault_plan,
        retry_policy=_resolve_retry_policy(fault_plan, retry_policy))
    rrefs = []
    try:
        for m in range(cfg.n_machines):
            runtime.register_server(cfg.server_name(m), m)
            rrefs.append(runtime.create_remote(
                cfg.server_name(m), "storage",
                lambda shard=engine.sharded.shards[m]: shard,
            ))
        name = cfg.worker_name(0, 0)
        runtime.register_worker(name, 0)
        runtime.spawn(name, rebalance_driver(rrefs, name, jobs,
                                             runtime.obs.metrics))
        runtime.join(timeout=180)
        outcome = runtime.process_of(name).result
    finally:
        runtime.shutdown()
    return outcome, runtime.obs.metrics, runtime.retries


def execute_rebalance(engine, report: RebalanceReport, *, runtime="sim",
                      fault_plan=None, retry_policy=None):
    """Execute a plan against ``engine``; returns the rounds' metrics.

    Two traffic rounds at most: the migration copies run first, then the
    shards are rebuilt deterministically from ``engine.graph`` under the
    moved assignment, then replications install rows against the *new*
    address book.  Mutates ``engine.sharded`` in place and fills the
    report's ``bytes_copied`` / ``retries``.
    """
    from repro.storage.build import build_shards

    run = (rebalance_on_threads if runtime == "threads"
           else rebalance_on_cluster)
    migr = [d for d in report.decisions if d.action == "migrate"]
    repl = [d for d in report.decisions if d.action == "replicate"]
    metrics_list = []
    if migr:
        outcome, metrics, retries = run(
            engine, _jobs_for(engine.sharded, migr),
            fault_plan=fault_plan, retry_policy=retry_policy)
        metrics.inc("rebalance.migrations", len(migr))
        report.bytes_copied += int(outcome["bytes_copied"])
        report.retries += int(retries)
        metrics_list.append(metrics)
        new_result = engine.sharded.result.with_moves(report.moves)
        engine.sharded = build_shards(
            engine.graph, new_result, seed=engine.config.seed,
            halo_hops=engine.config.halo_hops)
    if repl:
        outcome, metrics, retries = run(
            engine, _jobs_for(engine.sharded, repl),
            fault_plan=fault_plan, retry_policy=retry_policy)
        metrics.inc("rebalance.replications", len(repl))
        report.bytes_copied += int(outcome["bytes_copied"])
        report.retries += int(retries)
        metrics_list.append(metrics)
    return metrics_list
