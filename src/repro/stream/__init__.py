"""Streaming graph updates (``repro.stream``).

The engine's graphs were static until this package: an edge stream is a
seeded sequence of :class:`UpdateBatch` objects (GDELT-style batched
inserts/deletes over a fixed node set), applied

* to a driver-side :class:`DynamicGraph` mirror (the authoritative mutable
  adjacency, snapshot-able back to :class:`~repro.graph.csr.CSRGraph`), and
* to the deployed :class:`~repro.storage.shard.GraphShard` objects through
  an atomic two-phase RPC protocol (:mod:`repro.stream.ingest`) that is
  visible to obs/chaos like any other traffic.

Published PPR vectors are maintained *incrementally*
(:mod:`repro.ppr.incremental`) instead of recomputed, and observed
``fetch.*`` heat drives shard rebalancing (:mod:`repro.stream.rebalance`).
:class:`StreamingSession` ties all of it to the serving clock.  See
docs/streaming.md.
"""

from repro.stream.dynamic import AppliedDelta, DynamicGraph
from repro.stream.generator import TemporalEdgeStream
from repro.stream.ingest import (
    IngestReport,
    ShardUpdate,
    StreamIngestError,
    build_shard_payloads,
    ingest_on_cluster,
    ingest_on_threads,
)
from repro.stream.rebalance import (
    RebalanceDecision,
    RebalancePolicy,
    RebalanceReport,
    plan_rebalance,
)
from repro.stream.session import (
    StreamConfig,
    StreamCostModel,
    StreamEvent,
    StreamingSession,
    StreamReport,
)
from repro.stream.updates import UpdateBatch

__all__ = [
    "AppliedDelta",
    "DynamicGraph",
    "IngestReport",
    "RebalanceDecision",
    "RebalancePolicy",
    "RebalanceReport",
    "ShardUpdate",
    "StreamConfig",
    "StreamCostModel",
    "StreamEvent",
    "StreamIngestError",
    "StreamReport",
    "StreamingSession",
    "TemporalEdgeStream",
    "UpdateBatch",
    "build_shard_payloads",
    "ingest_on_cluster",
    "ingest_on_threads",
    "plan_rebalance",
]
