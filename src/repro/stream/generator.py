"""Seeded temporal edge-stream generator.

Produces GDELT-style timestamped batches of edge events over a *fixed*
node set (the temporal-graph datasets the GDELT loader ships batch
timestamped event edges between a fixed entity vocabulary; streams here
never add or remove nodes).  Each event is either an upsert — a new
edge, or a re-observation of an existing edge at a fresh weight — or a
deletion of a currently-live edge.  The generator tracks the live edge
set so deletes always target existing edges, and every draw flows from
:func:`repro.utils.rng.rng_from_seed`, making the stream a pure
function of its seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.stream.updates import OP_DELETE, OP_UPSERT, UpdateBatch
from repro.utils.rng import rng_from_seed


class TemporalEdgeStream:
    """Deterministic stream of :class:`UpdateBatch` objects.

    Parameters
    ----------
    graph:
        Starting graph; its undirected edge set seeds the live set.
    seed:
        Stream seed (independent of the graph/partition seeds).
    batch_size:
        Events per batch.
    insert_frac:
        Probability an event is an upsert (vs. a delete of a live
        edge).  When no edges remain, events are forced to upserts.
    weight_low, weight_high:
        Uniform range for upsert weights.
    """

    def __init__(self, graph: CSRGraph, *, seed: int, batch_size: int = 16,
                 insert_frac: float = 0.6, weight_low: float = 0.5,
                 weight_high: float = 1.5) -> None:
        if graph.n_nodes < 2:
            raise GraphFormatError("stream needs at least 2 nodes")
        if batch_size < 1:
            raise GraphFormatError("batch_size must be >= 1")
        if not 0.0 <= insert_frac <= 1.0:
            raise GraphFormatError("insert_frac must be in [0, 1]")
        if not 0.0 < weight_low <= weight_high:
            raise GraphFormatError("need 0 < weight_low <= weight_high")
        self.n_nodes = graph.n_nodes
        self.batch_size = int(batch_size)
        self.insert_frac = float(insert_frac)
        self.weight_low = float(weight_low)
        self.weight_high = float(weight_high)
        # Domain-separated child stream: independent of the graph /
        # partition / walk streams even under equal integer seeds.
        self._rng = rng_from_seed(np.random.SeedSequence([0x57E4, seed]))
        self._t = 0
        # Live undirected edges as (u, v) with u < v: a list for O(1)
        # uniform sampling plus an index map for O(1) membership/removal.
        self._edges: list[tuple[int, int]] = []
        self._index: dict[tuple[int, int], int] = {}
        for u in range(graph.n_nodes):
            for v in graph.neighbors(u):
                v = int(v)
                if u < v:
                    self._index[(u, v)] = len(self._edges)
                    self._edges.append((u, v))

    @property
    def n_live_edges(self) -> int:
        return len(self._edges)

    @property
    def t(self) -> int:
        """Number of batches emitted so far (the stream clock)."""
        return self._t

    def _add(self, key: tuple[int, int]) -> None:
        if key not in self._index:
            self._index[key] = len(self._edges)
            self._edges.append(key)

    def _remove(self, key: tuple[int, int]) -> None:
        pos = self._index.pop(key)
        last = self._edges.pop()
        if pos < len(self._edges):
            self._edges[pos] = last
            self._index[last] = pos

    def next_batch(self) -> UpdateBatch:
        """Generate the next batch and advance the live edge set."""
        rng = self._rng
        src = np.empty(self.batch_size, dtype=np.int64)
        dst = np.empty(self.batch_size, dtype=np.int64)
        weight = np.empty(self.batch_size, dtype=np.float64)
        op = np.empty(self.batch_size, dtype=np.int8)
        for i in range(self.batch_size):
            do_insert = (not self._edges
                         or float(rng.random()) < self.insert_frac)
            if do_insert:
                u = int(rng.integers(self.n_nodes))
                v = int(rng.integers(self.n_nodes - 1))
                if v >= u:
                    v += 1  # uniform over pairs with v != u
                w = float(rng.uniform(self.weight_low, self.weight_high))
                key = (u, v) if u < v else (v, u)
                self._add(key)
                src[i], dst[i], weight[i], op[i] = u, v, w, OP_UPSERT
            else:
                key = self._edges[int(rng.integers(len(self._edges)))]
                self._remove(key)
                src[i], dst[i], weight[i], op[i] = key[0], key[1], 1.0, \
                    OP_DELETE
        self._t += 1
        return UpdateBatch(src, dst, weight, op)

    def batches(self, n: int) -> list[UpdateBatch]:
        """The next ``n`` batches, in stream order."""
        return [self.next_batch() for _ in range(n)]
