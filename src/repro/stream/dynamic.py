"""Driver-side mutable mirror of the deployed graph.

:class:`DynamicGraph` is the authoritative adjacency during streaming:
update batches apply here first, then the resulting *row replacements*
are shipped to the shards (:mod:`repro.stream.ingest`).  Two invariants
make the metamorphic exactness guarantees of the incremental PPR layer
possible:

* ``row(u)`` is always returned sorted by neighbor id, and
* ``wdeg(u)`` is recomputed on demand as the sum over that sorted row —
  never maintained incrementally — so that restoring a row's content
  (e.g. insert-then-delete of the same edge) restores its weighted
  degree *bitwise*.

The mirror stores undirected edges as two arcs, rejects self-loops, and
``snapshot()`` produces a :class:`~repro.graph.csr.CSRGraph` equal to
what ``CSRGraph.from_edges`` would build from the current edge set.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.stream.updates import OP_DELETE, OP_UPSERT, UpdateBatch

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_W = np.empty(0, dtype=np.float64)


class AppliedDelta:
    """Effect of one applied batch: changed vertices + arc-level counts.

    ``undo`` records, in application order, ``(u, v, prev_weight)``
    per effective edge change (``prev_weight is None`` for an insert),
    so :meth:`DynamicGraph.revert` can restore the mirror bitwise when
    the distributed application of the batch fails.
    """

    __slots__ = ("changed", "arcs_inserted", "arcs_deleted",
                 "arcs_reweighted", "undo")

    def __init__(self, changed: np.ndarray, arcs_inserted: int,
                 arcs_deleted: int, arcs_reweighted: int,
                 undo: list) -> None:
        self.changed = changed  # sorted int64 vertex ids with changed rows
        self.arcs_inserted = arcs_inserted
        self.arcs_deleted = arcs_deleted
        self.arcs_reweighted = arcs_reweighted
        self.undo = undo

    @property
    def n_changed(self) -> int:
        return int(self.changed.shape[0])

    def __bool__(self) -> bool:
        return self.n_changed > 0


class DynamicGraph:
    """Mutable undirected adjacency over a fixed node set."""

    __slots__ = ("n_nodes", "_adj")

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 0:
            raise GraphFormatError(f"n_nodes must be >= 0, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self._adj: list[dict[int, float]] = [{} for _ in range(n_nodes)]

    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "DynamicGraph":
        """Mirror a (symmetrized) CSR graph."""
        dyn = cls(graph.n_nodes)
        for u in range(graph.n_nodes):
            nbrs = graph.neighbors(u)
            wts = graph.neighbor_weights(u)
            dyn._adj[u] = {int(v): float(w) for v, w in zip(nbrs, wts)}
        return dyn

    # -- queries ----------------------------------------------------------
    @property
    def n_arcs(self) -> int:
        return sum(len(row) for row in self._adj)

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def row(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """Neighbor ids (sorted ascending) and aligned weights of ``u``."""
        adj = self._adj[u]
        if not adj:
            return _EMPTY_IDS, _EMPTY_W
        gids = np.fromiter(sorted(adj), dtype=np.int64, count=len(adj))
        wts = np.array([adj[int(g)] for g in gids], dtype=np.float64)
        return gids, wts

    def wdeg(self, u: int) -> float:
        """Weighted degree, recomputed from the sorted row on demand.

        Deliberately *not* maintained incrementally: the value is a pure
        function of the row content, so restoring a row restores its
        weighted degree bitwise — load-bearing for the metamorphic
        exactness checks.
        """
        _, wts = self.row(u)
        return float(np.sum(wts)) if wts.shape[0] else 0.0

    # -- mutation ---------------------------------------------------------
    def apply(self, batch: UpdateBatch) -> AppliedDelta:
        """Apply a batch sequentially; report the effective delta.

        No-ops (delete of an absent edge, upsert at the existing weight)
        change nothing and mark nothing changed.
        """
        changed: set[int] = set()
        undo: list[tuple[int, int, float | None]] = []
        inserted = deleted = reweighted = 0
        for i in range(len(batch)):
            u = int(batch.src[i])
            v = int(batch.dst[i])
            if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
                raise GraphFormatError(
                    f"edge ({u}, {v}) outside fixed node set of "
                    f"{self.n_nodes} (streams never add nodes)")
            op = int(batch.op[i])
            if op == OP_UPSERT:
                w = float(batch.weight[i])
                prev = self._adj[u].get(v)
                if prev is not None and prev == w:
                    continue
                undo.append((u, v, prev))
                self._adj[u][v] = w
                self._adj[v][u] = w
                if prev is None:
                    inserted += 1
                else:
                    reweighted += 1
                changed.add(u)
                changed.add(v)
            elif op == OP_DELETE:
                prev = self._adj[u].get(v)
                if prev is None:
                    continue
                undo.append((u, v, prev))
                del self._adj[u][v]
                del self._adj[v][u]
                deleted += 1
                changed.add(u)
                changed.add(v)
        out = np.fromiter(sorted(changed), dtype=np.int64,
                          count=len(changed))
        return AppliedDelta(out, inserted, deleted, reweighted, undo)

    def revert(self, delta: AppliedDelta) -> None:
        """Undo an applied batch, restoring every touched row bitwise.

        Replays the delta's undo log in reverse: each edge returns to
        its exact previous weight (or absence), so rows — and therefore
        the on-demand weighted degrees — match their pre-batch values
        bit for bit.  Used when the distributed two-phase application
        of the batch aborts or rolls back.
        """
        for u, v, prev in reversed(delta.undo):
            if prev is None:
                self._adj[u].pop(v, None)
                self._adj[v].pop(u, None)
            else:
                self._adj[u][v] = prev
                self._adj[v][u] = prev

    # -- export -----------------------------------------------------------
    def snapshot(self) -> CSRGraph:
        """Freeze the current adjacency as an immutable CSR graph."""
        counts = np.fromiter((len(row) for row in self._adj),
                             dtype=np.int64, count=self.n_nodes)
        indptr = np.zeros(self.n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.empty(total, dtype=np.int64)
        weights = np.empty(total, dtype=np.float64)
        for u in range(self.n_nodes):
            gids, wts = self.row(u)
            s, e = indptr[u], indptr[u + 1]
            indices[s:e] = gids
            weights[s:e] = wts
        return CSRGraph(self.n_nodes, indptr, indices, weights)
