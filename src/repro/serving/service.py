"""The open-loop serving driver: replay a trace through a session.

:func:`serve_trace` is the top of the serving stack (``repro.cli serve``
and ``benchmarks/bench_serving.py`` both sit on it).  It replays a seeded
:class:`~repro.serving.arrivals.ArrivalTrace` against one
:class:`~repro.serving.session.Session` on the virtual serving clock:

* when the queue is empty, jump the clock to the next arrival (open-loop
  idle time costs nothing);
* ingest every arrival whose scheduled time has passed — these hit
  admission control *before* the next batch dispatch, which is where
  queue-full and quota rejections come from under overload;
* dispatch a fused batch (respecting the configured minimum
  ``batch_window`` between dispatches) and let the drain advance the
  clock by the deterministic modeled service time.

Everything here is a pure function of (graph, config, trace), so the
resulting :class:`ServingReport` — admission decisions, batch
compositions, latency percentiles, goodput — is bitwise-reproducible,
on either runtime.  SLO definitions (docs/serving.md):

* **attainment** — fraction of *completed* queries whose serving latency
  (completion minus submission, virtual seconds) met the SLO;
* **goodput** — SLO-meeting completions per virtual second of total
  serving time;
* **throughput** — all completions per virtual second, SLO-blind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serving.arrivals import ArrivalTrace
from repro.serving.session import QueryHandle, Session, SessionConfig


@dataclass
class ServingReport:
    """Summary of one trace replay (scalars first, raw handles attached)."""

    trace: str
    seed: int
    rate: float
    duration: float
    arrivals: int
    admitted: int
    rejected: int
    rejected_queue_full: int
    rejected_quota: int
    completed: int
    missed: int
    batches: int
    clock: float
    queue_peak: int
    p50: float
    p95: float
    p99: float
    attainment: float
    goodput: float
    throughput: float
    per_tenant: dict[str, dict[str, int]]
    handles: tuple[QueryHandle, ...] = field(repr=False, default=())
    session: Session | None = field(repr=False, default=None)

    def row(self) -> dict:
        """Flat scalar row for the bench observatory / JSON output."""
        return {
            "trace": self.trace, "seed": self.seed, "rate": self.rate,
            "arrivals": self.arrivals, "admitted": self.admitted,
            "rejected": self.rejected,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_quota": self.rejected_quota,
            "completed": self.completed, "missed": self.missed,
            "batches": self.batches, "clock": self.clock,
            "queue_peak": self.queue_peak,
            "p50": self.p50, "p95": self.p95, "p99": self.p99,
            "attainment": self.attainment, "goodput": self.goodput,
            "throughput": self.throughput,
        }

    def describe(self) -> str:
        """Human-readable block for ``repro.cli serve``."""
        lines = [
            f"trace={self.trace} seed={self.seed} rate={self.rate:g}/s "
            f"duration={self.duration:g}s",
            f"arrivals={self.arrivals} admitted={self.admitted} "
            f"rejected={self.rejected} "
            f"(queue_full={self.rejected_queue_full}, "
            f"quota={self.rejected_quota})",
            f"completed={self.completed} in {self.batches} batches over "
            f"{self.clock:.4f}s virtual; queue_peak={self.queue_peak}",
            f"latency p50={self.p50 * 1e3:.2f}ms p95={self.p95 * 1e3:.2f}ms "
            f"p99={self.p99 * 1e3:.2f}ms",
            f"slo_missed={self.missed} attainment={self.attainment:.3f} "
            f"goodput={self.goodput:.1f}/s throughput={self.throughput:.1f}/s",
        ]
        if self.per_tenant:
            lines.append("per-tenant:")
            for name in sorted(self.per_tenant):
                t = self.per_tenant[name]
                lines.append(
                    f"  {name:<12} admitted={t['admitted']:<5} "
                    f"rejected={t['rejected']:<5} "
                    f"completed={t['completed']:<5} missed={t['missed']}"
                )
        return "\n".join(lines)


def serve_trace(engine, trace: ArrivalTrace,
                config: SessionConfig | None = None) -> ServingReport:
    """Replay ``trace`` through a fresh session on ``engine``.

    Deterministic end to end: same (graph, config, trace) in, same report
    out — including on ``SessionConfig(runtime="threads")``.
    """
    session = Session(engine, config)
    cfg = session.config
    arrivals = trace.arrivals
    handles: list[QueryHandle] = []
    i = 0
    queue_peak = 0
    last_dispatch = -cfg.batch_window  # first batch may fire at t=0

    def ingest_due() -> None:
        nonlocal i, queue_peak
        while i < len(arrivals) and arrivals[i].time <= session.now:
            session.advance_to(arrivals[i].time)
            handles.append(session.submit(arrivals[i].query,
                                          tenant=arrivals[i].tenant))
            queue_peak = max(queue_peak, session.pending)
            i += 1

    while i < len(arrivals) or session.pending:
        if session.pending == 0 and i < len(arrivals):
            session.advance_to(arrivals[i].time)  # open-loop idle jump
        ingest_due()
        if session.pending:
            session.advance_to(last_dispatch + cfg.batch_window)
            ingest_due()  # arrivals that landed during the window wait
            last_dispatch = session.now
            session.drain()

    m = session.metrics
    snap = m.snapshot()
    completed = session.completed_total
    missed = session.missed_total
    good = completed - missed
    clock = session.now
    attainment = (good / completed) if completed else 0.0
    goodput = good / clock if clock > 0 else 0.0
    throughput = completed / clock if clock > 0 else 0.0
    m.set("serve.queue_peak", queue_peak)
    m.set("serve.attainment", attainment)
    m.set("serve.goodput", goodput)
    m.set("serve.throughput", throughput)

    tenants = sorted({h.tenant for h in handles})
    per_tenant = {
        t: {
            "admitted": int(snap.get(f"serve.tenant.{t}.admitted", 0)),
            "rejected": int(snap.get(f"serve.tenant.{t}.rejected", 0)),
            "completed": int(snap.get(f"serve.tenant.{t}.completed", 0)),
            "missed": int(snap.get(f"serve.tenant.{t}.missed", 0)),
        }
        for t in tenants
    }
    return ServingReport(
        trace=trace.name, seed=trace.seed, rate=trace.rate,
        duration=trace.duration, arrivals=len(arrivals),
        admitted=session.admitted_total, rejected=session.rejected_total,
        rejected_queue_full=int(snap.get("serve.rejected.queue_full", 0)),
        rejected_quota=int(snap.get("serve.rejected.quota_exceeded", 0)),
        completed=completed, missed=missed,
        batches=len(session.batch_log), clock=clock, queue_peak=queue_peak,
        p50=float(snap.get("serve.latency.p50", 0.0)),
        p95=float(snap.get("serve.latency.p95", 0.0)),
        p99=float(snap.get("serve.latency.p99", 0.0)),
        attainment=attainment, goodput=goodput, throughput=throughput,
        per_tenant=per_tenant, handles=tuple(handles), session=session,
    )
