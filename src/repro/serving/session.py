"""The session/submit serving facade over :class:`GraphEngine`.

This module is the engine's *only* execution path.  A :class:`Session`
owns one deployment's serving state — an admission controller, a virtual
serving clock, accumulated ``serve.*`` metrics — and executes query
batches through :meth:`Session._execute`, which is the engine's historical
``run`` body moved here verbatim.  ``GraphEngine.run(RunRequest(...))`` is
now a thin wrapper that opens a throwaway session and calls the same code,
so the batch and serving paths produce byte-for-byte identical results by
construction.

Serving use::

    session = engine.open_session(SessionConfig(
        tenants=(TenantSpec("gold", priority=2, quota=64),
                 TenantSpec("free", priority=0, quota=8)),
        slo=0.25,
    ))
    h = session.submit(Query(source=123), tenant="gold")
    session.drain()                      # execute everything admitted
    state = h.result()                   # per-query result + stats

``submit`` stamps the query at the session's virtual clock, runs admission
(bounded queue, per-tenant quota — docs/serving.md), and returns a
future-like :class:`QueryHandle`.  ``drain`` selects the next fused batch
(guarantee round + priority fill), executes concurrent SSPPR queries as
one shared-frontier :class:`~repro.ppr.multi_query.MultiSSPPR` batch per
owning process (``mode="batched"``, the default) alongside any walk
queries, advances the serving clock by the deterministic
:class:`ServiceCostModel`, and resolves the batch's handles.

Determinism: the serving clock advances only by cost-model time computed
from runtime-independent inputs (query counts, operator push counts,
fault-plan retry counts), so a seeded arrival trace produces identical
admission decisions, batch compositions, latencies, and result vectors on
the virtual-time scheduler and on :class:`~repro.rpc.ThreadRuntime`
(``SessionConfig(runtime="threads")``) — pinned by
``tests/test_serving.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.breakdown import aggregate_breakdowns
from repro.engine.cluster import SimCluster
from repro.engine.query import (
    assign_queries,
    multi_query_batched_driver,
    multi_query_driver,
    multi_query_tensor_driver,
    sample_sources,
)
from repro.engine.request import RUN_MODES, RunRequest
from repro.obs import MetricsRegistry
from repro.ppr.distributed import DegradationMode
from repro.ppr.params import PPRParams
from repro.rpc.retry import RetryPolicy
from repro.serving.tenancy import (
    AdmissionController,
    AdmissionDecision,
    AdmissionRejected,
    TenantSpec,
)
from repro.simt.faults import FaultPlan
from repro.storage.dist_storage import DistGraphStorage
from repro.storage.fetch import FetchCache, NeighborFetchService
from repro.walk.random_walk import distributed_random_walk

#: query kinds a session can serve
QUERY_KINDS = ("sppr", "walk")

#: execution runtimes a session can drain on
SESSION_RUNTIMES = ("sim", "threads")


@dataclass(frozen=True)
class Query:
    """One tenant-visible query: an SSPPR vector or a random walk."""

    source: int
    kind: str = "sppr"
    walk_length: int = 8

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"kind must be one of {QUERY_KINDS}, got {self.kind!r}"
            )
        if self.source < 0:
            raise ValueError(f"source must be >= 0, got {self.source}")
        if self.kind == "walk" and self.walk_length <= 0:
            raise ValueError(
                f"walk_length must be > 0, got {self.walk_length}"
            )


@dataclass(frozen=True)
class ServiceCostModel:
    """Deterministic virtual service time for one fused batch.

    The serving clock advances by this model — never by measured wall
    time — so serving decisions replay identically on both runtimes.
    Inputs are runtime-independent: query counts, summed Forward-Push
    operator counts, walk steps, and fault-plan retry counts.
    """

    batch_overhead: float = 2e-3    # per-batch deployment + dispatch cost
    per_query: float = 1e-3         # per fused SSPPR query
    per_push: float = 5e-8          # per Forward-Push pair push
    per_walk_step: float = 2e-5     # per walker step
    per_retry: float = 1e-3         # per injected-fault retransmission

    def service_time(self, *, n_queries: int = 0, n_pushes: int = 0,
                     n_walk_steps: int = 0, n_retries: int = 0) -> float:
        if min(n_queries, n_pushes, n_walk_steps, n_retries) < 0:
            raise ValueError("cost-model inputs must be >= 0")
        return (self.batch_overhead
                + self.per_query * n_queries
                + self.per_push * n_pushes
                + self.per_walk_step * n_walk_steps
                + self.per_retry * n_retries)


@dataclass(frozen=True)
class SessionConfig:
    """Knobs for one serving session (tenancy, SLO, execution mode)."""

    #: fused execution mode for drained SSPPR batches; ``"batched"``
    #: (shared-frontier MultiSSPPR) is the cross-tenant batching default
    mode: str = "batched"
    params: PPRParams | None = None
    #: ``"sim"`` = virtual-time scheduler, ``"threads"`` = ThreadRuntime
    runtime: str = "sim"
    tenants: tuple[TenantSpec, ...] = ()
    queue_cap: int = 256
    batch_cap: int = 64
    #: per-query latency SLO in virtual seconds (``None`` = no deadline
    #: accounting; completed queries then never count as missed)
    slo: float | None = None
    #: minimum virtual seconds between batch dispatches (batching cadence)
    batch_window: float = 0.0
    cost_model: ServiceCostModel = field(default_factory=ServiceCostModel)
    #: chaos knobs layered onto every drained batch
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None
    degradation: DegradationMode = DegradationMode.FAIL_FAST
    seed: int | None = None
    #: sample a serving-clock Timeline (repro.obs.analysis) at session
    #: open and after every drain; the series is count-derived end to
    #: end, so it replays bitwise on both runtimes
    timeline: bool = False

    def __post_init__(self) -> None:
        if self.mode not in RUN_MODES:
            raise ValueError(
                f"mode must be one of {RUN_MODES}, got {self.mode!r}"
            )
        if self.runtime not in SESSION_RUNTIMES:
            raise ValueError(
                f"runtime must be one of {SESSION_RUNTIMES}, "
                f"got {self.runtime!r}"
            )
        if self.slo is not None and self.slo <= 0:
            raise ValueError(f"slo must be > 0 or None, got {self.slo}")
        if self.batch_window < 0:
            raise ValueError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )


class QueryHandle:
    """Future-like handle for one submitted query.

    Resolves at the ``drain`` that executes its batch: ``status`` moves
    ``"queued" -> "done"`` (or straight to ``"rejected"`` at submit),
    ``result()`` returns the per-query result state, and ``latency`` /
    ``slo_ok`` carry the serving-clock accounting.
    """

    __slots__ = ("query", "tenant", "seq", "submitted_at", "status",
                 "reject_reason", "latency", "slo_ok", "batch_index",
                 "_value")

    def __init__(self, query: Query, tenant: str, seq: int,
                 submitted_at: float) -> None:
        self.query = query
        self.tenant = tenant
        self.seq = seq
        self.submitted_at = submitted_at
        self.status = "queued"
        self.reject_reason = None
        self.latency: float | None = None
        self.slo_ok: bool | None = None
        self.batch_index: int | None = None
        self._value = None

    @property
    def done(self) -> bool:
        return self.status == "done"

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    def result(self):
        """The query's result state (SSPPR state / walk row).

        Raises :class:`AdmissionRejected` for rejected queries and
        :class:`RuntimeError` while still queued.
        """
        if self.status == "rejected":
            raise AdmissionRejected(
                self.reject_reason,
                f"query #{self.seq} (tenant {self.tenant!r}) was rejected: "
                f"{self.reject_reason.value}",
            )
        if self.status != "done":
            raise RuntimeError(
                f"query #{self.seq} is still {self.status}; call "
                "session.drain() first"
            )
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"QueryHandle(seq={self.seq}, tenant={self.tenant!r}, "
                f"status={self.status!r})")


def _batch_pushes(states: dict) -> int:
    """Summed Forward-Push pushes across a batch's result states.

    Counts are pure operator work — identical on both runtimes.  Batched
    states are per-query views over shared ``MultiSSPPR`` objects; those
    are deduplicated so shared work is counted once.
    """
    total = 0
    seen: set[int] = set()
    for state in states.values():
        multi = getattr(state, "multi", None)
        if multi is not None:
            if id(multi) not in seen:
                seen.add(id(multi))
                total += int(multi.n_pushes)
        elif hasattr(state, "stats"):
            total += int(state.stats().get("ppr.pushes", 0))
    return total


class Session:
    """Long-lived submit/drain front end over one :class:`GraphEngine`."""

    def __init__(self, engine, config: SessionConfig | None = None) -> None:
        self.engine = engine
        self.config = config if config is not None else SessionConfig()
        self.admission = AdmissionController(
            tenants=self.config.tenants,
            queue_cap=self.config.queue_cap,
            batch_cap=self.config.batch_cap,
        )
        #: virtual serving clock (seconds); advanced by submissions'
        #: ``advance_to`` and by every drain's modeled service time
        self.now = 0.0
        #: serve.* metrics plus the merged per-batch engine registries
        self.metrics = MetricsRegistry()
        #: full admission audit log (one entry per submit)
        self.decisions: list[AdmissionDecision] = []
        #: per-drain batch compositions as submit-sequence tuples
        self.batch_log: list[tuple[int, ...]] = []
        self.admitted_total = 0
        self.rejected_total = 0
        self.completed_total = 0
        self.missed_total = 0
        self._seq = 0
        self._rejected_since_drain = 0
        #: serving-clock Timeline when SessionConfig(timeline=True)
        self.timeline = None
        if self.config.timeline:
            from repro.obs.analysis.timeline import Timeline

            self.timeline = Timeline()
            self._sample_timeline()

    def _sample_timeline(self) -> None:
        """Snapshot the serve.* watch list at the current serving clock.

        Every value is count-derived (admission counters, cost-model
        clock, queue depth), so the series is part of the cross-runtime
        differential contract.
        """
        from repro.obs.analysis.timeline import SESSION_WATCH, \
            sample_counters

        values = sample_counters(self.metrics, SESSION_WATCH)
        values["serve.clock"] = self.now
        values["serve.queue_depth"] = self.admission.depth
        self.timeline.sample(self.now, values)

    # -- clock --------------------------------------------------------------
    def advance_to(self, t: float) -> None:
        """Move the serving clock forward to ``t`` (never backward)."""
        if t > self.now:
            self.now = t

    # -- submit -------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Queries admitted but not yet drained."""
        return self.admission.depth

    def submit(self, query: Query, *, tenant: str = "default") -> QueryHandle:
        """Admit one query at the current serving clock; never blocks."""
        if not isinstance(query, Query):
            raise TypeError(
                f"submit takes a Query, got {type(query).__name__}"
            )
        handle = QueryHandle(query, tenant, self._seq, self.now)
        self._seq += 1
        decision = self.admission.offer(handle.seq, tenant, handle)
        self.decisions.append(decision)
        m = self.metrics
        m.inc("serve.submitted")
        if decision.admitted:
            self.admitted_total += 1
            m.inc("serve.admitted")
            m.inc(f"serve.tenant.{tenant}.admitted")
        else:
            handle.status = "rejected"
            handle.reject_reason = decision.reason
            self.rejected_total += 1
            self._rejected_since_drain += 1
            m.inc("serve.rejected")
            m.inc(f"serve.rejected.{decision.reason.value}")
            m.inc(f"serve.tenant.{tenant}.rejected")
        m.set("serve.queue_depth", self.admission.depth)
        return handle

    # -- drain --------------------------------------------------------------
    def drain(self):
        """Execute the next fused batch; resolve its handles.

        Returns the batch's :class:`~repro.engine.QueryRunResult` with the
        serving-mode typed counters filled in (``admitted`` = queries
        executed in this batch, ``rejected`` = rejections since the
        previous drain, ``deadline_missed`` = this batch's SLO misses).
        Draining an empty queue returns an all-zero result.  Call
        repeatedly to empty a queue deeper than ``batch_cap``.
        """
        from repro.engine.engine import QueryRunResult

        handles = self.admission.take_batch()
        rejected_here = self._rejected_since_drain
        self._rejected_since_drain = 0
        if not handles:
            return QueryRunResult(
                n_queries=0, makespan=0.0, throughput=0.0, phases={},
                per_proc_clocks={}, remote_requests=0, local_calls=0,
                rejected=rejected_here,
            )
        cfg = self.config
        start = self.now
        batch_index = len(self.batch_log)
        self.batch_log.append(tuple(h.seq for h in handles))
        sppr = [h for h in handles if h.query.kind == "sppr"]
        walks = [h for h in handles if h.query.kind == "walk"]

        result = None
        n_pushes = 0
        n_retries = 0
        n_walk_steps = 0
        if sppr:
            request = RunRequest(
                sources=np.array([h.query.source for h in sppr],
                                 dtype=np.int64),
                params=cfg.params, mode=cfg.mode, keep_states=True,
                fault_plan=cfg.fault_plan, retry_policy=cfg.retry_policy,
                degradation=cfg.degradation,
            )
            result = self.run(request)
            n_pushes = _batch_pushes(result.states)
            n_retries += result.retries
            self.metrics.merge(result.obs.metrics)
        walk_rows: dict[tuple[int, int], np.ndarray] = {}
        if walks:
            lengths = sorted({h.query.walk_length for h in walks})
            for length in lengths:
                roots = np.array(
                    [h.query.source for h in walks
                     if h.query.walk_length == length], dtype=np.int64)
                rows, retries = self._execute_walks(roots, length)
                walk_rows.update({(gid, length): row
                                  for gid, row in rows.items()})
                n_retries += retries
                n_walk_steps += len(roots) * length

        service = cfg.cost_model.service_time(
            n_queries=len(sppr), n_pushes=n_pushes,
            n_walk_steps=n_walk_steps, n_retries=n_retries,
        )
        completion = start + service
        self.now = completion

        missed = 0
        m = self.metrics
        for h in handles:
            h.status = "done"
            h.batch_index = batch_index
            if h.query.kind == "sppr":
                h._value = result.states[h.query.source]
            else:
                h._value = walk_rows[(h.query.source, h.query.walk_length)]
            h.latency = completion - h.submitted_at
            m.observe("serve.latency", h.latency)
            m.inc("serve.completed")
            m.inc(f"serve.tenant.{h.tenant}.completed")
            if cfg.slo is not None:
                h.slo_ok = h.latency <= cfg.slo
                if not h.slo_ok:
                    missed += 1
                    m.inc("serve.slo_missed")
                    m.inc(f"serve.tenant.{h.tenant}.missed")
        self.completed_total += len(handles)
        self.missed_total += missed
        m.inc("serve.batches")
        m.inc("serve.batch_queries", len(handles))
        if n_retries:
            m.inc("serve.batch_retries", n_retries)
        m.set("serve.clock", self.now)
        m.set("serve.queue_depth", self.admission.depth)
        if self.timeline is not None:
            self._sample_timeline()

        if result is None:
            result = QueryRunResult(
                n_queries=len(handles), makespan=service,
                throughput=len(handles) / service if service > 0 else 0.0,
                phases={}, per_proc_clocks={}, remote_requests=0,
                local_calls=0, retries=n_retries,
            )
        result.admitted = len(handles)
        result.rejected = rejected_here
        result.deadline_missed = missed
        return result

    # -- execution ----------------------------------------------------------
    def run(self, request: RunRequest):
        """Execute one batched request on the session's runtime.

        This is the single execution path shared by ``engine.run`` (which
        opens a throwaway session) and ``drain`` — identical requests
        yield byte-for-byte identical results either way.
        """
        if self.config.runtime == "threads":
            return self._execute_threads(request)
        return self._execute(request)

    def _execute(self, request: RunRequest):
        """Run one batched SSPPR request on the virtual-time scheduler.

        Dispatches on ``request.mode`` (PPR Engine / tensor baseline /
        inter-query batching), deploys a fresh cluster with the request's
        tracing, fault-plan, and retry-policy overrides, and reports the
        fault-tolerance counters alongside the usual throughput numbers.
        """
        from repro.engine.engine import QueryRunResult, _late_proc

        engine = self.engine
        cfg = engine.config
        params = request.params if request.params is not None else PPRParams()
        seed = cfg.seed if request.seed is None else request.seed
        if request.sources is not None:
            sources = request.sources
        else:
            sources = sample_sources(engine.sharded, request.n_queries,
                                     seed=seed)
        opt = request.opt if request.opt is not None else cfg.opt

        sanitizer = None
        if request.sanitize:
            from repro.analysis.race import RaceDetector

            sanitizer = RaceDetector()

        cluster = SimCluster(engine.sharded, cfg,
                             trace_rpc=request.trace_rpc,
                             fault_plan=request.fault_plan,
                             retry_policy=request.resolved_retry_policy(),
                             trace=request.trace,
                             max_spans=request.max_spans,
                             sanitizer=sanitizer)
        assignment = assign_queries(engine.sharded, sources,
                                    cfg.procs_per_machine)

        fetch_split = (cfg.fetch_split if request.fetch_split is None
                       else request.fetch_split)
        fetch_cache_bytes = (cfg.fetch_cache_bytes
                             if request.fetch_cache_bytes is None
                             else request.fetch_cache_bytes)
        fetch_coalesce = (cfg.fetch_coalesce if request.fetch_coalesce is None
                          else request.fetch_coalesce)
        # one FetchCache per machine, shared by its computing processes —
        # that sharing is what makes cross-request coalescing fire
        fetch_caches: dict[int, FetchCache] = {}
        # per-machine remote-row demand, mutated under the FetchCache lock;
        # the stream rebalancer reads it off the result between epochs
        heat_maps: dict[int, dict[int, int]] = {}

        def wrap_fetch(g, machine, name):
            if not (g.compress and (fetch_split or fetch_cache_bytes > 0)):
                return g
            fc = fetch_caches.get(machine)
            if fc is None:
                fc = fetch_caches[machine] = FetchCache(
                    fetch_cache_bytes, sanitizer=sanitizer
                )
            return NeighborFetchService(
                g, fc, split=fetch_split, coalesce=fetch_coalesce,
                metrics=cluster.obs.metrics, proc=_late_proc(cluster, name),
                heat=heat_maps.setdefault(machine, {}),
            )

        run_timeline = None
        if request.timeline is not None:
            from repro.obs.analysis.timeline import Timeline, \
                install_sim_sampler

            def _cache_gauges() -> dict:
                return {
                    "fetch.cache_bytes": sum(
                        fc.nbytes for fc in fetch_caches.values()),
                    "fetch.cache_entries": sum(
                        len(fc.rows) for fc in fetch_caches.values()),
                }

            run_timeline = Timeline(interval=request.timeline)
            install_sim_sampler(cluster.scheduler, cluster.obs.metrics,
                                run_timeline, request.timeline,
                                gauges=_cache_gauges)

        states: dict[int, object] = {}
        latencies: dict[int, float] = {}
        fault_stats = {"degraded_queries": 0, "abandoned_mass": 0.0}
        # batched mode always collects: its per-query views are the only
        # way to read results back out of the shared MultiSSPPR
        collect = states if (request.keep_states
                             or request.mode == "batched") else None
        for (machine, proc_index), chunk in assignment.items():
            name = cfg.worker_name(machine, proc_index)
            if request.mode == "tensor":
                g = wrap_fetch(DistGraphStorage(cluster.rrefs, machine, name,
                                                compress=True), machine, name)
                body = multi_query_tensor_driver(
                    g, _late_proc(cluster, name), chunk, engine.sharded,
                    params, collect=collect,
                )
            elif request.mode == "batched":
                g = wrap_fetch(DistGraphStorage(cluster.rrefs, machine, name,
                                                compress=True), machine, name)
                body = multi_query_batched_driver(
                    g, _late_proc(cluster, name), chunk, engine.sharded,
                    params, collect=collect,
                )
            else:
                g = wrap_fetch(DistGraphStorage(cluster.rrefs, machine, name,
                                                compress=opt.compressed),
                               machine, name)
                body = multi_query_driver(
                    g, _late_proc(cluster, name), chunk, engine.sharded,
                    params, opt=opt, collect=collect,
                    latencies=latencies, degradation=request.degradation,
                    fault_stats=fault_stats,
                )
            cluster.spawn_compute(machine, proc_index, body)

        if sanitizer is not None:
            from repro.analysis.race import installed

            with installed(sanitizer):
                makespan = cluster.run()
        else:
            makespan = cluster.run()
        procs = cluster.compute_processes()
        # surface driver failures (fail_fast): result_of re-raises the
        # exception a compute process finished with
        for p in procs:
            cluster.scheduler.result_of(p.name)
        phases = aggregate_breakdowns([p.breakdown for p in procs])
        ctx = cluster.ctx
        obs = cluster.obs
        if fetch_caches:
            obs.metrics.set("fetch.cache_bytes",
                            sum(fc.nbytes for fc in fetch_caches.values()))
            obs.metrics.set("fetch.cache_entries",
                            sum(len(fc.rows) for fc in fetch_caches.values()))
        obs.metrics.inc("engine.queries", len(sources))
        obs.metrics.inc("engine.degraded_queries",
                        fault_stats["degraded_queries"])
        obs.metrics.set("engine.makespan", makespan)
        for state in states.values():
            # operator-work counts (pure counts — runtime-independent)
            if hasattr(state, "stats"):
                for key, val in state.stats().items():
                    obs.metrics.inc(key, int(val))
        if ctx.tracer is not None:
            ctx.tracer.publish(obs.metrics)
        race_violations: list = []
        if sanitizer is not None:
            race_violations = list(sanitizer.report())
            obs.metrics.inc("sanitizer.accesses", sanitizer.accesses)
            obs.metrics.inc("sanitizer.violations", len(race_violations))
        if run_timeline is not None:
            from repro.obs.analysis.timeline import edge_samples

            edge_samples(run_timeline, obs.metrics, makespan,
                         gauges=_cache_gauges, zero_first=False)
        return QueryRunResult(
            n_queries=len(sources),
            makespan=makespan,
            throughput=len(sources) / makespan if makespan > 0 else float("inf"),
            phases=phases,
            per_proc_clocks={p.name: p.clock for p in procs},
            remote_requests=ctx.remote_requests,
            local_calls=ctx.local_calls,
            states=states,
            trace=ctx.tracer,
            latencies=latencies,
            retries=ctx.retries,
            timeouts=ctx.timeouts,
            dropped_messages=ctx.dropped_messages,
            degraded_queries=fault_stats["degraded_queries"],
            abandoned_mass=fault_stats["abandoned_mass"],
            metrics=obs.metrics.snapshot(),
            obs=obs,
            heat=heat_maps,
            race_violations=race_violations,
            timeline=run_timeline,
        )

    def _execute_threads(self, request: RunRequest):
        """Mirror of :meth:`_execute` on real OS threads.

        Same worker names, same query assignment, same storage wrapping
        (fresh per-machine ``FetchCache`` per batch) — so every caller
        issues the identical remote-call sequence and a ``FaultPlan``
        replays the identical drop decisions.  Modeled virtual timing does
        not apply; ``makespan`` reports accumulated charged seconds.
        """
        from repro.engine.engine import QueryRunResult
        from repro.obs import DEFAULT_MAX_SPANS, Obs
        from repro.rpc.thread_runtime import ThreadRuntime

        engine = self.engine
        cfg = engine.config
        params = request.params if request.params is not None else PPRParams()
        seed = cfg.seed if request.seed is None else request.seed
        if request.sources is not None:
            sources = request.sources
        else:
            sources = sample_sources(engine.sharded, request.n_queries,
                                     seed=seed)
        opt = request.opt if request.opt is not None else cfg.opt

        bundle = Obs.create(
            trace=(cfg.trace_spans if request.trace is None
                   else request.trace),
            max_spans=(DEFAULT_MAX_SPANS if request.max_spans is None
                       else request.max_spans),
        )
        runtime = ThreadRuntime(fault_plan=request.fault_plan,
                                retry_policy=request.resolved_retry_policy(),
                                obs=bundle,
                                sanitize=request.sanitize)
        rrefs = []
        for m in range(cfg.n_machines):
            runtime.register_server(cfg.server_name(m), m)
            rrefs.append(runtime.create_remote(
                cfg.server_name(m), "storage",
                lambda shard=engine.sharded.shards[m]: shard,
            ))
        assignment = assign_queries(engine.sharded, sources,
                                    cfg.procs_per_machine)

        fetch_split = (cfg.fetch_split if request.fetch_split is None
                       else request.fetch_split)
        fetch_cache_bytes = (cfg.fetch_cache_bytes
                             if request.fetch_cache_bytes is None
                             else request.fetch_cache_bytes)
        fetch_coalesce = (cfg.fetch_coalesce if request.fetch_coalesce is None
                          else request.fetch_coalesce)
        fetch_caches: dict[int, FetchCache] = {}
        heat_maps: dict[int, dict[int, int]] = {}

        def wrap_fetch(g, machine):
            if not (g.compress and (fetch_split or fetch_cache_bytes > 0)):
                return g
            fc = fetch_caches.get(machine)
            if fc is None:
                fc = fetch_caches[machine] = FetchCache(
                    fetch_cache_bytes, sanitizer=runtime.sanitizer
                )
            return NeighborFetchService(
                g, fc, split=fetch_split, coalesce=fetch_coalesce,
                metrics=runtime.obs.metrics,
                heat=heat_maps.setdefault(machine, {}),
            )

        states: dict[int, object] = {}
        latencies: dict[int, float] = {}
        fault_stats = {"degraded_queries": 0, "abandoned_mass": 0.0}
        collect = states if (request.keep_states
                             or request.mode == "batched") else None
        procs = []
        try:
            for (machine, proc_index), chunk in assignment.items():
                name = cfg.worker_name(machine, proc_index)
                proc = runtime.register_worker(name, machine)
                procs.append(proc)
                if request.mode == "tensor":
                    g = wrap_fetch(DistGraphStorage(rrefs, machine, name,
                                                    compress=True), machine)
                    body = multi_query_tensor_driver(
                        g, proc, chunk, engine.sharded, params,
                        collect=collect,
                    )
                elif request.mode == "batched":
                    g = wrap_fetch(DistGraphStorage(rrefs, machine, name,
                                                    compress=True), machine)
                    body = multi_query_batched_driver(
                        g, proc, chunk, engine.sharded, params,
                        collect=collect,
                    )
                else:
                    g = wrap_fetch(DistGraphStorage(rrefs, machine, name,
                                                    compress=opt.compressed),
                                   machine)
                    body = multi_query_driver(
                        g, proc, chunk, engine.sharded, params, opt=opt,
                        collect=collect, latencies=latencies,
                        degradation=request.degradation,
                        fault_stats=fault_stats,
                    )
                runtime.spawn(name, body)
            runtime.join(timeout=180)
        finally:
            runtime.shutdown()

        obs = runtime.obs
        phases = aggregate_breakdowns([p.breakdown for p in procs])
        makespan = max((p.clock for p in procs), default=0.0)
        if fetch_caches:
            obs.metrics.set("fetch.cache_bytes",
                            sum(fc.nbytes for fc in fetch_caches.values()))
            obs.metrics.set("fetch.cache_entries",
                            sum(len(fc.rows) for fc in fetch_caches.values()))
        obs.metrics.inc("engine.queries", len(sources))
        obs.metrics.inc("engine.degraded_queries",
                        fault_stats["degraded_queries"])
        obs.metrics.set("engine.makespan", makespan)
        for state in states.values():
            if hasattr(state, "stats"):
                for key, val in state.stats().items():
                    obs.metrics.inc(key, int(val))
        race_violations: list = []
        if runtime.sanitizer is not None:
            race_violations = list(runtime.sanitizer.report())
        run_timeline = None
        if request.timeline is not None:
            from repro.obs.analysis.timeline import Timeline, edge_samples

            def _cache_gauges() -> dict:
                return {
                    "fetch.cache_bytes": sum(
                        fc.nbytes for fc in fetch_caches.values()),
                    "fetch.cache_entries": sum(
                        len(fc.rows) for fc in fetch_caches.values()),
                }

            # no mid-run grid on real threads (wall time is not virtual
            # time); the deterministic edges still join the differential
            run_timeline = Timeline(interval=request.timeline)
            edge_samples(run_timeline, obs.metrics, makespan,
                         gauges=_cache_gauges)
        return QueryRunResult(
            n_queries=len(sources),
            makespan=makespan,
            throughput=(len(sources) / makespan if makespan > 0
                        else float("inf")),
            phases=phases,
            per_proc_clocks={p.name: p.clock for p in procs},
            remote_requests=runtime.remote_requests,
            local_calls=runtime.local_calls,
            states=states,
            latencies=latencies,
            retries=runtime.retries,
            timeouts=runtime.timeouts,
            dropped_messages=runtime.dropped_messages,
            degraded_queries=fault_stats["degraded_queries"],
            abandoned_mass=fault_stats["abandoned_mass"],
            metrics=obs.metrics.snapshot(),
            obs=obs,
            heat=heat_maps,
            race_violations=race_violations,
            timeline=run_timeline,
        )

    def _execute_walks(self, roots: np.ndarray,
                       walk_length: int) -> tuple[dict[int, np.ndarray], int]:
        """Run one drained walk group; returns (root gid -> walk row, retries)."""
        from repro.engine.engine import _late_proc

        engine = self.engine
        cfg = engine.config
        policy = self.config.retry_policy
        if policy is None and self.config.fault_plan is not None \
                and not self.config.fault_plan.is_empty():
            policy = RetryPolicy()
        assignment = assign_queries(engine.sharded, roots,
                                    cfg.procs_per_machine)
        rows: dict[int, np.ndarray] = {}
        if self.config.runtime == "threads":
            from repro.rpc.thread_runtime import ThreadRuntime

            runtime = ThreadRuntime(fault_plan=self.config.fault_plan,
                                    retry_policy=policy)
            rrefs = []
            for m in range(cfg.n_machines):
                runtime.register_server(cfg.server_name(m), m)
                rrefs.append(runtime.create_remote(
                    cfg.server_name(m), "storage",
                    lambda shard=engine.sharded.shards[m]: shard,
                ))
            chunk_of: dict[str, np.ndarray] = {}
            try:
                for (machine, p), chunk in assignment.items():
                    name = cfg.worker_name(machine, p)
                    proc = runtime.register_worker(name, machine)
                    runtime.spawn(name, distributed_random_walk(
                        DistGraphStorage(rrefs, machine, name, compress=True),
                        proc, chunk, engine.sharded, walk_length,
                    ))
                    chunk_of[name] = chunk
                runtime.join(timeout=180)
            finally:
                runtime.shutdown()
            for name in sorted(chunk_of):
                summary = runtime.process_of(name).result
                for i, gid in enumerate(chunk_of[name].tolist()):
                    rows[gid] = summary[i]
            self.metrics.merge(runtime.obs.metrics)
            return rows, runtime.retries

        cluster = SimCluster(engine.sharded, cfg,
                             fault_plan=self.config.fault_plan,
                             retry_policy=policy)
        chunk_of = {}
        for (machine, p), chunk in assignment.items():
            name = cfg.worker_name(machine, p)
            g = DistGraphStorage(cluster.rrefs, machine, name, compress=True)
            body = distributed_random_walk(
                g, _late_proc(cluster, name), chunk, engine.sharded,
                walk_length,
            )
            cluster.spawn_compute(machine, p, body)
            chunk_of[name] = chunk
        cluster.run()
        for name in sorted(chunk_of):
            summary = cluster.scheduler.result_of(name)
            for i, gid in enumerate(chunk_of[name].tolist()):
                rows[gid] = summary[i]
        self.metrics.merge(cluster.obs.metrics)
        return rows, cluster.ctx.retries

    # -- reporting ----------------------------------------------------------
    def snapshot(self) -> dict:
        """Flat serving metrics snapshot (``serve.*`` + merged engine runs)."""
        return self.metrics.snapshot()
