"""Multi-tenant PPR-as-a-service front end (docs/serving.md).

Long-lived session/submit serving over :class:`~repro.engine.GraphEngine`:
seeded open-loop arrival traces, per-tenant admission control (quotas,
priorities, bounded queue with typed rejection), cross-tenant query
batching into shared-frontier iterations, and deterministic virtual-clock
SLO accounting that replays identically on the sim scheduler and
:class:`~repro.rpc.ThreadRuntime`.
"""

from repro.serving.arrivals import (
    TRACES,
    Arrival,
    ArrivalTrace,
    bursty_trace,
    poisson_trace,
)
from repro.serving.service import ServingReport, serve_trace
from repro.serving.session import (
    QUERY_KINDS,
    SESSION_RUNTIMES,
    Query,
    QueryHandle,
    ServiceCostModel,
    Session,
    SessionConfig,
)
from repro.serving.tenancy import (
    DEFAULT_TENANT,
    AdmissionController,
    AdmissionDecision,
    AdmissionRejected,
    RejectReason,
    TenantSpec,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionRejected",
    "Arrival",
    "ArrivalTrace",
    "DEFAULT_TENANT",
    "QUERY_KINDS",
    "Query",
    "QueryHandle",
    "RejectReason",
    "SESSION_RUNTIMES",
    "ServiceCostModel",
    "ServingReport",
    "Session",
    "SessionConfig",
    "TRACES",
    "TenantSpec",
    "bursty_trace",
    "poisson_trace",
    "serve_trace",
]
