"""Multi-tenant admission control: quotas, priorities, a bounded queue.

The serving layer (docs/serving.md) fronts the engine with a single
bounded admission queue shared by every tenant.  Each tenant carries a
:class:`TenantSpec` — a scheduling priority, an optional pending-query
quota, and an arrival-mix weight used by the trace generators.  Every
``submit`` produces an :class:`AdmissionDecision`: admitted into the
queue, or rejected with a *typed* :class:`RejectReason` (the client can
distinguish back-pressure from quota enforcement and react differently).

Batch selection (:meth:`AdmissionController.take_batch`) is two-phase and
deterministic:

1. **guarantee round** — every tenant with queued work receives one slot,
   visited in ``(-priority, name)`` order, so priority admission can
   never starve an under-quota tenant as long as the batch capacity is at
   least the number of waiting tenants (the property pinned by
   ``tests/test_serving.py``);
2. **priority fill** — remaining capacity goes to queued entries in
   ``(-priority, submit sequence)`` order.

The returned batch is sorted by submit sequence, so the fused execution
order is the arrival order regardless of which phase selected an entry.
All state lives in plain insertion-ordered structures and all orderings
are explicit sorts: the same offer sequence always yields the same
decisions and the same batch compositions on either runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ReproError


class RejectReason(enum.Enum):
    """Why an arrival was turned away at the front door."""

    #: the shared bounded queue is at capacity (global back-pressure)
    QUEUE_FULL = "queue_full"
    #: the tenant already has ``quota`` queries pending (per-tenant limit)
    QUOTA_EXCEEDED = "quota_exceeded"


class AdmissionRejected(ReproError):
    """Raised by ``QueryHandle.result()`` when the query was rejected."""

    def __init__(self, reason: RejectReason, message: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's serving contract.

    Parameters
    ----------
    name:
        Stable tenant identifier (metric labels, admission logs).
    priority:
        Scheduling priority — higher values are preferred in batch
        selection.  Priority never overrides the guarantee round: a
        low-priority tenant with queued work still gets one slot per
        batch.
    quota:
        Maximum *pending* (queued, not yet drained) queries for this
        tenant; further submissions are rejected with
        ``QUOTA_EXCEEDED``.  ``None`` = unlimited.
    weight:
        Relative arrival-mix weight used by the trace generators
        (:mod:`repro.serving.arrivals`); ignored by admission itself.
    """

    name: str
    priority: int = 0
    quota: int | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.quota is not None and self.quota <= 0:
            raise ValueError(
                f"tenant {self.name!r}: quota must be > 0 or None, "
                f"got {self.quota}"
            )
        if self.weight <= 0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight}"
            )


#: implicit spec for tenants never declared explicitly
DEFAULT_TENANT = TenantSpec("default")


@dataclass(frozen=True)
class AdmissionDecision:
    """The typed outcome of one ``offer`` — the serving layer's audit log.

    ``seq`` is the session-wide submit sequence number; the decision list
    is the unit compared by the sim-vs-threads differential test.
    """

    seq: int
    tenant: str
    admitted: bool
    reason: RejectReason | None = None

    def describe(self) -> str:
        verdict = "admit" if self.admitted else f"reject:{self.reason.value}"
        return f"#{self.seq} {self.tenant} {verdict}"


@dataclass
class _Entry:
    seq: int
    tenant: str
    item: object


@dataclass
class AdmissionController:
    """Bounded shared queue + per-tenant quotas + two-phase batch pick."""

    tenants: tuple[TenantSpec, ...] = ()
    queue_cap: int = 256
    batch_cap: int = 64
    _specs: dict[str, TenantSpec] = field(init=False)
    _queue: list[_Entry] = field(init=False, default_factory=list)
    _pending_per_tenant: dict[str, int] = field(init=False,
                                                default_factory=dict)

    def __post_init__(self) -> None:
        if self.queue_cap <= 0:
            raise ValueError(f"queue_cap must be > 0, got {self.queue_cap}")
        if self.batch_cap <= 0:
            raise ValueError(f"batch_cap must be > 0, got {self.batch_cap}")
        self._specs = {}
        for spec in self.tenants:
            if spec.name in self._specs:
                raise ValueError(f"duplicate tenant {spec.name!r}")
            self._specs[spec.name] = spec

    # -- tenancy ------------------------------------------------------------
    def spec(self, tenant: str) -> TenantSpec:
        """The tenant's spec; undeclared tenants get the default contract."""
        got = self._specs.get(tenant)
        if got is None:
            got = TenantSpec(tenant, priority=DEFAULT_TENANT.priority,
                             quota=DEFAULT_TENANT.quota,
                             weight=DEFAULT_TENANT.weight)
            self._specs[tenant] = got
        return got

    # -- queue --------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._queue)

    def depth_of(self, tenant: str) -> int:
        return self._pending_per_tenant.get(tenant, 0)

    def offer(self, seq: int, tenant: str, item: object) -> AdmissionDecision:
        """Admit ``item`` into the bounded queue or reject it, typed."""
        spec = self.spec(tenant)
        if len(self._queue) >= self.queue_cap:
            return AdmissionDecision(seq, tenant, False,
                                     RejectReason.QUEUE_FULL)
        pending = self._pending_per_tenant.get(tenant, 0)
        if spec.quota is not None and pending >= spec.quota:
            return AdmissionDecision(seq, tenant, False,
                                     RejectReason.QUOTA_EXCEEDED)
        self._queue.append(_Entry(seq, tenant, item))
        self._pending_per_tenant[tenant] = pending + 1
        return AdmissionDecision(seq, tenant, True)

    def take_batch(self) -> list[object]:
        """Select up to ``batch_cap`` queued items for one fused batch.

        Guarantee round first (one slot per waiting tenant, highest
        priority visited first), then priority fill; the result is
        returned in submit-sequence order and removed from the queue.
        """
        if not self._queue:
            return []
        heads: dict[str, _Entry] = {}
        for entry in self._queue:  # FIFO per tenant: first hit is the head
            if entry.tenant not in heads:
                heads[entry.tenant] = entry
        order = sorted(heads,
                       key=lambda t: (-self.spec(t).priority, t))
        chosen: dict[int, _Entry] = {}
        for tenant in order:
            if len(chosen) >= self.batch_cap:
                break
            entry = heads[tenant]
            chosen[entry.seq] = entry
        if len(chosen) < self.batch_cap:
            rest = sorted(
                (e for e in self._queue if e.seq not in chosen),
                key=lambda e: (-self.spec(e.tenant).priority, e.seq),
            )
            for entry in rest[: self.batch_cap - len(chosen)]:
                chosen[entry.seq] = entry
        batch = sorted(chosen.values(), key=lambda e: e.seq)
        taken = set(chosen)
        self._queue = [e for e in self._queue if e.seq not in taken]
        for entry in batch:
            self._pending_per_tenant[entry.tenant] -= 1
        return [e.item for e in batch]
