"""Command-line interface: ``python -m repro.cli <command>``.

Downstream-friendly entry points for the preprocessing / query pipeline:

* ``info``       — dataset/graph statistics (Table 1 style);
* ``partition``  — partition a graph and persist the sharded result;
* ``query``      — run an SSPPR batch against a graph or saved shards;
* ``walk``       — run distributed random walks;
* ``bench``      — a one-shot engine-vs-baselines comparison;
* ``chaos``      — a clean-vs-faulty run under an injected fault plan;
* ``profile``    — run a traced batch and export a Chrome trace + metrics.

Graphs are referenced either by stand-in dataset name
(``products|twitter|friendster|papers``, with ``--scale``) or by a ``.npz``
file written by :func:`repro.graph.io.save_npz`.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import EngineConfig, GraphEngine, RunRequest
from repro.graph import load_dataset, load_npz
from repro.graph.datasets import DATASETS
from repro.graph.stats import compute_stats, format_table
from repro.partition import MetisLitePartitioner
from repro.ppr import DegradationMode, PPRParams
from repro.rpc import RetryPolicy
from repro.simt import CrashWindow, FaultPlan
from repro.storage.persist import load_sharded, save_sharded


def _load_graph(args) -> tuple[str, object]:
    if args.graph in DATASETS:
        return args.graph, load_dataset(args.graph, scale=args.scale)
    path = Path(args.graph)
    if not path.exists():
        raise SystemExit(
            f"error: {args.graph!r} is neither a dataset name "
            f"({sorted(DATASETS)}) nor a file"
        )
    return path.stem, load_npz(path)


def _add_graph_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("graph", help="dataset name or graph .npz path")
    p.add_argument("--scale", type=float, default=0.1,
                   help="stand-in scale when loading by name (default 0.1)")


def cmd_info(args) -> int:
    name, graph = _load_graph(args)
    stats = compute_stats(name, graph)
    print(format_table([stats.as_row()]))
    print(f"isolated nodes: {stats.isolated_nodes}")
    return 0


def cmd_partition(args) -> int:
    name, graph = _load_graph(args)
    start = time.perf_counter()
    partitioner = MetisLitePartitioner(seed=args.seed)
    result = partitioner.partition(graph, args.machines)
    from repro.partition import partition_quality
    from repro.storage import build_shards

    quality = partition_quality(graph, result)
    sharded = build_shards(graph, result, seed=args.seed,
                           halo_hops=args.halo_hops)
    elapsed = time.perf_counter() - start
    save_sharded(args.output, sharded, halo_hops=args.halo_hops)
    print(f"partitioned {name} into {args.machines} shards in {elapsed:.1f}s")
    print(f"edge cut: {quality.edge_cut:.3f}  balance: {quality.balance:.3f}")
    for desc in sharded.describe():
        print(f"  shard {desc['shard_id']}: {desc['n_core']} core, "
              f"{desc['n_halo']} halo, {desc['memory_mb']:.1f} MB")
    print(f"saved to {args.output}")
    return 0


def _engine_from_args(args) -> GraphEngine:
    if args.shards:
        sharded = load_sharded(args.shards)
        cfg = EngineConfig(n_machines=sharded.n_shards,
                           procs_per_machine=args.procs)
        return GraphEngine(sharded.graph, cfg, sharded=sharded)
    _, graph = _load_graph(args)
    cfg = EngineConfig(n_machines=args.machines,
                       procs_per_machine=args.procs)
    return GraphEngine(graph, cfg)


def cmd_query(args) -> int:
    engine = _engine_from_args(args)
    params = PPRParams(alpha=args.alpha, epsilon=args.epsilon)
    run = engine.run(RunRequest(
        n_queries=args.queries, params=params, seed=args.seed,
        mode="batched" if args.batch_queries else "engine",
        keep_states=args.top > 0,
    ))
    print(f"{run.n_queries} SSPPR queries: {run.throughput:.1f} q/s "
          f"(virtual), makespan {run.makespan * 1e3:.2f} ms")
    print(f"phases: " + ", ".join(
        f"{k}={v * 1e3:.2f}ms" for k, v in run.phases.items()
    ))
    print(f"RPC: {run.remote_requests} remote, {run.local_calls} local")
    if args.top > 0 and run.states:
        gid, state = next(iter(run.states.items()))
        gids, values = state.results_global(engine.sharded)
        order = np.argsort(-values)[: args.top]
        print(f"top-{args.top} for source {gid}: "
              + ", ".join(f"{gids[i]}({values[i]:.4f})" for i in order))
    return 0


def cmd_walk(args) -> int:
    engine = _engine_from_args(args)
    run = engine.run_random_walks(n_roots=args.roots,
                                  walk_length=args.length, seed=args.seed)
    print(f"{len(run.roots)} walks of length {args.length}: "
          f"{run.throughput:.0f} walks/s (virtual)")
    for row in run.walks[: min(3, len(run.walks))]:
        print("  " + " -> ".join(str(int(v)) for v in row))
    return 0


def cmd_bench(args) -> int:
    engine = _engine_from_args(args)
    params = PPRParams(alpha=args.alpha, epsilon=args.epsilon)
    run_e = engine.run(RunRequest(n_queries=args.queries, params=params,
                                  seed=args.seed, keep_states=True))
    sources = np.array(sorted(run_e.states))
    run_t = engine.run(RunRequest(sources=sources, params=params,
                                  seed=args.seed, mode="tensor"))
    run_b = engine.run(RunRequest(sources=sources, params=params,
                                  seed=args.seed, mode="batched"))
    print(f"{'implementation':<24} {'q/s':>10} {'RPCs':>8}")
    for label, run in (("PPR Engine", run_e),
                       ("PPR Engine (multi-query)", run_b),
                       ("PyTorch-Tensor baseline", run_t)):
        print(f"{label:<24} {run.throughput:>10.1f} {run.remote_requests:>8}")
    return 0


def cmd_chaos(args) -> int:
    """Clean vs faulty run of the same query batch (chaos smoke test)."""
    engine = _engine_from_args(args)
    params = PPRParams(alpha=args.alpha, epsilon=args.epsilon)
    crashes = ()
    if args.crash_machine >= engine.config.n_machines:
        raise SystemExit(
            f"error: --crash-machine {args.crash_machine} out of range "
            f"(deployment has machines 0..{engine.config.n_machines - 1})"
        )
    if args.crash_machine >= 0:
        crashes = (CrashWindow(
            server=engine.config.server_name(args.crash_machine),
            crash_at=args.crash_at, recover_at=args.recover_at,
        ),)
    plan = FaultPlan(seed=args.fault_seed, drop_prob=args.drop,
                     crashes=crashes)
    policy = RetryPolicy(max_attempts=args.max_attempts,
                         timeout=args.timeout)
    clean = engine.run(RunRequest(n_queries=args.queries, params=params,
                                  seed=args.seed))
    faulty = engine.run(RunRequest(
        n_queries=args.queries, params=params, seed=args.seed,
        fault_plan=plan, retry_policy=policy,
        degradation=DegradationMode(args.degradation),
    ))
    print(f"{'run':<8} {'q/s':>10} {'retries':>8} {'timeouts':>9} "
          f"{'dropped':>8} {'degraded':>9}")
    for label, run in (("clean", clean), ("faulty", faulty)):
        print(f"{label:<8} {run.throughput:>10.1f} {run.retries:>8} "
              f"{run.timeouts:>9} {run.dropped_messages:>8} "
              f"{run.degraded_queries:>9}")
    if faulty.degraded_queries:
        print(f"abandoned residual mass: {faulty.abandoned_mass:.6f} "
              f"(bounds each query's L1 error)")
    slowdown = (faulty.makespan / clean.makespan
                if clean.makespan > 0 else float("inf"))
    print(f"fault-induced slowdown: {slowdown:.2f}x")
    return 0


def cmd_profile(args) -> int:
    """Traced run: Chrome trace JSON out, metrics table to stdout."""
    from repro.obs import text_table, write_chrome_trace

    engine = _engine_from_args(args)
    params = PPRParams(alpha=args.alpha, epsilon=args.epsilon)
    run = engine.run(RunRequest(
        n_queries=args.queries, params=params, seed=args.seed,
        mode=args.mode, trace=True, trace_rpc=True,
    ))
    cfg = engine.config
    machine_of = {cfg.server_name(m): m for m in range(cfg.n_machines)}
    machine_of.update({
        cfg.worker_name(m, p): m
        for m in range(cfg.n_machines) for p in range(cfg.procs_per_machine)
    })
    path = write_chrome_trace(args.out, run.obs.tracer, machine_of)
    n_spans = len(run.obs.tracer)
    n_rpc = len(run.obs.tracer.by_kind("client"))
    print(f"{run.n_queries} queries traced: {n_spans} spans "
          f"({n_rpc} RPC client/server pairs) -> {path}")
    print(f"open in chrome://tracing or https://ui.perfetto.dev")
    print(text_table(run.metrics, title="metrics"))
    print("phases: " + ", ".join(
        f"{k}={v * 1e3:.2f}ms" for k, v in run.phases.items()
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="graph statistics")
    _add_graph_args(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("partition", help="partition + persist shards")
    _add_graph_args(p)
    p.add_argument("--machines", type=int, default=4)
    p.add_argument("--halo-hops", type=int, default=1, choices=(1, 2))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default="sharded.npz")
    p.set_defaults(fn=cmd_partition)

    def add_engine_args(p):
        _add_graph_args(p)
        p.add_argument("--shards", default=None,
                       help="load a saved sharded graph instead")
        p.add_argument("--machines", type=int, default=4)
        p.add_argument("--procs", type=int, default=1)
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("query", help="run SSPPR queries")
    add_engine_args(p)
    p.add_argument("--queries", type=int, default=16)
    p.add_argument("--alpha", type=float, default=0.462)
    p.add_argument("--epsilon", type=float, default=1e-6)
    p.add_argument("--top", type=int, default=10,
                   help="print top-K PPR of one query (0 = off)")
    p.add_argument("--batch-queries", action="store_true",
                   help="inter-query batching (MultiSSPPR)")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("walk", help="run distributed random walks")
    add_engine_args(p)
    p.add_argument("--roots", type=int, default=16)
    p.add_argument("--length", type=int, default=8)
    p.set_defaults(fn=cmd_walk)

    p = sub.add_parser("bench", help="engine vs baselines, one shot")
    add_engine_args(p)
    p.add_argument("--queries", type=int, default=8)
    p.add_argument("--alpha", type=float, default=0.462)
    p.add_argument("--epsilon", type=float, default=1e-6)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("chaos", help="clean vs faulty run, one shot")
    add_engine_args(p)
    p.add_argument("--queries", type=int, default=16)
    p.add_argument("--alpha", type=float, default=0.462)
    p.add_argument("--epsilon", type=float, default=1e-6)
    p.add_argument("--fault-seed", type=int, default=7,
                   help="fault plan seed (faults replay deterministically)")
    p.add_argument("--drop", type=float, default=0.05,
                   help="per-message drop probability")
    p.add_argument("--crash-machine", type=int, default=-1,
                   help="crash this machine's storage server (-1 = none)")
    p.add_argument("--crash-at", type=float, default=0.0,
                   help="virtual time the crash starts")
    p.add_argument("--recover-at", type=float, default=float("inf"),
                   help="virtual time the server recovers (inf = never)")
    p.add_argument("--max-attempts", type=int, default=4)
    p.add_argument("--timeout", type=float, default=0.05,
                   help="per-attempt RPC timeout, virtual seconds")
    p.add_argument("--degradation", default="skip_remote",
                   choices=[m.value for m in DegradationMode],
                   help="what a query does when retries are exhausted")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("profile",
                       help="traced run -> Chrome trace JSON + metrics")
    add_engine_args(p)
    p.add_argument("--queries", type=int, default=8)
    p.add_argument("--alpha", type=float, default=0.462)
    p.add_argument("--epsilon", type=float, default=1e-6)
    p.add_argument("--mode", default="engine",
                   choices=("engine", "tensor", "batched"))
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace_event JSON output path")
    p.set_defaults(fn=cmd_profile)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
