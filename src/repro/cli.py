"""Command-line interface: ``python -m repro.cli <command>``.

Downstream-friendly entry points for the preprocessing / query pipeline:

* ``info``       — dataset/graph statistics (Table 1 style);
* ``partition``  — partition a graph and persist the sharded result;
* ``query``      — run an SSPPR batch against a graph or saved shards;
* ``walk``       — run distributed random walks;
* ``bench``      — the benchmark observatory (see ``docs/benchmarking.md``):
  ``bench run`` executes the suite at a scale and aggregates the structured
  reports into a ``BENCH_<scale>.json`` trajectory; ``bench report``
  re-aggregates existing results; ``bench diff`` renders an old-vs-new
  trajectory comparison; ``bench check`` is the regression gate (non-zero
  exit naming every offending metric); ``bench lint`` cross-checks the
  ``.txt``/``.json`` result siblings; ``bench quick`` is the legacy
  one-shot engine-vs-baselines comparison (a bare ``bench <graph>`` still
  routes there);
* ``serve``      — multi-tenant open-loop serving: replay a seeded Poisson
  or bursty arrival trace through a session (admission control, cross-tenant
  batching, SLO accounting; see ``docs/serving.md``);
* ``chaos``      — a clean-vs-faulty run under an injected fault plan;
* ``profile``    — run a traced batch and export metrics as a Chrome trace
  (``--format chrome``), machine-readable JSON (``stats``), or an aligned
  text table (``table``); ``--stream-batches N`` folds the streaming
  loop's ``stream.*``/``rebalance.*`` counters into the output;
* ``doctor``     — trace analytics (``docs/observability.md``): causal
  critical paths with per-bucket attribution, straggler and fetch-cache
  verdicts, trace-incompleteness warnings; ``--diff`` compares two saved
  diagnosis reports;
* ``analyze``    — the determinism/concurrency lint gate
  (see ``docs/static-analysis.md``): run the ``repro.analysis`` AST rules
  over the source tree; non-zero exit naming each violation.

Graphs are referenced either by stand-in dataset name
(``products|twitter|friendster|papers``, with ``--scale``) or by a ``.npz``
file written by :func:`repro.graph.io.save_npz`.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.engine import EngineConfig, GraphEngine, RunRequest
from repro.graph import load_dataset, load_npz
from repro.graph.datasets import DATASETS
from repro.graph.stats import compute_stats, format_table
from repro.partition import MetisLitePartitioner
from repro.ppr import DegradationMode, PPRParams
from repro.rpc import RetryPolicy
from repro.simt import CrashWindow, FaultPlan
from repro.storage.persist import load_sharded, save_sharded

#: repository layout anchors for the bench observatory subcommands
_REPO_ROOT = Path(__file__).resolve().parents[2]
_BENCHMARKS_DIR = _REPO_ROOT / "benchmarks"
_RESULTS_DIR = _BENCHMARKS_DIR / "results"


def _load_graph(args) -> tuple[str, object]:
    if args.graph in DATASETS:
        return args.graph, load_dataset(args.graph, scale=args.scale)
    path = Path(args.graph)
    if not path.exists():
        raise SystemExit(
            f"error: {args.graph!r} is neither a dataset name "
            f"({sorted(DATASETS)}) nor a file"
        )
    return path.stem, load_npz(path)


#: named stand-in scales, matching the bench observatory's tiers
NAMED_SCALES = {"tiny": 0.04, "small": 0.25, "full": 1.0}


def _scale_value(text: str) -> float:
    """``--scale`` accepts a named tier (tiny/small/full) or a float."""
    if text in NAMED_SCALES:
        return NAMED_SCALES[text]
    try:
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is neither a named scale ({sorted(NAMED_SCALES)}) "
            "nor a number"
        ) from None


def _add_graph_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("graph", help="dataset name or graph .npz path")
    p.add_argument("--scale", type=_scale_value, default=0.1,
                   help="stand-in scale when loading by name: a fraction "
                        "or tiny/small/full (default 0.1)")


def cmd_info(args) -> int:
    name, graph = _load_graph(args)
    stats = compute_stats(name, graph)
    print(format_table([stats.as_row()]))
    print(f"isolated nodes: {stats.isolated_nodes}")
    return 0


def cmd_partition(args) -> int:
    name, graph = _load_graph(args)
    # repro: allow=REP001 user-facing progress timing, not a modeled cost
    start = time.perf_counter()
    partitioner = MetisLitePartitioner(seed=args.seed)
    result = partitioner.partition(graph, args.machines)
    from repro.partition import partition_quality
    from repro.storage import build_shards

    quality = partition_quality(graph, result)
    sharded = build_shards(graph, result, seed=args.seed,
                           halo_hops=args.halo_hops)
    # repro: allow=REP001 user-facing progress timing, not a modeled cost
    elapsed = time.perf_counter() - start
    save_sharded(args.output, sharded, halo_hops=args.halo_hops)
    print(f"partitioned {name} into {args.machines} shards in {elapsed:.1f}s")
    print(f"edge cut: {quality.edge_cut:.3f}  balance: {quality.balance:.3f}")
    for desc in sharded.describe():
        print(f"  shard {desc['shard_id']}: {desc['n_core']} core, "
              f"{desc['n_halo']} halo, {desc['memory_mb']:.1f} MB")
    print(f"saved to {args.output}")
    return 0


def _fetch_overrides(args) -> dict:
    if getattr(args, "no_fetch", False):
        return {"fetch_split": False, "fetch_cache_bytes": 0,
                "fetch_coalesce": False}
    cache_bytes = getattr(args, "fetch_cache_bytes", None)
    if cache_bytes is not None:
        return {"fetch_cache_bytes": cache_bytes}
    return {}


def _engine_from_args(args) -> GraphEngine:
    fetch = _fetch_overrides(args)
    if args.shards:
        sharded = load_sharded(args.shards)
        cfg = EngineConfig(n_machines=sharded.n_shards,
                           procs_per_machine=args.procs, **fetch)
        return GraphEngine(sharded.graph, cfg, sharded=sharded)
    _, graph = _load_graph(args)
    cfg = EngineConfig(n_machines=args.machines,
                       procs_per_machine=args.procs, **fetch)
    return GraphEngine(graph, cfg)


def cmd_query(args) -> int:
    engine = _engine_from_args(args)
    params = PPRParams(alpha=args.alpha, epsilon=args.epsilon)
    run = engine.run(RunRequest(
        n_queries=args.queries, params=params, seed=args.seed,
        mode="batched" if args.batch_queries else "engine",
        keep_states=args.top > 0,
    ))
    print(f"{run.n_queries} SSPPR queries: {run.throughput:.1f} q/s "
          f"(virtual), makespan {run.makespan * 1e3:.2f} ms")
    print(f"phases: " + ", ".join(
        f"{k}={v * 1e3:.2f}ms" for k, v in run.phases.items()
    ))
    print(f"RPC: {run.remote_requests} remote, {run.local_calls} local")
    if run.metrics.get("fetch.requests"):
        print(f"fetch: {run.metrics.get('fetch.cache_hits', 0)} hot, "
              f"{run.metrics.get('fetch.halo_hits', 0)} halo, "
              f"{run.metrics.get('fetch.coalesced', 0)} coalesced, "
              f"{run.metrics.get('fetch.misses', 0)} misses "
              f"({run.metrics.get('fetch.bytes_saved', 0)} bytes saved)")
    if args.top > 0 and run.states:
        gid, state = next(iter(run.states.items()))
        gids, values = state.results_global(engine.sharded)
        order = np.argsort(-values)[: args.top]
        print(f"top-{args.top} for source {gid}: "
              + ", ".join(f"{gids[i]}({values[i]:.4f})" for i in order))
    return 0


def cmd_walk(args) -> int:
    engine = _engine_from_args(args)
    run = engine.run_random_walks(n_roots=args.roots,
                                  walk_length=args.length, seed=args.seed)
    print(f"{len(run.roots)} walks of length {args.length}: "
          f"{run.throughput:.0f} walks/s (virtual)")
    for row in run.walks[: min(3, len(run.walks))]:
        print("  " + " -> ".join(str(int(v)) for v in row))
    return 0


def cmd_stream(args) -> int:
    from repro.engine.query import sample_sources
    from repro.stream import (StreamConfig, StreamEvent, StreamingSession,
                              TemporalEdgeStream)

    engine = _engine_from_args(args)
    params = PPRParams(alpha=args.alpha, epsilon=args.epsilon)
    session = StreamingSession(engine, StreamConfig(
        runtime=args.runtime, params=params,
        refresh_every=args.refresh_every,
    ))
    published = sample_sources(engine.sharded, args.publish, seed=args.seed)
    session.publish(published)
    stream = TemporalEdgeStream(engine.graph, seed=args.seed,
                                batch_size=args.batch_size)
    query_pool = sample_sources(engine.sharded, max(args.queries, 1),
                                seed=args.seed + 1)
    events = []
    for i in range(args.batches):
        if args.queries:
            events.append(StreamEvent(
                kind="query",
                source=int(query_pool[i % len(query_pool)])))
        events.append(StreamEvent(kind="update", batch=stream.next_batch()))
        if args.rebalance_every and (i + 1) % args.rebalance_every == 0:
            events.append(StreamEvent(kind="rebalance"))
    report = session.run_stream(events)

    snap = session.metrics.snapshot()
    print(f"{report.n_batches} update batches "
          f"({report.n_applied} applied, {report.n_failed} failed), "
          f"{report.n_queries} queries, {report.n_refreshes} refreshes, "
          f"clock {report.clock * 1e3:.2f} ms")
    print(f"arcs: +{snap.get('stream.arcs_inserted', 0)} "
          f"-{snap.get('stream.arcs_deleted', 0)} "
          f"~{snap.get('stream.arcs_reweighted', 0)}; "
          f"staged rows {snap.get('stream.staged_rows', 0)}")
    print(f"incremental maintenance: "
          f"{snap.get('stream.refresh_corrections', 0)} corrections, "
          f"{snap.get('stream.refresh_pushes', 0)} signed pushes "
          f"across {len(session.states)} published vectors")
    for rb in report.rebalance_reports:
        print(f"rebalance: {rb.n_migrated} migrated, "
              f"{rb.n_replicated} replicated, "
              f"{rb.bytes_copied} bytes copied")
    src = int(published[0])
    p, r = session.published(src)
    order = np.argsort(-p)[: args.top]
    print(f"top-{args.top} for source {src}: "
          + ", ".join(f"{int(g)}({p[g]:.4f})" for g in order))
    return 0


def cmd_bench_quick(args) -> int:
    engine = _engine_from_args(args)
    params = PPRParams(alpha=args.alpha, epsilon=args.epsilon)
    run_e = engine.run(RunRequest(n_queries=args.queries, params=params,
                                  seed=args.seed, keep_states=True))
    sources = np.array(sorted(run_e.states))
    run_t = engine.run(RunRequest(sources=sources, params=params,
                                  seed=args.seed, mode="tensor"))
    run_b = engine.run(RunRequest(sources=sources, params=params,
                                  seed=args.seed, mode="batched"))
    print(f"{'implementation':<24} {'q/s':>10} {'RPCs':>8}")
    for label, run in (("PPR Engine", run_e),
                       ("PPR Engine (multi-query)", run_b),
                       ("PyTorch-Tensor baseline", run_t)):
        print(f"{label:<24} {run.throughput:>10.1f} {run.remote_requests:>8}")
    return 0


def _trajectory_from_results(results_dir: Path, scale: str) -> dict:
    from repro.obs import bench as obs_bench

    reports = obs_bench.load_reports(results_dir)
    at_scale = [d for d in reports if d["scale"] == scale]
    if not at_scale:
        raise SystemExit(
            f"error: no {scale}-scale reports under {results_dir} "
            f"(found scales: {sorted({d['scale'] for d in reports})})"
        )
    return obs_bench.build_trajectory(at_scale, scale)


def cmd_bench_run(args) -> int:
    """Run the suite at a scale, then aggregate the structured reports."""
    from repro.obs import bench as obs_bench

    code = obs_bench.run_suite(
        args.benchmarks_dir, args.scale, select=args.select,
        repo_root=_REPO_ROOT,
    )
    if code != 0:
        print(f"bench run: suite FAILED (pytest exit {code}); "
              "trajectory not written")
        return code
    if args.select:
        print("bench run: partial suite (--select) — trajectory not "
              "written; use 'bench report' to aggregate manually")
        return 0
    trajectory = _trajectory_from_results(Path(args.results_dir), args.scale)
    path = obs_bench.write_trajectory(args.out or
                                      _REPO_ROOT / f"BENCH_{args.scale}.json",
                                      trajectory)
    print(f"bench run: {len(trajectory['benches'])} benches at "
          f"scale={args.scale} -> {path}")
    return 0


def cmd_bench_report(args) -> int:
    """Aggregate existing results/*.json into a trajectory + summary."""
    from repro.obs import bench as obs_bench

    trajectory = _trajectory_from_results(Path(args.results_dir), args.scale)
    rows = []
    for name, b in sorted(trajectory["benches"].items()):
        n_det = sum(
            1 for rec in b["records"].values()
            for col in rec if col in set(b["deterministic"])
        ) + len(set(b["deterministic"]) & set(b["extra"]))
        n_fields = sum(len(rec) for rec in b["records"].values())
        rows.append({"bench": name, "rows": b["n_rows"],
                     "fields": n_fields, "deterministic": n_det})
    print(format_table(rows))
    if args.out:
        path = obs_bench.write_trajectory(args.out, trajectory)
        print(f"trajectory -> {path}")
    return 0


def cmd_bench_diff(args) -> int:
    """Readable old-vs-new comparison of two trajectory files."""
    from repro.obs import bench as obs_bench

    base = obs_bench.load_trajectory(args.baseline)
    if args.current:
        cur = obs_bench.load_trajectory(args.current)
    else:
        cur = _trajectory_from_results(Path(args.results_dir), base["scale"])
    print(obs_bench.render_diff(base, cur, wall_rtol=args.wall_rtol))
    return 0


def cmd_bench_check(args) -> int:
    """The regression gate: current results vs the committed baseline.

    Exit 1 — naming every offending metric — when a deterministic field
    drifts from the baseline, a stored expectation fails, or the .txt/.json
    result siblings disagree.  Wall-clock fields only gate when
    ``--wall-rtol`` is given.
    """
    from repro.obs import bench as obs_bench

    baseline_path = Path(args.baseline) if args.baseline \
        else _REPO_ROOT / f"BENCH_{args.scale}.json"
    base = obs_bench.load_trajectory(baseline_path)
    if args.baseline is None and base["scale"] != args.scale:
        raise SystemExit(
            f"error: {baseline_path} records scale={base['scale']!r}, "
            f"expected {args.scale!r}"
        )
    results_dir = Path(args.results_dir)
    reports = obs_bench.load_reports(results_dir)
    at_scale = [d for d in reports if d["scale"] == base["scale"]]
    cur = obs_bench.build_trajectory(at_scale, base["scale"])

    deltas = obs_bench.compare_trajectories(base, cur,
                                            wall_rtol=args.wall_rtol)
    regressions = obs_bench.regressions(deltas)
    expectation_failures = [
        msg for d in at_scale for msg in obs_bench.evaluate_expectations(d)
    ]
    lint_problems = [] if args.no_lint \
        else obs_bench.lint_results(results_dir)

    for d in regressions:
        print("REGRESSION " + d.describe())
    for msg in expectation_failures:
        print(f"EXPECTATION {msg}")
    for msg in lint_problems:
        print(f"LINT {msg}")
    n_bad = len(regressions) + len(expectation_failures) + len(lint_problems)
    if n_bad:
        print(f"bench check FAILED vs {baseline_path}: "
              f"{len(regressions)} regression(s), "
              f"{len(expectation_failures)} expectation failure(s), "
              f"{len(lint_problems)} lint problem(s)")
        return 1
    n_fields = sum(len(rec) for b in base["benches"].values()
                   for rec in b["records"].values())
    print(f"bench check OK vs {baseline_path}: "
          f"{len(base['benches'])} benches, {n_fields} fields, "
          f"{len(deltas)} tolerated drift(s)")
    return 0


def cmd_bench_lint(args) -> int:
    """Cross-check every results/<name>.txt against its .json sibling."""
    from repro.obs import bench as obs_bench

    problems = obs_bench.lint_results(Path(args.results_dir))
    for msg in problems:
        print(f"LINT {msg}")
    if problems:
        print(f"bench lint: {len(problems)} problem(s)")
        return 1
    n = len(list(Path(args.results_dir).glob("*.json")))
    print(f"bench lint OK: {n} report(s) agree with their .txt tables")
    return 0


def cmd_chaos(args) -> int:
    """Clean vs faulty run of the same query batch (chaos smoke test)."""
    engine = _engine_from_args(args)
    params = PPRParams(alpha=args.alpha, epsilon=args.epsilon)
    crashes = ()
    if args.crash_machine >= engine.config.n_machines:
        raise SystemExit(
            f"error: --crash-machine {args.crash_machine} out of range "
            f"(deployment has machines 0..{engine.config.n_machines - 1})"
        )
    if args.crash_machine >= 0:
        crashes = (CrashWindow(
            server=engine.config.server_name(args.crash_machine),
            crash_at=args.crash_at, recover_at=args.recover_at,
        ),)
    plan = FaultPlan(seed=args.fault_seed, drop_prob=args.drop,
                     crashes=crashes)
    policy = RetryPolicy(max_attempts=args.max_attempts,
                         timeout=args.timeout)
    clean = engine.run(RunRequest(n_queries=args.queries, params=params,
                                  seed=args.seed))
    faulty = engine.run(RunRequest(
        n_queries=args.queries, params=params, seed=args.seed,
        fault_plan=plan, retry_policy=policy,
        degradation=DegradationMode(args.degradation),
    ))
    print(f"{'run':<8} {'q/s':>10} {'retries':>8} {'timeouts':>9} "
          f"{'dropped':>8} {'degraded':>9}")
    for label, run in (("clean", clean), ("faulty", faulty)):
        print(f"{label:<8} {run.throughput:>10.1f} {run.retries:>8} "
              f"{run.timeouts:>9} {run.dropped_messages:>8} "
              f"{run.degraded_queries:>9}")
    if faulty.degraded_queries:
        print(f"abandoned residual mass: {faulty.abandoned_mass:.6f} "
              f"(bounds each query's L1 error)")
    slowdown = (faulty.makespan / clean.makespan
                if clean.makespan > 0 else float("inf"))
    print(f"fault-induced slowdown: {slowdown:.2f}x")
    return 0


def _stream_profile_metrics(engine, params, args) -> dict:
    """``stream.*``/``rebalance.*`` counters from a short streaming bout.

    ``profile --stream-batches N`` appends these namespaces to the stats
    surface so one JSON document covers the batch engine *and* the
    streaming loop.
    """
    from repro.engine.query import sample_sources
    from repro.stream import (StreamConfig, StreamEvent, StreamingSession,
                              TemporalEdgeStream)

    session = StreamingSession(engine, StreamConfig(params=params))
    session.publish(sample_sources(engine.sharded, 2, seed=args.seed))
    updates = TemporalEdgeStream(engine.graph, seed=args.seed, batch_size=8)
    events = [StreamEvent(kind="update", batch=updates.next_batch())
              for _ in range(args.stream_batches)]
    events.append(StreamEvent(kind="rebalance"))
    session.run_stream(events)
    return {k: v for k, v in session.metrics.snapshot().items()
            if k.startswith(("stream.", "rebalance."))}


def cmd_profile(args) -> int:
    """Traced run; ``--format`` picks the export surface."""
    import json as _json

    from repro.obs import text_table, write_chrome_trace

    engine = _engine_from_args(args)
    params = PPRParams(alpha=args.alpha, epsilon=args.epsilon)
    run = engine.run(RunRequest(
        n_queries=args.queries, params=params, seed=args.seed,
        mode=args.mode, trace=True, trace_rpc=True,
    ))
    metrics = dict(run.metrics)
    if getattr(args, "stream_batches", 0):
        metrics.update(_stream_profile_metrics(engine, params, args))
    if args.format == "stats":
        # machine-readable: the flat metrics snapshot plus phase seconds
        print(_json.dumps({"metrics": metrics,
                           "phases": run.phases,
                           "makespan_s": run.makespan,
                           "n_queries": run.n_queries}, indent=1))
        return 0
    if args.format == "table":
        print(text_table(metrics, title="metrics"))
        print("phases: " + ", ".join(
            f"{k}={v * 1e3:.2f}ms" for k, v in run.phases.items()
        ))
        return 0
    cfg = engine.config
    machine_of = {cfg.server_name(m): m for m in range(cfg.n_machines)}
    machine_of.update({
        cfg.worker_name(m, p): m
        for m in range(cfg.n_machines) for p in range(cfg.procs_per_machine)
    })
    path = write_chrome_trace(args.out, run.obs.tracer, machine_of)
    n_spans = len(run.obs.tracer)
    n_rpc = len(run.obs.tracer.by_kind("client"))
    print(f"{run.n_queries} queries traced: {n_spans} spans "
          f"({n_rpc} RPC client/server pairs) -> {path}")
    print(f"open in chrome://tracing or https://ui.perfetto.dev")
    print(text_table(metrics, title="metrics"))
    print("phases: " + ", ".join(
        f"{k}={v * 1e3:.2f}ms" for k, v in run.phases.items()
    ))
    return 0


def cmd_doctor(args) -> int:
    """Trace analytics: critical paths, stragglers, cache verdicts.

    Three modes: run-and-diagnose (the default), ``--load`` a saved
    diagnosis JSON, or ``--diff A B`` to name the critical-path buckets
    that moved between two saved reports.
    """
    import json as _json

    from repro.obs.analysis import (DiagnosisReport, diagnose, diff_reports,
                                    render_diagnosis, render_doctor_diff)

    if args.diff:
        before = DiagnosisReport.from_json(Path(args.diff[0]).read_text())
        after = DiagnosisReport.from_json(Path(args.diff[1]).read_text())
        diff = diff_reports(before, after, top=args.top)
        if args.json:
            print(_json.dumps(diff, indent=1))
        else:
            print(render_doctor_diff(diff, top=args.top))
        return 0

    if args.load:
        report = DiagnosisReport.from_json(Path(args.load).read_text())
    else:
        engine = _engine_from_args(args)
        params = PPRParams(alpha=args.alpha, epsilon=args.epsilon)
        fault_plan = None
        retry_policy = None
        if args.drop > 0:
            fault_plan = FaultPlan(seed=args.fault_seed,
                                   drop_prob=args.drop)
            retry_policy = RetryPolicy(max_attempts=args.max_attempts,
                                       timeout=args.timeout)
        run = engine.run(RunRequest(
            n_queries=args.queries, params=params, seed=args.seed,
            trace=True, max_spans=args.max_spans, timeline=args.timeline,
            fault_plan=fault_plan, retry_policy=retry_policy,
        ))
        report = diagnose(run)
    if args.out:
        Path(args.out).write_text(report.to_json())
        print(f"diagnosis -> {args.out}")
    if args.json:
        print(report.to_json(indent=1))
        return 0
    print(render_diagnosis(report, top=args.top))
    return 0


def _parse_tenants(spec: str):
    """``name[:priority[:quota[:weight]]],...`` -> tuple of TenantSpec."""
    from repro.serving import TenantSpec

    if not spec:
        return ()
    out = []
    for part in spec.split(","):
        bits = part.strip().split(":")
        if not bits or not bits[0]:
            raise SystemExit(f"error: bad tenant spec {part!r}")
        try:
            out.append(TenantSpec(
                bits[0],
                priority=int(bits[1]) if len(bits) > 1 else 0,
                quota=int(bits[2]) if len(bits) > 2 and bits[2] else None,
                weight=float(bits[3]) if len(bits) > 3 else 1.0,
            ))
        except ValueError as exc:
            raise SystemExit(f"error: bad tenant spec {part!r}: {exc}")
    return tuple(out)


def cmd_serve(args) -> int:
    """Replay a seeded open-loop trace through a serving session."""
    import json as _json

    from repro.rpc import RetryPolicy as _RetryPolicy
    from repro.serving import TRACES, SessionConfig, serve_trace

    engine = _engine_from_args(args)
    tenants = _parse_tenants(args.tenants)
    pool = np.arange(engine.graph.n_nodes)
    kwargs = dict(rate=args.rate, duration=args.duration, seed=args.seed,
                  tenants=tenants, walk_frac=args.walk_frac,
                  walk_length=args.walk_length)
    if args.trace == "bursty":
        kwargs.update(burst_factor=args.burst_factor, period=args.period,
                      duty=args.duty)
    trace = TRACES[args.trace](pool, **kwargs)

    fault_plan = None
    retry_policy = None
    if args.drop > 0:
        fault_plan = FaultPlan(seed=args.fault_seed, drop_prob=args.drop)
        retry_policy = _RetryPolicy(max_attempts=args.max_attempts,
                                    timeout=args.timeout)
    config = SessionConfig(
        mode=args.mode, runtime=args.runtime, tenants=tenants,
        queue_cap=args.queue_cap, batch_cap=args.batch_cap, slo=args.slo,
        batch_window=args.window, fault_plan=fault_plan,
        retry_policy=retry_policy,
    )
    report = serve_trace(engine, trace, config)
    if args.json:
        print(_json.dumps(report.row(), indent=1))
        return 0
    print(f"serving {args.graph} on {engine.config.n_machines} machines "
          f"({args.runtime} runtime, mode={args.mode}"
          + (f", chaos drop={args.drop:g}" if fault_plan else "") + ")")
    print(report.describe())
    return 0


def _changed_paths(base: str) -> set[str]:
    """Repo-relative .py paths changed vs ``base`` (plus untracked files)."""
    import subprocess

    out: set[str] = set()
    diff = subprocess.run(["git", "diff", "--name-only", base, "--"],
                          cwd=_REPO_ROOT, capture_output=True, text=True)
    if diff.returncode != 0:
        raise SystemExit(
            f"analyze: git diff --name-only {base} failed: "
            f"{diff.stderr.strip()}")
    out.update(diff.stdout.splitlines())
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard"],
        cwd=_REPO_ROOT, capture_output=True, text=True)
    if untracked.returncode == 0:
        out.update(untracked.stdout.splitlines())
    return {p for p in out if p.endswith(".py")}


def cmd_analyze(args) -> int:
    """Static-analysis gate: lint the tree, exit 1 naming each violation.

    Findings reconcile against the committed ratchet baseline
    (``analysis-baseline.json``): baselined findings are suppressed, new
    findings fail, and stale baseline entries fail too (unless the run
    was partial — ``--changed-only``, explicit paths, or ``--rule``).
    """
    import json as _json

    from repro.analysis import load_config, run_lint
    from repro.analysis.baseline import (load_baseline, reconcile,
                                         save_baseline)
    from repro.analysis.rules import ALL_RULES, get_rules
    from repro.analysis.sarif import to_sarif

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
        return 0
    rules = get_rules(args.rule) if args.rule else None
    paths = [Path(p) for p in args.paths] if args.paths \
        else [_REPO_ROOT / "src" / "repro"]
    if args.graph:
        from repro.analysis.callgraph import build_project

        project = build_project(paths, root=_REPO_ROOT)
        if args.graph == "dot":
            print(project.to_dot())
        else:
            print(_json.dumps(project.to_json(), indent=1))
        return 0
    config = None if args.no_config \
        else load_config(_REPO_ROOT / "pyproject.toml")
    only = None
    if args.changed_only:
        only = _changed_paths(args.base)
        if not only:
            print(f"analyze OK: no .py files changed vs {args.base}")
            return 0
    violations = run_lint(paths, rules=rules, config=config,
                          root=_REPO_ROOT, only=only)
    baseline_path = Path(args.baseline) if args.baseline \
        else _REPO_ROOT / "analysis-baseline.json"
    if args.update_baseline:
        saved = save_baseline(baseline_path, violations)
        print(f"analyze: baseline updated — {saved.total} finding(s) "
              f"frozen in {baseline_path}")
        return 0
    if args.no_baseline:
        new, stale, suppressed = tuple(violations), (), ()
    else:
        full_tree = not args.paths and only is None and rules is None
        result = reconcile(load_baseline(baseline_path), violations,
                           check_stale=full_tree)
        new, stale, suppressed = result.new, result.stale, result.suppressed
    if args.sarif is not None:
        doc = to_sarif(violations, rules if rules is not None else ALL_RULES)
        text = _json.dumps(doc, indent=1)
        if args.sarif == "-":
            print(text)
        else:
            Path(args.sarif).write_text(text + "\n")
    if args.json:
        print(_json.dumps([v.as_dict() for v in new], indent=1))
    elif args.sarif != "-":
        for v in new:
            print(v.format())
    for rule, rel, message in stale:
        print(f"analyze: stale baseline entry {rule} {rel}: {message!r} "
              "— the tree no longer produces it; regenerate with "
              "--update-baseline", file=sys.stderr)
    if new or stale:
        n_rules = len({v.rule for v in new} | {k[0] for k in stale})
        print(f"analyze: {len(new)} new violation(s), {len(stale)} stale "
              f"baseline entr(y/ies) across {n_rules} rule(s)",
              file=sys.stderr)
        return 1
    if not args.json and args.sarif != "-":
        n = len(rules) if rules is not None else len(ALL_RULES)
        extra = f", {len(suppressed)} baselined" if suppressed else ""
        print(f"analyze OK: {n} rule(s), 0 new violations{extra}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="graph statistics")
    _add_graph_args(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("partition", help="partition + persist shards")
    _add_graph_args(p)
    p.add_argument("--machines", type=int, default=4)
    p.add_argument("--halo-hops", type=int, default=1, choices=(1, 2))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default="sharded.npz")
    p.set_defaults(fn=cmd_partition)

    def add_engine_args(p):
        _add_graph_args(p)
        p.add_argument("--shards", default=None,
                       help="load a saved sharded graph instead")
        p.add_argument("--machines", type=int, default=4)
        p.add_argument("--procs", type=int, default=1)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--no-fetch", action="store_true",
                       help="disable the adaptive fetch layer (split + "
                            "hot-vertex cache + coalescing)")
        p.add_argument("--fetch-cache-bytes", type=int, default=None,
                       help="hot-vertex cache budget per machine "
                            "(0 disables the cache; default 4 MiB)")

    p = sub.add_parser("query", help="run SSPPR queries")
    add_engine_args(p)
    p.add_argument("--queries", type=int, default=16)
    p.add_argument("--alpha", type=float, default=0.462)
    p.add_argument("--epsilon", type=float, default=1e-6)
    p.add_argument("--top", type=int, default=10,
                   help="print top-K PPR of one query (0 = off)")
    p.add_argument("--batch-queries", action="store_true",
                   help="inter-query batching (MultiSSPPR)")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("walk", help="run distributed random walks")
    add_engine_args(p)
    p.add_argument("--roots", type=int, default=16)
    p.add_argument("--length", type=int, default=8)
    p.set_defaults(fn=cmd_walk)

    p = sub.add_parser("stream",
                       help="streaming updates: incremental PPR + "
                            "telemetry-driven rebalancing")
    add_engine_args(p)
    p.add_argument("--runtime", choices=("sim", "threads"), default="sim")
    p.add_argument("--batches", type=int, default=8,
                   help="update batches to stream")
    p.add_argument("--batch-size", type=int, default=16,
                   help="edge events per batch")
    p.add_argument("--publish", type=int, default=4,
                   help="PPR vectors published and maintained")
    p.add_argument("--queries", type=int, default=8,
                   help="queries interleaved with the stream (0 = none)")
    p.add_argument("--refresh-every", type=int, default=1,
                   help="refresh published vectors every N batches")
    p.add_argument("--rebalance-every", type=int, default=4,
                   help="rebalance epoch length in batches (0 = never)")
    p.add_argument("--alpha", type=float, default=0.2)
    p.add_argument("--epsilon", type=float, default=1e-4)
    p.add_argument("--top", type=int, default=5)
    p.set_defaults(fn=cmd_stream)

    p = sub.add_parser("bench",
                       help="benchmark observatory: run/report/diff/check")
    bsub = p.add_subparsers(dest="bench_command", required=True)

    b = bsub.add_parser("quick", help="engine vs baselines, one shot")
    add_engine_args(b)
    b.add_argument("--queries", type=int, default=8)
    b.add_argument("--alpha", type=float, default=0.462)
    b.add_argument("--epsilon", type=float, default=1e-6)
    b.set_defaults(fn=cmd_bench_quick)

    def add_results_dir(b):
        b.add_argument("--results-dir", default=str(_RESULTS_DIR),
                       help="directory of per-bench report JSONs")

    b = bsub.add_parser("run",
                        help="run the bench suite, aggregate a trajectory")
    b.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "full"))
    b.add_argument("--select", default=None,
                   help="pytest -k expression to run a subset")
    b.add_argument("--benchmarks-dir", default=str(_BENCHMARKS_DIR))
    add_results_dir(b)
    b.add_argument("--out", default=None,
                   help="trajectory output (default BENCH_<scale>.json)")
    b.set_defaults(fn=cmd_bench_run)

    b = bsub.add_parser("report",
                        help="summarize the stored per-bench reports")
    b.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "full"))
    add_results_dir(b)
    b.add_argument("--out", default=None,
                   help="also write the aggregated trajectory here")
    b.set_defaults(fn=cmd_bench_report)

    b = bsub.add_parser("diff", help="render baseline vs current trajectory")
    b.add_argument("baseline", help="baseline trajectory JSON")
    b.add_argument("current", nargs="?", default=None,
                   help="current trajectory JSON (default: rebuild "
                        "from --results-dir)")
    add_results_dir(b)
    b.add_argument("--wall-rtol", type=float, default=None,
                   help="gate wall-clock fields at this relative tolerance")
    b.set_defaults(fn=cmd_bench_diff)

    b = bsub.add_parser("check",
                        help="regression gate: exit 1 on any regression")
    b.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "full"))
    b.add_argument("--baseline", default=None,
                   help="baseline trajectory (default BENCH_<scale>.json)")
    add_results_dir(b)
    b.add_argument("--wall-rtol", type=float, default=None,
                   help="gate wall-clock fields at this relative tolerance")
    b.add_argument("--no-lint", action="store_true",
                   help="skip the txt/json consistency linter")
    b.set_defaults(fn=cmd_bench_check)

    b = bsub.add_parser("lint",
                        help="check results/*.txt against *.json siblings")
    add_results_dir(b)
    b.set_defaults(fn=cmd_bench_lint)

    p = sub.add_parser("serve",
                       help="multi-tenant open-loop serving (docs/serving.md)")
    p.add_argument("graph", nargs="?", default="products",
                   help="dataset name or graph .npz path (default products)")
    p.add_argument("--scale", type=_scale_value, default=0.1,
                   help="stand-in scale: a fraction or tiny/small/full")
    p.add_argument("--shards", default=None,
                   help="load a saved sharded graph instead")
    p.add_argument("--machines", type=int, default=4)
    p.add_argument("--procs", type=int, default=1)
    p.add_argument("--no-fetch", action="store_true",
                   help="disable the adaptive fetch layer")
    p.add_argument("--fetch-cache-bytes", type=int, default=None,
                   help="hot-vertex cache budget per machine")
    p.add_argument("--trace", default="poisson",
                   choices=("poisson", "bursty"),
                   help="arrival process (seeded, open-loop)")
    p.add_argument("--rate", type=float, default=200.0,
                   help="mean arrivals per virtual second")
    p.add_argument("--duration", type=float, default=0.5,
                   help="trace length in virtual seconds")
    p.add_argument("--seed", type=int, default=0,
                   help="trace seed (same seed -> identical workload)")
    p.add_argument("--tenants", default="gold:2:32:2,free:0:8:1",
                   help="comma list of name[:priority[:quota[:weight]]] "
                        "('' = single default tenant)")
    p.add_argument("--slo", type=float, default=0.05,
                   help="per-query latency SLO, virtual seconds")
    p.add_argument("--queue-cap", type=int, default=64,
                   help="bounded admission queue capacity")
    p.add_argument("--batch-cap", type=int, default=16,
                   help="max queries fused into one batch")
    p.add_argument("--window", type=float, default=0.0,
                   help="min virtual seconds between batch dispatches")
    p.add_argument("--walk-frac", type=float, default=0.0,
                   help="fraction of arrivals that are walk queries")
    p.add_argument("--walk-length", type=int, default=8)
    p.add_argument("--mode", default="batched",
                   choices=("engine", "tensor", "batched"),
                   help="fused execution mode for SSPPR batches")
    p.add_argument("--runtime", default="sim", choices=("sim", "threads"),
                   help="drain on the virtual-time scheduler or real "
                        "threads (identical outputs either way)")
    p.add_argument("--drop", type=float, default=0.0,
                   help="chaos: per-message drop probability")
    p.add_argument("--fault-seed", type=int, default=7)
    p.add_argument("--max-attempts", type=int, default=6)
    p.add_argument("--timeout", type=float, default=0.05,
                   help="per-attempt RPC timeout, virtual seconds")
    p.add_argument("--burst-factor", type=float, default=8.0,
                   help="bursty trace: burst-to-base intensity ratio")
    p.add_argument("--period", type=float, default=0.2,
                   help="bursty trace: burst cycle length, seconds")
    p.add_argument("--duty", type=float, default=0.25,
                   help="bursty trace: fraction of each cycle in burst")
    p.add_argument("--json", action="store_true",
                   help="emit the report row as JSON")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("chaos", help="clean vs faulty run, one shot")
    add_engine_args(p)
    p.add_argument("--queries", type=int, default=16)
    p.add_argument("--alpha", type=float, default=0.462)
    p.add_argument("--epsilon", type=float, default=1e-6)
    p.add_argument("--fault-seed", type=int, default=7,
                   help="fault plan seed (faults replay deterministically)")
    p.add_argument("--drop", type=float, default=0.05,
                   help="per-message drop probability")
    p.add_argument("--crash-machine", type=int, default=-1,
                   help="crash this machine's storage server (-1 = none)")
    p.add_argument("--crash-at", type=float, default=0.0,
                   help="virtual time the crash starts")
    p.add_argument("--recover-at", type=float, default=float("inf"),
                   help="virtual time the server recovers (inf = never)")
    p.add_argument("--max-attempts", type=int, default=4)
    p.add_argument("--timeout", type=float, default=0.05,
                   help="per-attempt RPC timeout, virtual seconds")
    p.add_argument("--degradation", default="skip_remote",
                   choices=[m.value for m in DegradationMode],
                   help="what a query does when retries are exhausted")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("profile",
                       help="traced run -> Chrome trace JSON + metrics")
    add_engine_args(p)
    p.add_argument("--queries", type=int, default=8)
    p.add_argument("--alpha", type=float, default=0.462)
    p.add_argument("--epsilon", type=float, default=1e-6)
    p.add_argument("--mode", default="engine",
                   choices=("engine", "tensor", "batched"))
    p.add_argument("--out", default="trace.json",
                   help="Chrome trace_event JSON output path")
    p.add_argument("--format", default="chrome",
                   choices=("chrome", "stats", "table"),
                   help="chrome: trace file + tables; stats: metrics JSON "
                        "to stdout; table: metrics table only")
    p.add_argument("--stream-batches", type=int, default=0,
                   help="also run N streaming update batches and fold the "
                        "stream.*/rebalance.* counters into the output "
                        "(0 = off)")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("doctor",
                       help="trace analytics: critical paths, stragglers, "
                            "cache verdicts (docs/observability.md)")
    p.add_argument("graph", nargs="?", default="products",
                   help="dataset name or graph .npz path (default products)")
    p.add_argument("--scale", type=_scale_value, default=0.1,
                   help="stand-in scale: a fraction or tiny/small/full")
    p.add_argument("--shards", default=None,
                   help="load a saved sharded graph instead")
    p.add_argument("--machines", type=int, default=4)
    p.add_argument("--procs", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-fetch", action="store_true",
                   help="disable the adaptive fetch layer")
    p.add_argument("--fetch-cache-bytes", type=int, default=None,
                   help="hot-vertex cache budget per machine")
    p.add_argument("--queries", type=int, default=8)
    p.add_argument("--alpha", type=float, default=0.462)
    p.add_argument("--epsilon", type=float, default=1e-6)
    p.add_argument("--max-spans", type=int, default=None,
                   help="span cap for the traced run (overflow flags the "
                        "report as trace-incomplete)")
    p.add_argument("--timeline", type=float, default=None,
                   help="sample a telemetry timeline at this virtual-time "
                        "interval (seconds)")
    p.add_argument("--drop", type=float, default=0.0,
                   help="chaos: per-message drop probability")
    p.add_argument("--fault-seed", type=int, default=7)
    p.add_argument("--max-attempts", type=int, default=6)
    p.add_argument("--timeout", type=float, default=0.05,
                   help="per-attempt RPC timeout, virtual seconds")
    p.add_argument("--top", type=int, default=10,
                   help="critical-path buckets to print")
    p.add_argument("--json", action="store_true",
                   help="emit the full diagnosis as JSON")
    p.add_argument("--out", default=None,
                   help="also write the diagnosis JSON here (feeds --diff)")
    p.add_argument("--load", default=None, metavar="REPORT.json",
                   help="render a saved diagnosis instead of running")
    p.add_argument("--diff", nargs=2, default=None,
                   metavar=("BEFORE.json", "AFTER.json"),
                   help="compare two saved diagnoses: name moved buckets")
    p.set_defaults(fn=cmd_doctor)

    p = sub.add_parser("analyze",
                       help="determinism/concurrency lint over the tree")
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: src/repro)")
    p.add_argument("--rule", action="append", default=None,
                   metavar="REPNNN",
                   help="run only this rule (repeatable)")
    p.add_argument("--json", action="store_true",
                   help="emit violations as JSON")
    p.add_argument("--list-rules", action="store_true",
                   help="list rule IDs and titles, then exit")
    p.add_argument("--no-config", action="store_true",
                   help="ignore the [tool.repro.analysis] allowlist")
    p.add_argument("--changed-only", action="store_true",
                   help="report only findings in files changed vs --base "
                        "(the whole tree is still analyzed)")
    p.add_argument("--base", default="HEAD", metavar="REF",
                   help="git ref --changed-only diffs against "
                        "(default: HEAD)")
    p.add_argument("--sarif", nargs="?", const="-", default=None,
                   metavar="FILE",
                   help="emit SARIF 2.1.0 to FILE ('-' or bare = stdout)")
    p.add_argument("--graph", choices=("dot", "json"), default=None,
                   help="dump the whole-program call/lock graph and exit")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="ratchet baseline file "
                        "(default: analysis-baseline.json)")
    p.add_argument("--update-baseline", action="store_true",
                   help="freeze current findings as the new baseline")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline: any finding fails")
    p.set_defaults(fn=cmd_analyze)
    return parser


BENCH_SUBCOMMANDS = {"quick", "run", "report", "diff", "check", "lint"}


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # legacy spelling: `repro bench <graph> ...` meant the one-shot
    # engine-vs-baselines comparison, now `bench quick`
    if argv and argv[0] == "bench" and (
        len(argv) == 1
        or argv[1] not in BENCH_SUBCOMMANDS | {"-h", "--help"}
    ):
        argv.insert(1, "quick")
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
