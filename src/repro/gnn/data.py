"""Mini-batch container and a synthetic node-classification task.

:func:`community_task` turns a planted-community graph (our dataset
stand-ins) into a supervised problem: the label of a node is its community,
the features are a noisy one-hot of that community.  PPR-based subgraphs
concentrate inside communities, so ShaDow-SAGE learns this task quickly —
a good end-to-end signal that the whole pipeline (PPR -> convert_batch ->
features -> training) is wired correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_in_range, check_positive


@dataclass
class Batch:
    """One ShaDow mini-batch: a merged subgraph with ego read-out rows."""

    x: np.ndarray           # (n_sub, dim) features
    adj: sp.csr_matrix      # (n_sub, n_sub) induced adjacency
    ego_idx: np.ndarray     # rows to classify
    y: np.ndarray           # labels of the ego rows
    global_ids: np.ndarray  # subgraph row -> global node ID

    def __post_init__(self) -> None:
        n = self.x.shape[0]
        if self.adj.shape != (n, n):
            raise ValueError(
                f"adj shape {self.adj.shape} != ({n}, {n})"
            )
        if len(self.ego_idx) != len(self.y):
            raise ValueError("ego_idx and y length mismatch")
        if len(self.global_ids) != n:
            raise ValueError("global_ids length mismatch")

    @property
    def n_nodes(self) -> int:
        return self.x.shape[0]


def community_task(n_nodes: int, n_communities: int, feature_dim: int, *,
                   noise: float = 0.3, seed=0
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Features + labels aligned with contiguous planted communities.

    Matches the community layout of
    :func:`repro.graph.generators.powerlaw_cluster` (equal contiguous
    blocks).  Returns ``(features, labels)``.
    """
    check_positive("n_nodes", n_nodes)
    check_positive("n_communities", n_communities)
    check_positive("feature_dim", feature_dim)
    check_in_range("noise", noise, 0.0, 10.0, inclusive=True)
    if feature_dim < n_communities:
        raise ValueError(
            f"feature_dim ({feature_dim}) must be >= n_communities "
            f"({n_communities}) for the one-hot signal"
        )
    rng = rng_from_seed(seed)
    bounds = np.linspace(0, n_nodes, n_communities + 1).astype(np.int64)
    labels = np.zeros(n_nodes, dtype=np.int64)
    for c in range(n_communities):
        labels[bounds[c]:bounds[c + 1]] = c
    features = rng.normal(0.0, noise, size=(n_nodes, feature_dim))
    features[np.arange(n_nodes), labels] += 1.0
    return features, labels
