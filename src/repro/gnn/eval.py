"""Model evaluation with PPR-sampled subgraphs.

Inference mirrors training's data path (ShaDow's principle: the model only
ever sees top-K PPR subgraphs), but runs single-machine against the sharded
storage directly — evaluation is embarrassingly parallel and needs no
virtual cluster.  Used for held-out accuracy in examples/benches and for
replica-consistency checks in tests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.gnn.data import Batch
from repro.gnn.model import ShadowSage
from repro.gnn.sampler import topk_ppr_nodes
from repro.ppr.forward_push_parallel import forward_push_parallel
from repro.ppr.params import PPRParams
from repro.storage.build import ShardedGraph
from repro.utils.validation import check_positive


def local_ppr_batch(sharded: ShardedGraph, features: np.ndarray,
                    labels: np.ndarray, egos: np.ndarray, *,
                    topk: int = 32,
                    params: PPRParams | None = None) -> Batch:
    """Build one evaluation batch: merged top-K PPR subgraphs of ``egos``.

    Runs the single-machine Forward Push per ego (no RPC) and induces the
    union subgraph from the global CSR — the evaluation-time shortcut for
    the distributed ``convert_batch``.
    """
    check_positive("topk", topk)
    params = params if params is not None else PPRParams(epsilon=1e-5)
    graph = sharded.graph
    egos = np.asarray(egos, dtype=np.int64)
    node_sets = []
    for ego in egos.tolist():
        ppr, _, _ = forward_push_parallel(graph, ego, params)
        # dense top-k (evaluation-time shortcut)
        k = min(topk, np.count_nonzero(ppr > 0))
        if k == 0:
            node_sets.append(np.array([ego], dtype=np.int64))
            continue
        top = np.argpartition(-ppr, k - 1)[:k]
        node_sets.append(np.union1d(top, [ego]))
    node_set = np.unique(np.concatenate(node_sets))

    # Induce the adjacency over node_set from the global CSR.
    local_index = {int(g): i for i, g in enumerate(node_set)}
    counts = np.diff(graph.indptr)[node_set]
    starts = graph.indptr[node_set]
    offsets = np.zeros(len(node_set) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    idx = np.repeat(starts - offsets[:-1], counts) + np.arange(offsets[-1])
    rows = np.repeat(np.arange(len(node_set)), counts)
    nbrs = graph.indices[idx]
    keep = np.isin(nbrs, node_set)
    cols = np.searchsorted(node_set, nbrs[keep])
    adj = sp.coo_matrix(
        (graph.weights[idx][keep], (rows[keep], cols)),
        shape=(len(node_set), len(node_set)),
    ).tocsr()
    del local_index
    return Batch(
        x=features[node_set],
        adj=adj,
        ego_idx=np.searchsorted(node_set, egos),
        y=labels[egos],
        global_ids=node_set,
    )


def evaluate(model: ShadowSage, sharded: ShardedGraph, features: np.ndarray,
             labels: np.ndarray, egos: np.ndarray, *, topk: int = 32,
             batch_size: int = 32,
             params: PPRParams | None = None) -> dict:
    """Accuracy (and per-class recall) of ``model`` on the given egos."""
    egos = np.asarray(egos, dtype=np.int64)
    model.train_mode(False)
    correct = 0
    preds = np.empty(len(egos), dtype=np.int64)
    try:
        for start in range(0, len(egos), batch_size):
            chunk = egos[start:start + batch_size]
            batch = local_ppr_batch(sharded, features, labels, chunk,
                                    topk=topk, params=params)
            p = model.predict(batch)
            preds[start:start + len(chunk)] = p
            correct += int((p == batch.y).sum())
    finally:
        model.train_mode(True)
    accuracy = correct / max(len(egos), 1)
    n_classes = int(labels.max()) + 1
    recall = {}
    for c in range(n_classes):
        mask = labels[egos] == c
        if mask.any():
            recall[c] = float((preds[mask] == c).mean())
    return {"accuracy": accuracy, "n_egos": len(egos),
            "per_class_recall": recall}
