"""ShaDow-SAGE: GraphSAGE applied to per-ego PPR subgraphs.

ShaDow's [33] decoupling principle: rather than expanding neighborhoods
layer by layer, build one *bounded* subgraph per ego node (here: the top-K
personalized-PageRank nodes) and run an arbitrarily deep GNN on it, reading
out the ego's representation.  The model below runs a stack of mean-SAGE
convolutions over the batch subgraph and classifies the ego rows.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.data import Batch
from repro.gnn.layers import (
    Dropout,
    GcnConv,
    Linear,
    Parameter,
    SageConv,
    relu,
    relu_grad,
    softmax_cross_entropy,
)
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive


class ShadowSage:
    """A small, fully hand-differentiated ShaDow-SAGE classifier."""

    def __init__(self, in_dim: int, hidden_dim: int, n_classes: int, *,
                 n_layers: int = 2, conv: str = "sage",
                 dropout: float = 0.0, seed=0) -> None:
        check_positive("in_dim", in_dim)
        check_positive("hidden_dim", hidden_dim)
        check_positive("n_classes", n_classes)
        check_positive("n_layers", n_layers)
        if conv not in ("sage", "gcn"):
            raise ValueError(f"conv must be 'sage' or 'gcn', got {conv!r}")
        rng = rng_from_seed(seed)
        conv_cls = SageConv if conv == "sage" else GcnConv
        self.conv_type = conv
        dims = [in_dim] + [hidden_dim] * n_layers
        self.convs = [
            conv_cls(dims[i], dims[i + 1],
                     seed=rng.integers(0, 2**31), name=f"conv{i}")
            for i in range(n_layers)
        ]
        self.dropouts = [
            Dropout(dropout, seed=rng.integers(0, 2**31))
            for _ in range(n_layers)
        ]
        self.head = Linear(hidden_dim, n_classes,
                           seed=rng.integers(0, 2**31), name="head")
        self._pre_acts: list[np.ndarray] = []
        self._ego_idx: np.ndarray | None = None
        self._n_rows = 0

    def train_mode(self, training: bool = True) -> None:
        """Toggle dropout (training vs inference behaviour)."""
        for d in self.dropouts:
            d.training = training

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for conv in self.convs:
            params.extend(conv.parameters())
        params.extend(self.head.parameters())
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- forward/backward ---------------------------------------------------
    def forward(self, batch: Batch) -> np.ndarray:
        """Logits for the batch's ego nodes, shape ``(n_egos, n_classes)``."""
        conv_cls = SageConv if self.conv_type == "sage" else GcnConv
        adj_norm = conv_cls.normalize_adj(batch.adj)
        h = batch.x
        self._pre_acts = []
        for conv, drop in zip(self.convs, self.dropouts):
            z = conv.forward(h, adj_norm)
            self._pre_acts.append(z)
            h = drop.forward(relu(z))
        self._ego_idx = batch.ego_idx
        self._n_rows = h.shape[0]
        return self.head.forward(h[batch.ego_idx])

    def backward(self, dlogits: np.ndarray) -> None:
        """Accumulate parameter gradients for the last forward pass."""
        assert self._ego_idx is not None, "backward before forward"
        d_ego = self.head.backward(dlogits)
        dh = np.zeros((self._n_rows, d_ego.shape[1]))
        dh[self._ego_idx] = d_ego
        for conv, drop, z in zip(reversed(self.convs),
                                 reversed(self.dropouts),
                                 reversed(self._pre_acts)):
            dh = conv.backward(relu_grad(z, drop.backward(dh)))

    def loss_and_grad(self, batch: Batch) -> tuple[float, float]:
        """One training step's compute: returns ``(loss, accuracy)``.

        Gradients are *accumulated* into the parameters; callers zero them
        per step and run the optimizer after (optionally) all-reducing.
        """
        logits = self.forward(batch)
        loss, dlogits, probs = softmax_cross_entropy(logits, batch.y)
        self.backward(dlogits)
        acc = float((probs.argmax(axis=1) == batch.y).mean())
        return loss, acc

    def predict(self, batch: Batch) -> np.ndarray:
        """Class predictions for the batch's ego nodes."""
        return self.forward(batch).argmax(axis=1)

    # -- DDP plumbing ----------------------------------------------------------
    def flatten_grads(self) -> np.ndarray:
        """All gradients as one flat vector (all-reduce payload)."""
        return np.concatenate([p.grad.ravel() for p in self.parameters()])

    def load_flat_grads(self, flat: np.ndarray) -> None:
        """Inverse of :meth:`flatten_grads`."""
        offset = 0
        for p in self.parameters():
            n = p.size
            p.grad[...] = flat[offset:offset + n].reshape(p.value.shape)
            offset += n
        if offset != len(flat):
            raise ValueError(
                f"flat gradient has {len(flat)} entries, model needs {offset}"
            )

    def state_copy(self) -> list[np.ndarray]:
        """Snapshot of parameter values (replica-sync checks in tests)."""
        return [p.value.copy() for p in self.parameters()]
