"""``repro.gnn`` — the GNN-training case study (paper Section 4.5).

A NumPy re-creation of Figure 7's pipeline: distributed mini-batch training
of a ShaDow-SAGE model where every mini-batch subgraph is built *on the fly*
from top-K SSPPR scores computed by the PPR engine, features are sliced from
the cross-machine feature store, and gradients are synchronized with a
DistributedDataParallel-style all-reduce.

The neural side is deliberately small but real: dense layers and mean-
aggregation SAGE convolutions with hand-written backward passes, softmax
cross-entropy, SGD and Adam — enough to demonstrate end-to-end learning on
a node-classification task without a deep-learning framework.
"""

from repro.gnn.data import Batch, community_task
from repro.gnn.eval import evaluate, local_ppr_batch
from repro.gnn.layers import Dropout, GcnConv, Linear, Parameter, SageConv, relu, relu_grad
from repro.gnn.model import ShadowSage
from repro.gnn.optim import SGD, Adam
from repro.gnn.sampler import convert_batch, topk_ppr_nodes
from repro.gnn.train import TrainingHistory, run_distributed_training

__all__ = [
    "Adam",
    "Batch",
    "Dropout",
    "GcnConv",
    "Linear",
    "Parameter",
    "SGD",
    "SageConv",
    "ShadowSage",
    "TrainingHistory",
    "community_task",
    "evaluate",
    "local_ppr_batch",
    "convert_batch",
    "relu",
    "relu_grad",
    "run_distributed_training",
    "topk_ppr_nodes",
]
