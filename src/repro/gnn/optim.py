"""Optimizers over :class:`~repro.gnn.layers.Parameter` lists."""

from __future__ import annotations

import numpy as np

from repro.gnn.layers import Parameter
from repro.utils.validation import check_in_range, check_positive


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.1,
                 momentum: float = 0.0) -> None:
        check_positive("lr", lr)
        check_in_range("momentum", momentum, 0.0, 1.0, inclusive=True)
        self.parameters = parameters
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if self.momentum > 0.0:
                v *= self.momentum
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba, 2015) — the optimizer of the paper's Figure 7."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-2,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8) -> None:
        check_positive("lr", lr)
        check_in_range("beta1", betas[0], 0.0, 1.0)
        check_in_range("beta2", betas[1], 0.0, 1.0)
        check_positive("eps", eps)
        self.parameters = parameters
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in parameters]
        self._v = [np.zeros_like(p.value) for p in parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            m *= b1
            m += (1.0 - b1) * p.grad
            v *= b2
            v += (1.0 - b2) * p.grad ** 2
            p.value -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
