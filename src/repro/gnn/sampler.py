"""PPR-based mini-batch construction — the paper's ``convert_batch``.

Following ShaDow's design principle, each ego node's subgraph is the set of
its top-K SSPPR nodes; a mini-batch merges the per-ego node sets, induces
the subgraph over the union (adjacency fetched shard-by-shard through the
distributed storage), and slices features from the cross-machine feature
store.  All cross-machine traffic is batched per shard, like every other
engine operation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.gnn.data import Batch
from repro.ppr.ppr_ops import SSPPR
from repro.simt.events import Wait, WaitAll
from repro.storage.build import ShardedGraph
from repro.storage.dist_storage import DistGraphStorage
from repro.storage.feature_store import DistFeatureStore, assemble_rows
from repro.utils.validation import check_positive


def topk_ppr_nodes(state: SSPPR, sharded: ShardedGraph, k: int,
                   *, include: np.ndarray | None = None) -> np.ndarray:
    """Global IDs of the top-``k`` PPR nodes of a finished query.

    ``include`` forces specific globals (the ego itself) into the set.
    """
    check_positive("k", k)
    gids, values = state.results_global(sharded)
    if len(gids) > k:
        part = np.argpartition(-values, k - 1)[:k]
        gids = gids[part]
    if include is not None:
        gids = np.union1d(gids, include)
    return np.sort(gids)


def induce_subgraph(sharded: ShardedGraph, g: DistGraphStorage,
                    node_set: np.ndarray):
    """Coroutine: induced adjacency over ``node_set`` via batched fetches.

    Fetches the neighbor lists of every node in the set (one RPC per owning
    shard), keeps only arcs whose endpoint is also in the set, and relabels
    to subgraph-local rows.  Returns ``scipy.sparse.csr_matrix``.
    """
    node_set = np.asarray(node_set, dtype=np.int64)
    local, shard = sharded.address_of(node_set)
    futs, masks = {}, {}
    for j in range(sharded.n_shards):
        mask = shard == j
        if not mask.any():
            continue
        masks[j] = mask
        futs[j] = g.get_neighbor_infos(j, local[mask])
    rows_parts, cols_parts, data_parts = [], [], []
    row_of = {int(gid): i for i, gid in enumerate(node_set)}
    for j in sorted(futs):
        infos = yield Wait(futs[j])
        (indptr, _l, _s, nbr_global, weights, _wd, _src) = infos.to_arrays()
        src_rows = np.flatnonzero(masks[j])
        counts = np.diff(indptr)
        row_ids = np.repeat(src_rows, counts)
        keep = np.isin(nbr_global, node_set)
        col_ids = np.searchsorted(node_set, nbr_global[keep])
        rows_parts.append(row_ids[keep])
        cols_parts.append(col_ids)
        data_parts.append(weights[keep])
    n = len(node_set)
    if rows_parts:
        adj = sp.coo_matrix(
            (np.concatenate(data_parts),
             (np.concatenate(rows_parts), np.concatenate(cols_parts))),
            shape=(n, n),
        ).tocsr()
    else:
        adj = sp.csr_matrix((n, n))
    del row_of
    return adj


def convert_batch(sharded: ShardedGraph, g: DistGraphStorage,
                  feats: DistFeatureStore, node_set: np.ndarray,
                  ego_global: np.ndarray, labels_of_ego: np.ndarray):
    """Coroutine: assemble one ShaDow :class:`~repro.gnn.data.Batch`.

    ``node_set`` must be sorted and contain every ego.  Fetches features and
    adjacency concurrently (both are per-shard batched RPCs).
    """
    node_set = np.asarray(node_set, dtype=np.int64)
    ego_global = np.asarray(ego_global, dtype=np.int64)
    missing = np.setdiff1d(ego_global, node_set)
    if len(missing):
        raise ValueError(f"ego nodes missing from node_set: {missing[:5]}")

    feat_futs, feat_masks = feats.gather_futures(sharded, node_set)
    adj = yield from induce_subgraph(sharded, g, node_set)
    order = sorted(feat_futs)
    parts_list = yield WaitAll([feat_futs[j] for j in order])
    parts = dict(zip(order, parts_list))
    dim = next(iter(parts.values())).shape[1]
    x = assemble_rows(len(node_set), dim, parts, feat_masks)
    ego_idx = np.searchsorted(node_set, ego_global)
    return Batch(x=x, adj=adj, ego_idx=ego_idx, y=labels_of_ego,
                 global_ids=node_set)
