"""Neural-network building blocks with hand-written gradients.

Minimal but real: a :class:`Parameter` holds value + accumulated gradient;
:class:`Linear` and :class:`SageConv` cache forward activations and
implement exact backward passes.  Glorot initialization, NumPy throughout.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import rng_from_seed


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    @property
    def size(self) -> int:
        return self.value.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name}, shape={self.value.shape})"


def glorot(rng, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform init."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, dout: np.ndarray) -> np.ndarray:
    return dout * (x > 0.0)


class Linear:
    """Affine layer ``y = x @ W + b`` with cached input for backward."""

    def __init__(self, in_dim: int, out_dim: int, *, seed=None,
                 name: str = "linear") -> None:
        rng = rng_from_seed(seed)
        self.weight = Parameter(glorot(rng, in_dim, out_dim), f"{name}.W")
        self.bias = Parameter(np.zeros(out_dim), f"{name}.b")
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward"
        self.weight.grad += self._x.T @ dout
        self.bias.grad += dout.sum(axis=0)
        return dout @ self.weight.value.T


class SageConv:
    """GraphSAGE mean-aggregation convolution.

    ``h' = h @ W_self + mean_agg(h) @ W_nbr + b`` where ``mean_agg`` is the
    row-normalized adjacency of the mini-batch subgraph.  The aggregation
    operator is linear, so backward just applies its transpose.
    """

    def __init__(self, in_dim: int, out_dim: int, *, seed=None,
                 name: str = "sage") -> None:
        rng = rng_from_seed(seed)
        self.w_self = Parameter(glorot(rng, in_dim, out_dim), f"{name}.Wself")
        self.w_nbr = Parameter(glorot(rng, in_dim, out_dim), f"{name}.Wnbr")
        self.bias = Parameter(np.zeros(out_dim), f"{name}.b")
        self._h: np.ndarray | None = None
        self._agg_h: np.ndarray | None = None
        self._adj_norm: sp.csr_matrix | None = None

    def parameters(self) -> list[Parameter]:
        return [self.w_self, self.w_nbr, self.bias]

    @staticmethod
    def normalize_adj(adj: sp.csr_matrix) -> sp.csr_matrix:
        """Row-normalize: mean aggregation, zero rows kept."""
        deg = np.asarray(adj.sum(axis=1)).ravel()
        inv = np.zeros_like(deg)
        nz = deg > 0
        inv[nz] = 1.0 / deg[nz]
        return sp.diags(inv) @ adj

    def forward(self, h: np.ndarray, adj_norm: sp.csr_matrix) -> np.ndarray:
        self._h = h
        self._adj_norm = adj_norm
        self._agg_h = adj_norm @ h
        return (h @ self.w_self.value + self._agg_h @ self.w_nbr.value
                + self.bias.value)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._h is not None, "backward before forward"
        self.w_self.grad += self._h.T @ dout
        self.w_nbr.grad += self._agg_h.T @ dout
        self.bias.grad += dout.sum(axis=0)
        dh = dout @ self.w_self.value.T
        d_agg = dout @ self.w_nbr.value.T
        dh += self._adj_norm.T @ d_agg
        return dh


class GcnConv:
    """Kipf-Welling graph convolution: ``h' = A_hat @ h @ W + b``.

    ``A_hat`` is the symmetrically normalized adjacency with self-loops,
    computed once per batch via :meth:`normalize_adj`.
    """

    def __init__(self, in_dim: int, out_dim: int, *, seed=None,
                 name: str = "gcn") -> None:
        rng = rng_from_seed(seed)
        self.weight = Parameter(glorot(rng, in_dim, out_dim), f"{name}.W")
        self.bias = Parameter(np.zeros(out_dim), f"{name}.b")
        self._agg_h: np.ndarray | None = None
        self._adj_norm: sp.csr_matrix | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    @staticmethod
    def normalize_adj(adj: sp.csr_matrix) -> sp.csr_matrix:
        """``D^-1/2 (A + I) D^-1/2`` — GCN's symmetric normalization."""
        n = adj.shape[0]
        a_hat = adj + sp.identity(n, format="csr")
        deg = np.asarray(a_hat.sum(axis=1)).ravel()
        inv_sqrt = np.zeros_like(deg)
        nz = deg > 0
        inv_sqrt[nz] = 1.0 / np.sqrt(deg[nz])
        d = sp.diags(inv_sqrt)
        return d @ a_hat @ d

    def forward(self, h: np.ndarray, adj_norm: sp.csr_matrix) -> np.ndarray:
        self._adj_norm = adj_norm
        self._agg_h = adj_norm @ h
        return self._agg_h @ self.weight.value + self.bias.value

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._agg_h is not None, "backward before forward"
        self.weight.grad += self._agg_h.T @ dout
        self.bias.grad += dout.sum(axis=0)
        d_agg = dout @ self.weight.value.T
        # A_hat is symmetric, so its transpose is itself.
        return self._adj_norm @ d_agg


class Dropout:
    """Inverted dropout: scales kept units by ``1/(1-rate)`` at train time."""

    def __init__(self, rate: float, *, seed=None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng_from_seed(seed)
        self._mask: np.ndarray | None = None
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray
                          ) -> tuple[float, np.ndarray, np.ndarray]:
    """Mean CE loss; returns ``(loss, dlogits, probs)``."""
    if len(logits) != len(labels):
        raise ValueError(
            f"logits cover {len(logits)} rows, labels {len(labels)}"
        )
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = len(labels)
    loss = float(-np.log(probs[np.arange(n), labels] + 1e-12).mean())
    dlogits = probs.copy()
    dlogits[np.arange(n), labels] -= 1.0
    dlogits /= n
    return loss, dlogits, probs
