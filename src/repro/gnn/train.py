"""Distributed GNN training with on-the-fly PPR sampling — Figure 7.

One training process per machine, each holding a model replica (the paper
uses one GPU per machine with ``DistributedDataParallel``).  Per step:

1. run top-K SSPPR for the step's ego nodes through the PPR engine;
2. ``convert_batch``: induce the subgraph + slice cross-machine features;
3. forward/backward on the local replica;
4. all-reduce gradients (the DDP synchronization point);
5. optimizer step — replicas stay bit-identical because they apply the
   same averaged gradients.

The whole loop runs on the virtual-time cluster, so training throughput and
the share of time spent in PPR sampling are measurable the same way as
SSPPR benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.cluster import SimCluster
from repro.engine.config import EngineConfig
from repro.engine.engine import _late_proc
from repro.engine.query import assign_queries
from repro.gnn.data import Batch, community_task
from repro.gnn.model import ShadowSage
from repro.gnn.optim import Adam
from repro.gnn.sampler import convert_batch, topk_ppr_nodes
from repro.graph.csr import CSRGraph
from repro.ppr.distributed import OptLevel, distributed_sppr_query
from repro.ppr.params import PPRParams
from repro.simt.events import Wait
from repro.storage.build import build_shards
from repro.storage.dist_storage import DistGraphStorage
from repro.storage.feature_store import DistFeatureStore, split_features
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive


@dataclass
class TrainingHistory:
    """Per-step records from one distributed training run."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    makespan: float = 0.0
    steps: int = 0
    #: final parameter snapshots, one per machine replica (DDP keeps these
    #: bit-identical; tests assert it)
    replica_states: list = field(default_factory=list)

    def final_accuracy(self, window: int = 5) -> float:
        if not self.accuracies:
            return 0.0
        return float(np.mean(self.accuracies[-window:]))


def gnn_training_driver(g: DistGraphStorage, feats: DistFeatureStore, proc,
                        ctx, sharded, model: ShadowSage, labels: np.ndarray,
                        ego_batches: list[np.ndarray], params: PPRParams,
                        *, topk: int, lr: float, world_size: int,
                        worker_name: str, records: list):
    """Coroutine: one machine's replica through all its mini-batches."""
    optimizer = Adam(model.parameters(), lr=lr)
    local_ids, _ = sharded.address_of(
        np.concatenate(ego_batches) if ego_batches else np.empty(0, np.int64)
    )
    offset = 0
    with proc.span("train_epoch", n_steps=len(ego_batches)):
        for step, egos in enumerate(ego_batches):
            with proc.span("train_step", step=step):
                # (1) top-K SSPPR per ego through the PPR engine
                node_sets = []
                for i in range(len(egos)):
                    lid = int(local_ids[offset + i])
                    state = yield from distributed_sppr_query(
                        g, proc, lid, params, opt=OptLevel.OVERLAP
                    )
                    node_sets.append(topk_ppr_nodes(state, sharded, topk,
                                                    include=egos[i:i + 1]))
                offset += len(egos)
                node_set = np.unique(np.concatenate(node_sets))

                # (2) convert_batch: induced subgraph + cross-machine features
                batch: Batch = yield from convert_batch(
                    sharded, g, feats, node_set, egos, labels[egos]
                )

                # (3) local forward/backward
                model.zero_grad()
                with proc.measured("train_compute"):
                    loss, acc = model.loss_and_grad(batch)

                # (4) DDP gradient synchronization
                flat = model.flatten_grads()
                mean_grad = yield Wait(ctx.allreduce_mean(
                    f"ddp:step{step}", worker_name, world_size, flat
                ))
                model.load_flat_grads(mean_grad)

                # (5) replicas apply identical averaged gradients
                with proc.measured("train_compute"):
                    optimizer.step()
            records.append((step, loss, acc))
    return len(ego_batches)


def run_distributed_training(graph: CSRGraph, features: np.ndarray,
                             labels: np.ndarray,
                             config: EngineConfig | None = None, *,
                             n_steps: int = 8, batch_size: int = 8,
                             topk: int = 32, lr: float = 1e-2,
                             params: PPRParams | None = None,
                             model_seed: int = 0, seed: int = 0
                             ) -> TrainingHistory:
    """Figure 7 end-to-end: returns the loss/accuracy history.

    One training process per machine (``procs_per_machine`` is ignored —
    DDP has a single replica per device).  Every replica starts from the
    same ``model_seed``, so parameters stay synchronized.
    """
    check_positive("n_steps", n_steps)
    check_positive("batch_size", batch_size)
    config = config if config is not None else EngineConfig(n_machines=2)
    params = params if params is not None else PPRParams(epsilon=1e-5)
    rng = rng_from_seed(seed)

    partitioner = config.partitioner
    sharded = build_shards(graph, partitioner.partition(graph,
                                                        config.n_shards),
                           seed=config.seed)
    feature_shards = split_features(sharded, features)
    cluster = SimCluster(sharded, config)
    feat_rrefs = [
        cluster.ctx.create_remote(config.server_name(m), "features",
                                  lambda fs=feature_shards[m]: fs)
        for m in range(config.n_machines)
    ]

    # Per-machine ego batches: each machine trains on its own core nodes
    # (the owner-compute rule), batch_size egos per machine per step.
    n_classes = int(labels.max()) + 1
    records: list[tuple[int, float, float]] = []
    models: list[ShadowSage] = []
    world = config.n_machines
    for m in range(config.n_machines):
        core = sharded.shards[m].core_global
        degrees = np.diff(graph.indptr)
        candidates = core[degrees[core] > 0]
        if len(candidates) == 0:
            candidates = core
        batches = [
            rng.choice(candidates, size=min(batch_size, len(candidates)),
                       replace=False)
            for _ in range(n_steps)
        ]
        name = config.worker_name(m, 0)
        g = DistGraphStorage(cluster.rrefs, m, name, compress=True)
        feats = DistFeatureStore(feat_rrefs, name)
        model = ShadowSage(features.shape[1], 32, n_classes,
                           seed=model_seed)
        models.append(model)
        body = gnn_training_driver(
            g, feats, _late_proc(cluster, name), cluster.ctx, sharded,
            model, labels, batches, params, topk=topk, lr=lr,
            world_size=world, worker_name=name, records=records,
        )
        cluster.spawn_compute(m, 0, body)

    makespan = cluster.run()
    history = TrainingHistory(makespan=makespan, steps=n_steps,
                              replica_states=[m.state_copy() for m in models])
    # Average replicas' per-step metrics (they see different egos).
    for step in range(n_steps):
        step_records = [(l, a) for s, l, a in records if s == step]
        if step_records:
            history.losses.append(float(np.mean([l for l, _ in step_records])))
            history.accuracies.append(
                float(np.mean([a for _, a in step_records]))
            )
    return history


def make_community_dataset(graph: CSRGraph, n_communities: int = 64,
                           feature_dim: int = 64, *, noise: float = 0.3,
                           seed: int = 0):
    """Convenience: features/labels for a planted-community graph."""
    return community_task(graph.n_nodes, n_communities, feature_dim,
                          noise=noise, seed=seed)
