"""Virtual-time futures.

A :class:`SimFuture` resolves at a specific *virtual* time (``ready_time``).
A process that waits on it resumes no earlier than that time, which is how
network round-trips and server queueing delays propagate into caller
timelines.  Mirrors the surface of ``torch.futures.Future`` (``wait`` is the
yield-based :class:`~repro.simt.events.Wait` effect instead of a blocking
call).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError


class SimFuture:
    """A write-once container resolving at a known virtual time."""

    __slots__ = ("_value", "_exception", "_ready_time", "_done", "_callbacks",
                 "tag", "span_id")

    def __init__(self, tag: str | None = None) -> None:
        self._value: Any = None
        self._exception: BaseException | None = None
        self._ready_time = 0.0
        self._done = False
        self._callbacks: list[Callable[["SimFuture"], None]] = []
        #: optional label for tracing/debugging
        self.tag = tag
        #: client span id of the RPC that produced this future (traced runs
        #: only) — lets coalesced waiters link flows back to the origin call
        self.span_id: int | None = None

    # -- state ----------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the future has been resolved (value or exception)."""
        return self._done

    @property
    def ready_time(self) -> float:
        """Virtual time at which the result becomes visible to waiters."""
        if not self._done:
            raise SimulationError(f"future {self.tag!r} not resolved yet")
        return self._ready_time

    @property
    def exception(self) -> BaseException | None:
        """The exception this future resolved with, or None."""
        return self._exception if self._done else None

    def value(self) -> Any:
        """The resolved value; re-raises if resolved with an exception."""
        if not self._done:
            raise SimulationError(f"future {self.tag!r} not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- resolution -----------------------------------------------------
    def set_result(self, value: Any, ready_time: float) -> None:
        """Resolve with ``value`` visible at virtual ``ready_time``."""
        self._resolve(value, None, ready_time)

    def set_exception(self, exc: BaseException, ready_time: float) -> None:
        """Resolve with an exception raised to waiters at ``ready_time``."""
        self._resolve(None, exc, ready_time)

    def _resolve(self, value, exc, ready_time: float) -> None:
        if self._done:
            raise SimulationError(f"future {self.tag!r} resolved twice")
        if ready_time < 0:
            raise ValueError(f"ready_time must be >= 0, got {ready_time}")
        self._value = value
        self._exception = exc
        self._ready_time = ready_time
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_done_callback(self, cb: Callable[["SimFuture"], None]) -> None:
        """Invoke ``cb(self)`` on resolution (immediately if already done)."""
        if self._done:
            cb(self)
        else:
            self._callbacks.append(cb)

    # -- conveniences ----------------------------------------------------
    @classmethod
    def resolved(cls, value: Any, ready_time: float = 0.0,
                 tag: str | None = None) -> "SimFuture":
        """A future already resolved with ``value`` at ``ready_time``."""
        fut = cls(tag=tag)
        fut.set_result(value, ready_time)
        return fut

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"done@{self._ready_time:.6g}" if self._done else "pending"
        return f"SimFuture(tag={self.tag!r}, {state})"
