"""Network cost model for simulated RPC transfers.

The paper's communication substrate is PyTorch RPC over TensorPipe, which it
characterizes as "designed for transferring large tensors with relatively low
frequency": each request pays a fixed dispatch overhead, each tensor in a
payload pays a wrapping/registration cost, and bulk bytes stream at high
bandwidth.  This model captures exactly those three terms plus a propagation
latency:

``transfer_time(nbytes, n_tensors) =
    rpc_overhead + n_tensors * tensor_wrap_cost + nbytes / bandwidth + latency``

The defaults are calibrated to a 100 Gbps-class interconnect with a
TensorPipe-like per-message cost, matching the paper's assumption that remote
communication on a fast cluster costs about the same as cross-socket shared
memory.  The relative magnitudes are what matter for reproducing the paper's
*shapes*: per-request overhead dominates for many small messages (hence RPC
batching wins), per-tensor cost dominates for list-of-small-tensor responses
(hence CSR compression wins).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class NetworkModel:
    """Cost model for one-way message transfer between simulated machines.

    Parameters
    ----------
    rpc_overhead:
        Fixed per-request dispatch cost in seconds (Python->RPC stack entry,
        scheduling, socket syscall).  Default 100 us.
    tensor_wrap_cost:
        Per-tensor serialization/registration cost in seconds.  Default 15 us;
        this is the term the paper's *Compress* optimization attacks by
        replacing a list of per-node tensors with five CSR arrays.
    bandwidth:
        Link bandwidth in bytes/second.  Default 12.5 GB/s (100 Gbps).
    latency:
        One-way propagation delay in seconds.  Default 10 us.
    local_call_overhead:
        Cost of a local (same-machine) storage call through the Python
        binding layer, in seconds.  Local fetches bypass the network but
        still cross the binding boundary once per call.  Default 2 us.
    """

    rpc_overhead: float = 100e-6
    tensor_wrap_cost: float = 15e-6
    bandwidth: float = 12.5e9
    latency: float = 10e-6
    local_call_overhead: float = 2e-6

    def __post_init__(self) -> None:
        check_nonnegative("rpc_overhead", self.rpc_overhead)
        check_nonnegative("tensor_wrap_cost", self.tensor_wrap_cost)
        check_positive("bandwidth", self.bandwidth)
        check_nonnegative("latency", self.latency)
        check_nonnegative("local_call_overhead", self.local_call_overhead)

    def transfer_time(self, nbytes: int, n_tensors: int) -> float:
        """One-way time to move a payload of ``nbytes`` in ``n_tensors`` tensors."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if n_tensors < 0:
            raise ValueError(f"n_tensors must be >= 0, got {n_tensors}")
        return (
            self.rpc_overhead
            + n_tensors * self.tensor_wrap_cost
            + nbytes / self.bandwidth
            + self.latency
        )

    def transfer_time_under(self, plan, nbytes: int, n_tensors: int, *,
                            src_machine: int, dst_machine: int,
                            caller: str, call_index: int,
                            attempt: int) -> float:
        """One-way transfer time with a :class:`~repro.simt.faults.FaultPlan`.

        The healthy-path :meth:`transfer_time` is scaled by the slower
        endpoint's straggler factor, then the plan's constant per-link extra
        latency and any (deterministically rolled) latency spike are added.
        """
        base = self.transfer_time(nbytes, n_tensors)
        base *= plan.link_slow_factor(src_machine, dst_machine)
        return (
            base
            + plan.link_extra(src_machine, dst_machine)
            + plan.spike_latency(caller, call_index, attempt)
        )

    def send_overhead(self) -> float:
        """Caller-side cost of *issuing* an async request.

        The caller is released after the local dispatch cost; propagation and
        serialization proceed off the caller's timeline (TensorPipe moves the
        payload on background threads).
        """
        return self.rpc_overhead

    @classmethod
    def instant(cls) -> "NetworkModel":
        """A near-zero-cost model for functional tests."""
        return cls(rpc_overhead=0.0, tensor_wrap_cost=0.0,
                   bandwidth=1e18, latency=0.0, local_call_overhead=0.0)
