"""``repro.simt`` — deterministic discrete-event virtual-time runtime.

This package is the distributed substrate of the reproduction.  The paper
evaluates its engine by *simulating* a K-machine cluster on one large host
(Section 4.1: ``K x (P + 1)`` processes).  On a single-core box, real OS
processes cannot exhibit parallel speedup, so we go one step further and
account time virtually:

* every simulated process (SSPPR computing process, graph-storage server)
  owns a **virtual clock**;
* real compute (actual NumPy work on actual shard data) is *measured* with
  ``perf_counter`` and charged to the owner's clock;
* network transfers are charged through an explicit :class:`NetworkModel`
  (per-request overhead + per-tensor wrapping cost + bytes/bandwidth +
  latency), calibrated to the TensorPipe behaviour the paper describes;
* a scheduler interleaves process coroutines in event order, so server
  contention, asynchronous overlap, and multi-machine parallelism all emerge
  with the correct shape.

Processes are plain Python generators that ``yield`` effects
(:class:`Charge`, :class:`Sleep`, :class:`Wait`, :class:`WaitAll`) and call
non-suspending methods (``charge_seconds``, ``measured`` context manager)
directly on their :class:`SimProcess` handle.
"""

from repro.simt.events import Charge, Sleep, Wait, WaitAll
from repro.simt.faults import CrashWindow, FaultPlan
from repro.simt.futures import SimFuture
from repro.simt.network import NetworkModel
from repro.simt.process import SimProcess
from repro.simt.scheduler import Scheduler
from repro.simt.sync import SimBarrier

__all__ = [
    "Charge",
    "CrashWindow",
    "FaultPlan",
    "NetworkModel",
    "Scheduler",
    "SimBarrier",
    "SimFuture",
    "SimProcess",
    "Sleep",
    "Wait",
    "WaitAll",
]
