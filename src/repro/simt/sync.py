"""Synchronization primitives for simulated processes.

:class:`SimBarrier` — N-party barrier over virtual time: every participant
receives a future that resolves when the last party arrives, at the latest
arrival time.  The engine's throughput protocol implicitly barriers via
makespan; drivers that need an *explicit* rendezvous (e.g. epoch boundaries
in the GNN case study, gang-scheduled phases) use this.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.simt.futures import SimFuture


class SimBarrier:
    """Reusable N-party barrier (generation-counted)."""

    def __init__(self, n_parties: int, *, name: str = "barrier") -> None:
        if n_parties <= 0:
            raise ValueError(f"n_parties must be > 0, got {n_parties}")
        self.n_parties = n_parties
        self.name = name
        self.generation = 0
        self._waiting: list[SimFuture] = []
        self._latest = 0.0

    def arrive(self, clock: float) -> SimFuture:
        """Register arrival at virtual time ``clock``; wait on the result.

        The returned future resolves with the generation number once all
        parties of this generation have arrived, ready at the latest
        arrival time.
        """
        if len(self._waiting) >= self.n_parties:
            raise SimulationError(
                f"barrier {self.name!r} over-subscribed in generation "
                f"{self.generation}"
            )
        fut = SimFuture(tag=f"{self.name}.gen{self.generation}")
        self._waiting.append(fut)
        self._latest = max(self._latest, clock)
        if len(self._waiting) == self.n_parties:
            waiting, self._waiting = self._waiting, []
            latest, self._latest = self._latest, 0.0
            generation, self.generation = self.generation, self.generation + 1
            for f in waiting:
                f.set_result(generation, latest)
        return fut

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)
