"""Effect objects yielded by simulated process generators.

A process body is a generator; yielding one of these objects suspends it and
hands control to the scheduler:

* :class:`Charge` — advance this process's virtual clock by ``seconds``
  (optionally tagging a breakdown category) and resume.
* :class:`Sleep` — identical clock effect to an uncategorized charge; kept
  distinct for intent (idle wait vs. modeled work).
* :class:`Wait` — suspend until a :class:`~repro.simt.futures.SimFuture`
  resolves; the process resumes at ``max(own clock, future ready time)`` and
  receives the future's value as the ``yield`` result.
* :class:`WaitAll` — suspend until every future in a list resolves; resumes
  at the latest ready time and receives the list of values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.simt.futures import SimFuture


@dataclass(frozen=True)
class Charge:
    """Advance the yielding process's clock by ``seconds``."""

    seconds: float
    category: str | None = None

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"cannot charge negative time: {self.seconds}")


@dataclass(frozen=True)
class Sleep:
    """Idle the yielding process for ``seconds`` of virtual time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"cannot sleep negative time: {self.seconds}")


@dataclass(frozen=True)
class Wait:
    """Suspend until ``future`` resolves; yields its value back."""

    future: SimFuture


@dataclass(frozen=True)
class WaitAll:
    """Suspend until all ``futures`` resolve; yields their values as a list."""

    futures: Sequence[SimFuture]
