"""The discrete-event scheduler.

Maintains a priority queue of ``(virtual_time, sequence, callback)`` entries
and executes them in order.  Sequence numbers break ties deterministically,
so a given workload always produces the same interleaving and the same
virtual timings for modeled costs (measured compute varies with the host, as
it does for the paper's wall-clock numbers).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro.errors import SimulationError
from repro.simt.futures import SimFuture
from repro.simt.process import SimProcess


class Scheduler:
    """Deterministic event loop over virtual time."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0.0
        self.processes: dict[str, SimProcess] = {}
        self._running = False
        #: total events executed (diagnostics)
        self.events_executed = 0

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Virtual time of the event currently being processed."""
        return self._now

    # -- process management ---------------------------------------------------
    def spawn(self, name: str, body: Generator, *, start_at: float = 0.0) -> SimProcess:
        """Register a generator as a simulated process and schedule its start."""
        if name in self.processes:
            raise SimulationError(f"duplicate process name {name!r}")
        proc = SimProcess(name, self, body)
        proc.clock = start_at
        self.processes[name] = proc
        proc._start()
        return proc

    def add_passive(self, name: str) -> SimProcess:
        """Register a process with no coroutine body (e.g. an RPC server).

        Passive processes never run a generator; their clock is advanced by
        the RPC layer when requests are served on them.
        """
        if name in self.processes:
            raise SimulationError(f"duplicate process name {name!r}")
        proc = SimProcess(name, self, body=None)
        self.processes[name] = proc
        return proc

    # -- event queue ------------------------------------------------------
    def _schedule(self, at: float, callback: Callable[[], None]) -> None:
        if at < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule in the past: at={at!r} < now={self._now!r}"
            )
        heapq.heappush(self._heap, (at, self._seq, callback))
        self._seq += 1

    def call_at(self, at: float, callback: Callable[[], None]) -> None:
        """Public timer: run ``callback`` at virtual time ``at`` (>= now).

        This is what the RPC layer's per-call timeouts and retry backoffs
        are built on; timers fire in deterministic (time, insertion) order
        like every other event.
        """
        self._schedule(at, callback)

    def run(self, *, max_events: int | None = None) -> float:
        """Drain the event queue; return the final virtual time.

        Raises :class:`SimulationError` if any spawned process is left
        unfinished when the queue empties (a deadlock: someone waits on a
        future nobody will resolve).
        """
        if self._running:
            raise SimulationError("scheduler is already running")
        self._running = True
        try:
            n = 0
            while self._heap:
                at, _seq, callback = heapq.heappop(self._heap)
                self._now = at
                callback()
                self.events_executed += 1
                n += 1
                if max_events is not None and n >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
        finally:
            self._running = False
        stuck = [p.name for p in self.processes.values()
                 if p._body is not None and not p.finished]
        if stuck:
            # Localize the stall: the wait-for graph names each blocked
            # coroutine and the future it awaits (lazy import — the
            # analysis package depends on simt types, not vice versa).
            from repro.analysis.deadlock import diagnose

            report = diagnose(self)
            detail = "\n" + report.render() if report is not None else ""
            raise SimulationError(
                f"deadlock: processes never finished: {stuck}{detail}"
            )
        return self._now

    # -- results ------------------------------------------------------------
    def result_of(self, name: str) -> Any:
        """Return value of a finished process (re-raises its exception)."""
        proc = self.processes[name]
        if not proc.completion.done:
            raise SimulationError(f"process {name!r} has not finished")
        return proc.completion.value()

    def makespan(self, names: list[str] | None = None) -> float:
        """Latest final clock among the given (default: all) processes.

        This is the paper's throughput denominator: total runtime of a batch
        of queries across all machines, including synchronization.
        """
        procs = (
            [self.processes[n] for n in names]
            if names is not None
            else list(self.processes.values())
        )
        if not procs:
            raise SimulationError("no processes to compute makespan over")
        return max(p.clock for p in procs)

    def resolved_future(self, value: Any, *, delay: float = 0.0,
                        tag: str | None = None) -> SimFuture:
        """A future that resolves ``delay`` after the current virtual time."""
        fut = SimFuture(tag=tag)
        if delay <= 0.0:
            fut.set_result(value, self._now)
        else:
            self._schedule(self._now + delay,
                           lambda: fut.set_result(value, self._now))
        return fut
