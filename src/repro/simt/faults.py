"""Deterministic fault injection for the simulated cluster.

A :class:`FaultPlan` describes everything that can go wrong on the wire and
on the machines: message loss, latency spikes, per-link extra latency,
slow-machine multipliers, and server crash/recover schedules.  The RPC layer
(:class:`~repro.rpc.api.RpcContext`, :class:`~repro.rpc.worker.RpcServer`)
and the network model consult the plan on every remote call.

Determinism is the design center.  Every stochastic decision (drop a
message?  spike this transfer?) is a pure function of ``(plan.seed, caller
name, per-caller call index, attempt number)`` — *not* of virtual time or
arrival order.  Each caller coroutine issues its calls in a fixed program
order, so the decision sequence is identical on the virtual-time
:class:`~repro.simt.scheduler.Scheduler` and on the real-thread
:class:`~repro.rpc.thread_runtime.ThreadRuntime`: the same plan replays the
same faults on both runtimes, and twice in a row on either.

Crash windows are expressed in *virtual* seconds and are only meaningful
under the virtual-time scheduler (thread mode has no virtual clock and
ignores them).  A message sent to a crashed server is silently lost, exactly
like a network drop — the caller observes it as a timeout.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.utils.validation import check_nonnegative


def fault_roll(seed: int, *key) -> float:
    """Deterministic uniform in ``[0, 1)`` keyed by ``(seed, *key)``.

    Stable across processes and platforms (BLAKE2b of the key's repr), so a
    seeded plan replays identically everywhere.
    """
    data = repr((int(seed),) + key).encode()
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class CrashWindow:
    """One server outage: down during ``[crash_at, recover_at)`` virtual s."""

    server: str
    crash_at: float
    recover_at: float = math.inf

    def __post_init__(self) -> None:
        if not self.server:
            raise ValueError("CrashWindow.server must be a worker name")
        check_nonnegative("crash_at", self.crash_at)
        if self.recover_at <= self.crash_at:
            raise ValueError(
                f"recover_at ({self.recover_at}) must be > "
                f"crash_at ({self.crash_at})"
            )

    def covers(self, t: float) -> bool:
        return self.crash_at <= t < self.recover_at


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable schedule of injected faults.

    Parameters
    ----------
    seed:
        Seeds every stochastic decision; two runs with the same plan see the
        same faults.
    drop_prob:
        Probability that one request attempt is lost in the network (the
        caller sees a timeout and, with a retry policy, retransmits).
    latency_spike_prob / latency_spike:
        Probability that a transfer suffers an extra ``latency_spike``
        seconds of one-way delay (a congested or lossy link).
    link_latency:
        Constant extra one-way seconds per directed machine pair
        ``(src, dst)`` — e.g. a cross-rack link.
    slow_machines:
        Per-machine service-time multiplier (``>= 1``) modeling stragglers;
        applied to that machine's server handler time and its transfers.
    crashes:
        Server outage windows (virtual time).  Messages to a crashed server
        vanish; with retries and a recovery inside the retry horizon the
        call eventually succeeds.
    """

    seed: int = 0
    drop_prob: float = 0.0
    latency_spike_prob: float = 0.0
    latency_spike: float = 0.0
    link_latency: Mapping[tuple[int, int], float] = field(default_factory=dict)
    slow_machines: Mapping[int, float] = field(default_factory=dict)
    crashes: tuple[CrashWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_prob", "latency_spike_prob"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        check_nonnegative("latency_spike", self.latency_spike)
        for link, extra in self.link_latency.items():
            check_nonnegative(f"link_latency[{link}]", extra)
        for machine, factor in self.slow_machines.items():
            if factor < 1.0:
                raise ValueError(
                    f"slow_machines[{machine}] must be >= 1, got {factor}"
                )
        object.__setattr__(self, "crashes", tuple(self.crashes))

    # -- queries ------------------------------------------------------------
    def is_empty(self) -> bool:
        """Whether the plan injects nothing (the engine's fast path)."""
        return (
            self.drop_prob == 0.0
            and self.latency_spike_prob == 0.0
            and not self.link_latency
            and not self.slow_machines
            and not self.crashes
        )

    def roll_drop(self, caller: str, call_index: int, attempt: int) -> bool:
        """Whether this attempt's request is lost in the network."""
        if self.drop_prob <= 0.0:
            return False
        return fault_roll(self.seed, "drop", caller, call_index,
                          attempt) < self.drop_prob

    def spike_latency(self, caller: str, call_index: int,
                      attempt: int) -> float:
        """Extra one-way delay from a latency spike, if one fires."""
        if self.latency_spike_prob <= 0.0 or self.latency_spike <= 0.0:
            return 0.0
        roll = fault_roll(self.seed, "spike", caller, call_index, attempt)
        return self.latency_spike if roll < self.latency_spike_prob else 0.0

    def link_extra(self, src_machine: int, dst_machine: int) -> float:
        """Constant extra one-way latency on the ``src -> dst`` link."""
        return float(self.link_latency.get((src_machine, dst_machine), 0.0))

    def slow_factor(self, machine: int) -> float:
        """Service/transfer multiplier for one machine (1.0 = healthy)."""
        return float(self.slow_machines.get(machine, 1.0))

    def link_slow_factor(self, src_machine: int, dst_machine: int) -> float:
        """Transfer multiplier for a link: the slower endpoint dominates."""
        return max(self.slow_factor(src_machine),
                   self.slow_factor(dst_machine))

    def is_crashed(self, server: str, t: float) -> bool:
        """Whether ``server`` is down at virtual time ``t``."""
        return any(w.server == server and w.covers(t) for w in self.crashes)
