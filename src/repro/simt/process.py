"""Simulated processes: generator coroutines with a virtual clock.

A :class:`SimProcess` wraps a generator.  Its virtual clock advances by
(a) *measured* real compute — wrap actual work in ``proc.measured(category)``;
(b) modeled charges — ``proc.charge_seconds``; and (c) waits on futures.
Only effects that need to *suspend* the coroutine (waits/sleeps) go through
``yield``; pure clock charges are direct method calls, which keeps hot loops
cheap.

The per-category :class:`~repro.utils.timer.TimeBreakdown` accumulated on
every process is what regenerates the paper's Figure 6 and Table 3
breakdowns.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SimulationError, WorkerCrashedError
from repro.simt.futures import SimFuture
from repro.utils.timer import CategoryTimer


class SimProcess:
    """One simulated OS process (computing process or storage server)."""

    def __init__(self, name: str, scheduler, body: Generator | None = None) -> None:
        self.name = name
        self.scheduler = scheduler
        self.clock = 0.0
        self.timer = CategoryTimer(on_charge=self._advance_clock)
        self.completion = SimFuture(tag=f"{name}.completion")
        #: optional SpanTracer; when set, measured() blocks and span() open
        #: intervals on this process's virtual timeline
        self.tracer = None
        self._body = body
        self._finished = False
        self._waiting = False
        #: futures this process is currently suspended on — the wait-for
        #: graph edge set read by repro.analysis.deadlock when the
        #: scheduler drains with unfinished processes
        self.waiting_on: tuple[SimFuture, ...] = ()

    # -- clock ------------------------------------------------------------
    def _advance_clock(self, category: str, dt: float) -> None:
        self.clock += dt

    def charge_seconds(self, dt: float, category: str = "other") -> None:
        """Charge a modeled duration to this process's clock + breakdown."""
        self.timer.charge_seconds(category, dt)

    def measured(self, category: str):
        """Context manager: run real work, charge its measured duration.

        With a tracer attached, the charged interval is also recorded as a
        span named after the category (nested under the innermost open
        span), which is how the pop/push/serve spans of the runtime
        breakdown reach the Chrome trace.

        >>> with proc.measured("push"):        # doctest: +SKIP
        ...     state.push(infos, nodes, shards)
        """
        if self.tracer is None:
            return self.timer.charge(category)
        from repro.obs.spans import _TracedMeasure

        return _TracedMeasure(self, category)

    def span(self, name: str, **attrs):
        """Open a logical span (e.g. one query) on this process's timeline.

        A no-op context manager when no tracer is attached.  Safe to hold
        across ``yield`` suspensions: the span covers waits too, so a
        ``query`` span's duration is the query's virtual latency.
        """
        if self.tracer is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.tracer.span(self.name, name, lambda: self.clock,
                                attrs or None)

    @property
    def breakdown(self):
        """Per-category virtual seconds accumulated so far."""
        return self.timer.breakdown

    @property
    def finished(self) -> bool:
        """Whether the coroutine body has run to completion."""
        return self._finished

    # -- lifecycle (driven by the Scheduler) --------------------------------
    def _start(self) -> None:
        if self._body is None:
            raise SimulationError(f"process {self.name!r} has no body")
        self.scheduler._schedule(self.clock, lambda: self._step(None))

    def _step(self, send_value: Any) -> None:
        """Resume the coroutine until the next suspension point."""
        from repro.simt.events import Charge, Sleep, Wait, WaitAll

        if self._finished:
            raise SimulationError(f"process {self.name!r} stepped after finish")
        self._waiting = False
        self.waiting_on = ()
        while True:
            # Virtual time advances only through explicit charges: nested
            # measured() blocks, charge_seconds(), and yielded effects.
            # Un-instrumented coroutine glue is free, which keeps the model
            # predictable and avoids double counting.
            try:
                effect = self._body.send(send_value)
            except StopIteration as stop:
                self._finish(stop.value)
                return
            # repro: allow=REP006 faults are re-raised via completion.value()
            except BaseException as exc:
                self._fail(exc)
                return
            send_value = None

            if isinstance(effect, Charge):
                self.charge_seconds(effect.seconds, effect.category or "charged")
                continue
            if isinstance(effect, Sleep):
                self.clock += effect.seconds
                self.scheduler._schedule(self.clock, lambda: self._step(None))
                self._waiting = True
                return
            if isinstance(effect, Wait):
                self._wait_one(effect.future)
                return
            if isinstance(effect, WaitAll):
                self._wait_all(list(effect.futures))
                return
            raise SimulationError(
                f"process {self.name!r} yielded unknown effect {effect!r}"
            )

    def _wait_one(self, fut: SimFuture) -> None:
        self._waiting = True
        self.waiting_on = (fut,)

        def on_done(f: SimFuture) -> None:
            resume_at = max(self.clock, f.ready_time)
            wait_dt = resume_at - self.clock
            # Time blocked on a worker that turned out to be crashed is its
            # own breakdown category: lumping it into "wait" would silently
            # inflate the remote_fetch phase with outage time.
            category = ("crashed" if isinstance(f.exception, WorkerCrashedError)
                        else "wait")

            def resume() -> None:
                self.timer.charge_seconds(category, wait_dt)
                try:
                    value = f.value()
                # repro: allow=REP006 fault is forwarded into the coroutine
                except BaseException as exc:
                    self._throw(exc)
                    return
                self._step(value)

            self.scheduler._schedule(resume_at, resume)

        fut.add_done_callback(on_done)

    def _wait_all(self, futs: list[SimFuture]) -> None:
        self._waiting = True
        self.waiting_on = tuple(futs)
        remaining = len(futs)
        if remaining == 0:
            self.scheduler._schedule(self.clock, lambda: self._step([]))
            return
        pending = {"n": remaining}

        def on_done(_f: SimFuture) -> None:
            pending["n"] -= 1
            if pending["n"] > 0:
                return
            resume_at = max([self.clock] + [f.ready_time for f in futs])
            wait_dt = resume_at - self.clock
            category = ("crashed"
                        if any(isinstance(f.exception, WorkerCrashedError)
                               for f in futs)
                        else "wait")

            def resume() -> None:
                self.timer.charge_seconds(category, wait_dt)
                try:
                    values = [f.value() for f in futs]
                # repro: allow=REP006 fault is forwarded into the coroutine
                except BaseException as exc:
                    self._throw(exc)
                    return
                self._step(values)

            self.scheduler._schedule(resume_at, resume)

        for f in futs:
            f.add_done_callback(on_done)

    def _throw(self, exc: BaseException) -> None:
        """Inject an exception (e.g. failed RPC) into the coroutine."""
        try:
            effect = self._body.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        # repro: allow=REP006 faults are re-raised via completion.value()
        except BaseException as body_exc:
            self._fail(body_exc)
            return
        # The coroutine caught the exception and yielded a new effect;
        # re-enter the normal stepping path by handling that effect.
        self._handle_resumed_effect(effect)

    def _handle_resumed_effect(self, effect) -> None:
        from repro.simt.events import Charge, Sleep, Wait, WaitAll

        if isinstance(effect, Charge):
            self.charge_seconds(effect.seconds, effect.category or "charged")
            self.scheduler._schedule(self.clock, lambda: self._step(None))
        elif isinstance(effect, Sleep):
            self.clock += effect.seconds
            self.scheduler._schedule(self.clock, lambda: self._step(None))
        elif isinstance(effect, Wait):
            self._wait_one(effect.future)
        elif isinstance(effect, WaitAll):
            self._wait_all(list(effect.futures))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unknown effect {effect!r}"
            )

    def _finish(self, value: Any) -> None:
        self._finished = True
        self.completion.set_result(value, self.clock)

    def _fail(self, exc: BaseException) -> None:
        self._finished = True
        self.completion.set_exception(exc, self.clock)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self._finished else ("waiting" if self._waiting else "ready")
        return f"SimProcess({self.name!r}, clock={self.clock:.6g}, {state})"
