"""Distributed BFS — the engine's generality demonstration.

The paper names BFS (GraphSAGE-style neighborhood collection) among the
graph-processing algorithms that need hashmap-like frontier state rather
than tensors (Section 1).  This driver implements level-synchronous BFS on
the distributed storage with exactly the engine's idioms: a frontier of
``(local ID, shard ID)`` pairs, per-shard batched ``get_neighbor_infos``
fetches, and a visited set in a :class:`~repro.ppr.hashmap.ShardedMap`.

Returns hop distances from the source for every reached node.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.ppr.hashmap import ShardedMap
from repro.simt.events import Wait
from repro.storage.dist_storage import DistGraphStorage


class BfsState:
    """Visited set + frontier for one BFS traversal."""

    def __init__(self, source_local: int, source_shard: int,
                 n_shards: int) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be > 0, got {n_shards}")
        self.n_shards = int(n_shards)
        self.map = ShardedMap()
        self.depths = np.zeros(1024, dtype=np.int64)
        key = np.array([int(source_local) * n_shards + int(source_shard)],
                       dtype=np.int64)
        idx, _ = self.map.get_or_insert(key)
        self.depths[idx[0]] = 0
        self.frontier = key
        self.level = 0

    def _ensure_capacity(self, needed: int) -> None:
        cap = len(self.depths)
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        grown = np.zeros(cap, dtype=np.int64)
        grown[: len(self.depths)] = self.depths
        self.depths = grown

    def pop(self) -> tuple[np.ndarray, np.ndarray]:
        """Current frontier as ``(local_ids, shard_ids)`` (empty = done)."""
        keys = self.frontier
        self.frontier = np.empty(0, dtype=np.int64)
        return keys // self.n_shards, keys % self.n_shards

    def expand(self, infos) -> None:
        """Mark unvisited neighbors at ``level + 1``; queue them."""
        (_indptr, nbr_local, nbr_shard, _g, _w, _wd, _src) = infos.to_arrays()
        if len(nbr_local) == 0:
            return
        keys = nbr_local.astype(np.int64) * self.n_shards + nbr_shard
        slots, new = self.map.get_or_insert(keys)
        if new.any():
            self._ensure_capacity(len(self.map))
            self.depths[slots[new]] = self.level + 1
            # dedupe new keys (duplicates share slots; keep one each)
            uniq_keys = np.unique(keys[new])
            self.frontier = np.concatenate([self.frontier, uniq_keys])

    def advance_level(self) -> None:
        self.level += 1

    def results(self) -> tuple[np.ndarray, np.ndarray]:
        """``(keys, depths)`` of every reached node."""
        n = len(self.map)
        return self.map.keys(), self.depths[:n]

    def dense_depths(self, sharded, n_nodes: int) -> np.ndarray:
        """Hop distances as a dense vector (-1 = unreached)."""
        out = np.full(n_nodes, -1, dtype=np.int64)
        keys, depths = self.results()
        gids = sharded.global_of(keys // self.n_shards,
                                 keys % self.n_shards)
        out[gids] = depths
        return out


def distributed_bfs(g: DistGraphStorage, proc, source_local: int, *,
                    max_depth: int | None = None):
    """Coroutine: level-synchronous BFS from a core node of ``g``'s shard.

    Returns the finished :class:`BfsState`.
    """
    state = BfsState(source_local, g.shard_id, g.n_shards)
    while True:
        with proc.measured("pop"):
            node_ids, shard_ids = state.pop()
        if len(node_ids) == 0:
            break
        if max_depth is not None and state.level >= max_depth:
            break
        with proc.measured("pop"):
            masks = g.shard_masks(shard_ids)
        futs = {}
        for j, mask in masks.items():
            if j != g.shard_id:
                futs[j] = g.get_neighbor_infos(j, node_ids[mask])
        local_mask = masks.get(g.shard_id)
        if local_mask is not None:
            infos = yield Wait(g.get_neighbor_infos(g.shard_id,
                                                    node_ids[local_mask]))
            with proc.measured("push"):
                state.expand(infos)
        for j in futs:
            infos = yield Wait(futs[j])
            with proc.measured("push"):
                state.expand(infos)
        state.advance_level()
    return state


def single_machine_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """Reference BFS on the unsharded graph (-1 = unreached)."""
    n = graph.n_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    depths = np.full(n, -1, dtype=np.int64)
    depths[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        counts = np.diff(graph.indptr)[frontier]
        starts = graph.indptr[frontier]
        offsets = np.zeros(len(frontier) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        idx = np.repeat(starts - offsets[:-1], counts) + np.arange(offsets[-1])
        nbrs = np.unique(graph.indices[idx])
        fresh = nbrs[depths[nbrs] == -1]
        depths[fresh] = level
        frontier = fresh
    return depths
