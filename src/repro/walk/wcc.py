"""Distributed weakly-connected components — label propagation.

A Pregel-style min-label propagation on the engine's storage API: every
node starts with its own (packed owner-address) key as its label; each
round, frontier nodes send their label to neighbors, which adopt it when it
is smaller.  Converges in O(diameter) rounds; frontier work and per-shard
batched fetches follow the same pattern as every other driver in
:mod:`repro.walk`.

Each machine runs the propagation for its *own core nodes* as sources; the
engine facade unions the results — labels are globally consistent because
min-label is order-independent.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.ppr.hashmap import ShardedMap
from repro.simt.events import Wait
from repro.storage.dist_storage import DistGraphStorage


class WccState:
    """Label table + frontier for a label-propagation run."""

    def __init__(self, seed_locals: np.ndarray, seed_shard: int,
                 n_shards: int) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be > 0, got {n_shards}")
        self.n_shards = int(n_shards)
        self.map = ShardedMap()
        self.labels = np.zeros(1024, dtype=np.int64)
        keys = (np.asarray(seed_locals, dtype=np.int64) * n_shards
                + int(seed_shard))
        idx, _ = self.map.get_or_insert(keys)
        self._ensure_capacity(len(self.map))
        self.labels[idx] = keys  # own key = initial label
        self.frontier = np.unique(keys)
        self.rounds = 0

    def _ensure_capacity(self, needed: int) -> None:
        cap = len(self.labels)
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        grown = np.zeros(cap, dtype=np.int64)
        grown[: len(self.labels)] = self.labels
        self.labels = grown

    def pop(self) -> tuple[np.ndarray, np.ndarray]:
        keys = self.frontier
        self.frontier = np.empty(0, dtype=np.int64)
        self.rounds += 1
        return keys // self.n_shards, keys % self.n_shards

    def relax(self, infos, local_ids: np.ndarray,
              shard_ids: np.ndarray) -> None:
        """Propagate source labels to neighbors; queue improved nodes."""
        (indptr, nbr_local, nbr_shard, _g, _w, _wd, _src) = infos.to_arrays()
        if len(nbr_local) == 0:
            return
        src_keys = (np.asarray(local_ids, dtype=np.int64) * self.n_shards
                    + np.asarray(shard_ids, dtype=np.int64))
        src_slots = self.map.lookup(src_keys)
        src_labels = self.labels[src_slots]
        counts = np.diff(indptr)
        sent = np.repeat(src_labels, counts)
        nbr_keys = nbr_local.astype(np.int64) * self.n_shards + nbr_shard
        slots, new = self.map.get_or_insert(nbr_keys)
        if new.any():
            self._ensure_capacity(len(self.map))
            self.labels[slots[new]] = nbr_keys[new]  # own key baseline
        # min-label adoption: scatter-min via sorting-free two-pass
        # (numpy minimum.at is adequate here: entries per round are small)
        before = self.labels[slots].copy()
        np.minimum.at(self.labels, slots, sent)
        improved = self.labels[slots] < before
        # Improved nodes re-broadcast; first-touched nodes must broadcast
        # their own (possibly smaller) label at least once.
        queue = improved | new
        if queue.any():
            self.frontier = np.unique(np.concatenate(
                [self.frontier, nbr_keys[queue]]
            ))

    def results(self) -> tuple[np.ndarray, np.ndarray]:
        """``(keys, labels)`` for every touched node."""
        n = len(self.map)
        return self.map.keys(), self.labels[:n]


def distributed_wcc(g: DistGraphStorage, proc, seed_locals: np.ndarray):
    """Coroutine: label propagation from this shard's given core nodes.

    Returns the finished :class:`WccState`.  Seeding with *all* of the
    shard's core nodes yields labels for the whole reachable region.
    """
    state = WccState(seed_locals, g.shard_id, g.n_shards)
    while True:
        with proc.measured("pop"):
            node_ids, shard_ids = state.pop()
        if len(node_ids) == 0:
            break
        with proc.measured("pop"):
            masks = g.shard_masks(shard_ids)
        futs = {}
        for j, mask in masks.items():
            if j != g.shard_id:
                futs[j] = g.get_neighbor_infos(j, node_ids[mask])
        local_mask = masks.get(g.shard_id)
        if local_mask is not None:
            infos = yield Wait(g.get_neighbor_infos(g.shard_id,
                                                    node_ids[local_mask]))
            with proc.measured("push"):
                state.relax(infos, node_ids[local_mask],
                            shard_ids[local_mask])
        for j in futs:
            infos = yield Wait(futs[j])
            jm = masks[j]
            with proc.measured("push"):
                state.relax(infos, node_ids[jm], shard_ids[jm])
    return state


def single_machine_wcc(graph: CSRGraph) -> np.ndarray:
    """Reference: component label per node (smallest member's global ID)."""
    from repro.graph.components import connected_components

    _, labels = connected_components(graph)
    # canonicalize: label = min global id within the component
    out = np.empty(graph.n_nodes, dtype=np.int64)
    for c in np.unique(labels):
        members = np.flatnonzero(labels == c)
        out[members] = members.min()
    return out
