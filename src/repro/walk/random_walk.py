"""Distributed random walk — the Figure 4 (right) loop, verbatim.

Each step: group the walkers by the shard currently owning them, issue one
``sample_one_neighbor`` batch per shard (local resolves synchronously,
remote in parallel), then scatter the sampled next-hops back into the
walker state and record the step's global IDs in the walk summary.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.simt.events import Wait
from repro.storage.build import ShardedGraph
from repro.storage.dist_storage import DistGraphStorage
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive


def distributed_random_walk(g: DistGraphStorage, proc,
                            roots_global: np.ndarray, sharded: ShardedGraph,
                            walk_length: int):
    """Coroutine: walk ``len(roots)`` walkers for ``walk_length`` steps.

    Returns the walk summary, shape ``(n_roots, walk_length + 1)`` of
    global node IDs (column 0 = roots).
    """
    check_positive("walk_length", walk_length)
    roots_global = np.asarray(roots_global, dtype=np.int64)
    n_roots = len(roots_global)
    node_ids, shard_ids = sharded.address_of(roots_global)
    node_ids = node_ids.copy()
    shard_ids = shard_ids.copy()
    summary = np.empty((n_roots, walk_length + 1), dtype=np.int64)
    summary[:, 0] = roots_global

    for step in range(1, walk_length + 1):
        with proc.measured("pop"):
            masks = g.shard_masks(shard_ids)
        futs = {}
        for j, mask in masks.items():
            # per-step salt: draws depend on (shard seed, step, ids), not
            # on the order requests happen to reach the server
            futs[j] = g.sample_one_neighbor(j, node_ids[mask], salt=step)
        for j, fut in futs.items():
            next_local, next_global, next_shard = yield Wait(fut)
            mask = masks[j]
            with proc.measured("push"):
                node_ids[mask] = next_local
                shard_ids[mask] = next_shard
                summary[mask, step] = next_global
    return summary


def single_machine_random_walk(graph: CSRGraph, roots: np.ndarray,
                               walk_length: int, *, seed=None) -> np.ndarray:
    """Reference walker on the unsharded graph (for distribution tests).

    Not sample-for-sample identical to the distributed version (separate
    RNG streams); used for structural validation: every consecutive pair in
    a walk must be an edge (or a stalled isolated node).
    """
    check_positive("walk_length", walk_length)
    rng = rng_from_seed(seed)
    roots = np.asarray(roots, dtype=np.int64)
    current = roots.copy()
    summary = np.empty((len(roots), walk_length + 1), dtype=np.int64)
    summary[:, 0] = roots
    for step in range(1, walk_length + 1):
        starts = graph.indptr[current]
        counts = graph.indptr[current + 1] - starts
        offsets = rng.integers(0, np.maximum(counts, 1))
        pick = np.minimum(starts + offsets, max(graph.n_arcs - 1, 0))
        has = counts > 0
        current = np.where(has, graph.indices[pick], current)
        summary[:, step] = current
    return summary
