"""Distributed node2vec walks — second-order biased random walks.

Random-walk-based GNN pipelines (PinSage [29], GraphSAINT [32] — both cited
by the paper) often use node2vec-style biased walks rather than uniform
ones.  The bias is *second order*: the probability of stepping to candidate
``x`` from current node ``v`` depends on the previous node ``t``:

* ``w(v,x) / p``  if ``x == t``          (return parameter),
* ``w(v,x)``       if ``x`` neighbors ``t`` (stay close),
* ``w(v,x) / q``  otherwise             (in-out parameter).

Distribution-wise this is a harder workload than uniform walks: each step
needs the *full* neighbor row of every walker (not one sample), fetched
with the same per-shard batched ``get_neighbor_infos`` the PPR engine uses,
plus the previous step's rows retained per walker for the neighbor test —
a second demonstration that the storage API generalizes beyond PPR.
"""

from __future__ import annotations

import numpy as np

from repro.simt.events import Wait
from repro.storage.build import ShardedGraph
from repro.storage.dist_storage import DistGraphStorage
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive


def _biased_choice(rng, candidates_global: np.ndarray, weights: np.ndarray,
                   prev_global: int, prev_neighbors: np.ndarray,
                   p: float, q: float) -> int:
    """Sample one candidate index under node2vec biases."""
    bias = np.full(len(candidates_global), 1.0 / q)
    if len(prev_neighbors):
        close = np.isin(candidates_global, prev_neighbors,
                        assume_unique=False)
        bias[close] = 1.0
    bias[candidates_global == prev_global] = 1.0 / p
    scores = weights * bias
    total = scores.sum()
    if total <= 0:
        return int(rng.integers(0, len(candidates_global)))
    return int(np.searchsorted(np.cumsum(scores),
                               rng.random() * total).clip(0, len(scores) - 1))


def distributed_node2vec_walk(g: DistGraphStorage, proc,
                              roots_global: np.ndarray,
                              sharded: ShardedGraph, walk_length: int, *,
                              p: float = 1.0, q: float = 1.0, seed=0):
    """Coroutine: node2vec walks for the given roots.

    Returns the walk summary ``(n_roots, walk_length + 1)`` of global IDs.
    ``p`` is the return parameter, ``q`` the in-out parameter (both 1.0
    degenerates to a weighted first-order walk).
    """
    check_positive("walk_length", walk_length)
    check_positive("p", p)
    check_positive("q", q)
    rng = rng_from_seed(seed)
    roots_global = np.asarray(roots_global, dtype=np.int64)
    n_roots = len(roots_global)
    cur_local, cur_shard = sharded.address_of(roots_global)
    cur_local = cur_local.copy()
    cur_shard = cur_shard.copy()
    cur_global = roots_global.copy()
    prev_global = np.full(n_roots, -1, dtype=np.int64)
    # previous step's neighbor sets per walker (global IDs)
    prev_neighbors: list[np.ndarray] = [np.empty(0, np.int64)] * n_roots
    summary = np.empty((n_roots, walk_length + 1), dtype=np.int64)
    summary[:, 0] = roots_global

    for step in range(1, walk_length + 1):
        with proc.measured("pop"):
            masks = g.shard_masks(cur_shard)
        futs = {}
        for j, mask in masks.items():
            futs[j] = g.get_neighbor_infos(j, cur_local[mask])
        for j, fut in futs.items():
            infos = yield Wait(fut)
            (indptr, nbr_local, nbr_shard, nbr_global, weights, _wd,
             _src) = infos.to_arrays()
            walker_rows = masks[j]  # index array: walker rows directly
            with proc.measured("push"):
                for i, walker in enumerate(walker_rows):
                    s, e = indptr[i], indptr[i + 1]
                    if s == e:  # stuck walker stays put
                        summary[walker, step] = cur_global[walker]
                        prev_global[walker] = cur_global[walker]
                        prev_neighbors[walker] = np.empty(0, np.int64)
                        continue
                    pick = _biased_choice(
                        rng, nbr_global[s:e], weights[s:e],
                        int(prev_global[walker]), prev_neighbors[walker],
                        p, q,
                    )
                    prev_global[walker] = cur_global[walker]
                    prev_neighbors[walker] = nbr_global[s:e].copy()
                    cur_global[walker] = nbr_global[s + pick]
                    cur_local[walker] = nbr_local[s + pick]
                    cur_shard[walker] = nbr_shard[s + pick]
                    summary[walker, step] = cur_global[walker]
    return summary
