"""``repro.walk`` — distributed random walks (Figure 4, right panel).

Random Walk is the paper's example of an algorithm that tensor operations
handle *well*: fixed-length steps over a fixed-size frontier, needing only
``sample_one_neighbor`` from the distributed storage.  Included both for API
completeness and as the contrast case in the engine-vs-tensor discussion
(the paper measures only a 1.7x speedup here, vs 83x+ for Forward Push).
"""

from repro.walk.bfs import BfsState, distributed_bfs, single_machine_bfs
from repro.walk.node2vec import distributed_node2vec_walk
from repro.walk.random_walk import distributed_random_walk, single_machine_random_walk
from repro.walk.wcc import WccState, distributed_wcc, single_machine_wcc

__all__ = [
    "BfsState",
    "WccState",
    "distributed_bfs",
    "distributed_node2vec_walk",
    "distributed_random_walk",
    "distributed_wcc",
    "single_machine_bfs",
    "single_machine_wcc",
    "single_machine_random_walk",
]
