"""The staged-update payload one shard receives during stream ingestion.

A :class:`ShardUpdate` carries everything shard ``p`` needs to apply one
update batch without further communication:

* **row replacements** — for every *core* vertex of ``p`` whose
  adjacency changed, the complete new row (targets sorted by global id,
  with owner addressing, weights, and the targets' new weighted
  degrees), spliced wholesale over the old row.  Row replacement is
  idempotent and order-insensitive, which keeps retried RPCs and
  split/merged batches convergent.
* **degree broadcast** — the new weighted degrees of *every* vertex the
  batch changed, anywhere in the graph, so the shard can patch its
  ``core_wdeg`` / ``nbr_wdeg`` / halo-cache degree columns (the 1-hop
  degree halo stays coherent without a second RPC round).
* **halo row refresh** — the same replacement rows keyed by packed owner
  address, so shards holding a 2-hop halo cache can refresh the cached
  adjacency of changed vertices in place (cached content always equals
  the owner's current row; coverage of *new* halo vertices is left to
  rebalancing/replication).

Built by :func:`repro.stream.ingest.build_shard_payloads`; consumed by
:meth:`repro.storage.shard.GraphShard.stage_updates`.  Implements
``rpc_payload`` so the RPC cost model prices the ingest traffic like
any other message.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShardError


class ShardUpdate:
    """One shard's view of one update batch (see module docstring)."""

    __slots__ = (
        "row_lids", "row_indptr", "row_local", "row_shard", "row_global",
        "row_weight", "row_wdeg", "deg_gids", "deg_wdeg", "halo_keys",
        "halo_src_wdeg", "halo_indptr", "halo_local", "halo_shard",
        "halo_global", "halo_weight", "halo_wdeg",
    )

    def __init__(self, row_lids, row_indptr, row_local, row_shard,
                 row_global, row_weight, row_wdeg, deg_gids, deg_wdeg,
                 halo_keys, halo_src_wdeg, halo_indptr, halo_local,
                 halo_shard, halo_global, halo_weight, halo_wdeg) -> None:
        self.row_lids = np.ascontiguousarray(row_lids, dtype=np.int64)
        self.row_indptr = np.ascontiguousarray(row_indptr, dtype=np.int64)
        self.row_local = np.ascontiguousarray(row_local, dtype=np.int64)
        self.row_shard = np.ascontiguousarray(row_shard, dtype=np.int64)
        self.row_global = np.ascontiguousarray(row_global, dtype=np.int64)
        self.row_weight = np.ascontiguousarray(row_weight, dtype=np.float64)
        self.row_wdeg = np.ascontiguousarray(row_wdeg, dtype=np.float64)
        self.deg_gids = np.ascontiguousarray(deg_gids, dtype=np.int64)
        self.deg_wdeg = np.ascontiguousarray(deg_wdeg, dtype=np.float64)
        self.halo_keys = np.ascontiguousarray(halo_keys, dtype=np.int64)
        self.halo_src_wdeg = np.ascontiguousarray(halo_src_wdeg,
                                                  dtype=np.float64)
        self.halo_indptr = np.ascontiguousarray(halo_indptr, dtype=np.int64)
        self.halo_local = np.ascontiguousarray(halo_local, dtype=np.int64)
        self.halo_shard = np.ascontiguousarray(halo_shard, dtype=np.int64)
        self.halo_global = np.ascontiguousarray(halo_global, dtype=np.int64)
        self.halo_weight = np.ascontiguousarray(halo_weight,
                                                dtype=np.float64)
        self.halo_wdeg = np.ascontiguousarray(halo_wdeg, dtype=np.float64)
        self._validate()

    def _validate(self) -> None:
        n_rows = self.row_lids.shape[0]
        if self.row_indptr.shape != (n_rows + 1,) or \
                (n_rows and self.row_indptr[0] != 0):
            raise ShardError("row_indptr shape/start mismatch")
        if n_rows and bool(np.any(np.diff(self.row_lids) <= 0)):
            raise ShardError("row_lids must be strictly increasing")
        total = int(self.row_indptr[-1]) if n_rows else 0
        for name in ("row_local", "row_shard", "row_global", "row_weight",
                     "row_wdeg"):
            if getattr(self, name).shape[0] != total:
                raise ShardError(f"{name} length != row_indptr[-1]")
        if self.deg_wdeg.shape[0] != self.deg_gids.shape[0]:
            raise ShardError("degree broadcast arrays must share length")
        if self.deg_gids.shape[0] and \
                bool(np.any(np.diff(self.deg_gids) <= 0)):
            raise ShardError("deg_gids must be strictly increasing")
        n_halo = self.halo_keys.shape[0]
        if self.halo_indptr.shape != (n_halo + 1,) or \
                self.halo_src_wdeg.shape[0] != n_halo:
            raise ShardError("halo refresh header mismatch")
        if n_halo and bool(np.any(np.diff(self.halo_keys) <= 0)):
            raise ShardError("halo_keys must be strictly increasing")
        h_total = int(self.halo_indptr[-1]) if n_halo else 0
        for name in ("halo_local", "halo_shard", "halo_global",
                     "halo_weight", "halo_wdeg"):
            if getattr(self, name).shape[0] != h_total:
                raise ShardError(f"{name} length != halo_indptr[-1]")

    @property
    def n_rows(self) -> int:
        return int(self.row_lids.shape[0])

    @property
    def n_changed(self) -> int:
        return int(self.deg_gids.shape[0])

    def rpc_payload(self) -> tuple[int, int]:
        arrays = [getattr(self, name) for name in self.__slots__]
        return sum(a.nbytes for a in arrays), len(arrays)
