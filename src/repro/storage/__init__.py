"""``repro.storage`` — distributed graph storage (paper Section 3.2).

Implements the storage stack exactly as the paper lays it out:

* :class:`GraphShard` — one partition's data in CSR form: rows are *core
  nodes* (the partition's METIS assignment), columns are core + *halo*
  nodes (1-hop neighbors cached with their shard IDs, local IDs, edge
  weights, and weighted degrees — Figures 2 and 3).  Storing neighbor
  weighted degrees inline is what lets Forward Push threshold-check
  remotely-owned nodes without extra RPCs.
* :class:`VertexProp` — the zero-copy local-fetch result: views over the
  shard arrays plus per-node extents, "a vector of shared pointers ...
  without taking ownership of the original data".
* :class:`NeighborBatch` — the CSR-compressed remote response (the
  *Compress* optimization): five-ish flat arrays instead of a list of small
  per-node tensors.  :class:`NeighborLists` is the uncompressed
  list-of-lists response kept for the Table 3 ablation.
* :class:`ShardedGraph` / :func:`build_shards` — partition-to-shard
  preprocessing, including the global -> (local ID, shard ID) address
  translation the engine uses everywhere.
* :class:`DistGraphStorage` — the per-process facade of Figure 4:
  ``get_neighbor_infos`` and ``sample_one_neighbor`` against local or
  remote shards through RRefs.
* :class:`NeighborFetchService` / :class:`FetchCache` — the adaptive
  neighbor-fetch layer on top of the facade: partial halo-cache hits,
  a deterministic byte-budgeted hot-vertex cache, and single-flight
  coalescing of overlapping in-flight requests (docs/fetch-layer.md).
"""

from repro.storage.build import ShardedGraph, build_shards
from repro.storage.dist_storage import DistGraphStorage
from repro.storage.fetch import FetchCache, NeighborFetchService
from repro.storage.neighbor_batch import NeighborBatch, NeighborLists
from repro.storage.shard import GraphShard
from repro.storage.vertex_prop import VertexProp

__all__ = [
    "DistGraphStorage",
    "FetchCache",
    "GraphShard",
    "NeighborBatch",
    "NeighborFetchService",
    "NeighborLists",
    "ShardedGraph",
    "VertexProp",
    "build_shards",
]
