"""Adaptive neighbor-fetch layer (``repro.storage.fetch``).

Sits between the SSPPR/walk drivers and :class:`DistGraphStorage` and makes
every remote batch as small and as rare as possible, composing three
mechanisms:

1. **Partial-hit splitting** — ``GraphShard.cache_covers`` is all-or-nothing:
   one uncached node used to send the *entire* per-shard batch over the
   network.  The fetch layer splits each request with
   :meth:`GraphShard.cache_mask`, serves covered rows from the local halo
   cache, and sends only the misses.
2. **Hot-vertex cache** — a bounded, byte-budgeted cache of adjacency rows
   populated from remote responses.  Power-law hub vertices re-fetched by
   every query are fetched once per run.  Eviction is deterministic
   (lowest ``(frequency, last-use tick, key)`` first — a logical tick, no
   wall clock, no randomness).
3. **Single-flight coalescing** — concurrent in-flight requests for
   overlapping ``(shard, node)`` sets dedup against a pending-futures table;
   late arrivals extract their rows from the first request's response.

Split responses are reassembled with the vectorized
:meth:`NeighborBatch.merge` in original request order, so results are
bitwise identical to an unsplit fetch.  Cache state mutates only at
deterministic points: classification happens when the driver *issues* a
fetch, and admission/unregistration happen when the driver first *consumes*
the response (``value()``), which both the virtual-time scheduler and
``ThreadRuntime`` do in driver program order.  All shared state is guarded
by one lock (sanitizer-tracked when a race detector is installed).
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.simt.futures import SimFuture
from repro.storage.neighbor_batch import NeighborBatch

#: per-entry cost of a cached adjacency row: 5 eight-byte fields per
#: neighbor (local, shard, global, weight, weighted degree) ...
_ROW_ENTRY_NBYTES = 40
#: ... plus the source node's own weighted degree
_ROW_BASE_NBYTES = 8


class _HotRow:
    """One cached adjacency row (views over a remote response's arrays)."""

    __slots__ = ("local", "shard", "glob", "weight", "wdeg", "src_wdeg",
                 "nbytes", "freq", "tick")

    def __init__(self, local, shard, glob, weight, wdeg, src_wdeg,
                 nbytes, tick) -> None:
        self.local = local
        self.shard = shard
        self.glob = glob
        self.weight = weight
        self.wdeg = wdeg
        self.src_wdeg = src_wdeg
        self.nbytes = nbytes
        self.freq = 1
        self.tick = tick


class FetchCache:
    """Shared per-machine fetch state: hot rows + pending-flight table.

    Keys are packed owner addresses ``local * n_shards + dest_shard`` (the
    same scheme as the halo cache).  ``capacity_bytes == 0`` disables the
    hot-vertex cache while leaving the pending table usable.
    """

    def __init__(self, capacity_bytes: int, *, sanitizer=None) -> None:
        if capacity_bytes < 0:
            raise ValueError(
                f"capacity_bytes must be >= 0, got {capacity_bytes}"
            )
        self.capacity = int(capacity_bytes)
        self.rows: dict[int, _HotRow] = {}
        #: key -> (in-flight future, row index within that request)
        self.pending: dict[int, tuple[Any, int]] = {}
        self.nbytes = 0
        self.evictions = 0
        self.tick = 0
        self._sanitizer = sanitizer
        if sanitizer is not None:
            self.lock = sanitizer.tracked_lock("fetch.cache")
        else:
            self.lock = threading.Lock()

    def record_access(self, *, write: bool) -> None:
        """Report the shared-state access to an installed race detector."""
        if self._sanitizer is not None:
            self._sanitizer.record("fetch.cache.state", write=write)

    # The callers below hold ``self.lock``.

    def admit(self, keys: list[int], batch: NeighborBatch) -> int:
        """Cache rows of a remote response; returns evictions performed."""
        if self.capacity <= 0:
            return 0
        indptr = batch.indptr
        tick = self.tick
        for i, key in enumerate(keys):
            if key in self.rows:
                continue
            s, e = int(indptr[i]), int(indptr[i + 1])
            nbytes = (e - s) * _ROW_ENTRY_NBYTES + _ROW_BASE_NBYTES
            if nbytes > self.capacity:
                continue
            self.rows[key] = _HotRow(
                batch.local_ids[s:e], batch.shard_ids[s:e],
                batch.global_ids[s:e], batch.weights[s:e],
                batch.weighted_degrees[s:e], float(batch.source_wdeg[i]),
                nbytes, tick,
            )
            self.nbytes += nbytes
        evicted = 0
        while self.nbytes > self.capacity:
            key, row = min(self.rows.items(),
                           key=lambda kv: (kv[1].freq, kv[1].tick, kv[0]))
            del self.rows[key]
            self.nbytes -= row.nbytes
            evicted += 1
        self.evictions += evicted
        return evicted

    def unregister(self, keys: list[int], fut: Any) -> None:
        """Drop pending entries that still point at ``fut`` (idempotent)."""
        for key in keys:
            ent = self.pending.get(key)
            if ent is not None and ent[0] is fut:
                del self.pending[key]


def _rows_to_batch(rows: list[_HotRow]) -> NeighborBatch:
    """Assemble cached rows (in request order) into one NeighborBatch."""
    counts = np.fromiter((len(r.local) for r in rows), dtype=np.int64,
                         count=len(rows))
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # repro: allow=REP011 hot rows come from many responses; reassembly copies
    local = np.concatenate([r.local for r in rows])
    shard = np.concatenate([r.shard for r in rows])  # repro: allow=REP011
    glob = np.concatenate([r.glob for r in rows])  # repro: allow=REP011
    weight = np.concatenate([r.weight for r in rows])  # repro: allow=REP011
    wdeg = np.concatenate([r.wdeg for r in rows])  # repro: allow=REP011
    src = np.fromiter((r.src_wdeg for r in rows), dtype=np.float64,
                      count=len(rows))
    return NeighborBatch(indptr, local, shard, glob, weight, wdeg, src,
                         check=False)


class _SimMergedFuture(SimFuture):
    """Composite SimFuture whose value materializes at first consumption.

    Resolves (ready time = max over parts; exception = first failing part)
    as soon as every part resolves, but the merge + hot-cache admission +
    pending-table cleanup run lazily inside :meth:`value` — the scheduler
    calls ``value()`` exactly when the waiting driver resumes, so cache
    state evolves in driver program order on the sim runtime just as it
    does on :class:`ThreadRuntime`.
    """

    __slots__ = ("_finalize",)

    def __init__(self, parts: list[SimFuture], finalize) -> None:
        super().__init__(tag="fetch.merge")
        self._finalize = finalize
        remaining = {"n": len(parts)}

        def on_done(_f: SimFuture) -> None:
            remaining["n"] -= 1
            if remaining["n"] > 0:
                return
            ready = max(p.ready_time for p in parts)
            exc = next((p.exception for p in parts
                        if p.exception is not None), None)
            if exc is not None:
                self.set_exception(exc, ready)
            else:
                self.set_result(None, ready)

        for p in parts:
            p.add_done_callback(on_done)

    def value(self) -> Any:
        if self._done and self._finalize is not None:
            fin, self._finalize = self._finalize, None
            if self._exception is None:
                self._value = fin(True)
            else:
                fin(False)
        return super().value()


class _ThreadMergedFuture:
    """Composite future for ThreadRuntime: blocks on parts at ``value()``."""

    __slots__ = ("_parts", "_finalize", "_lock", "_result", "_exception",
                 "_materialized")

    def __init__(self, parts: list[Any], finalize) -> None:
        self._parts = parts
        self._finalize = finalize
        self._lock = threading.Lock()
        self._result: Any = None
        self._exception: BaseException | None = None
        self._materialized = False

    @property
    def done(self) -> bool:
        return all(p.done for p in self._parts)

    def value(self) -> Any:
        with self._lock:
            if not self._materialized:
                self._materialized = True
                fin, self._finalize = self._finalize, None
                try:
                    for p in self._parts:
                        p.value()
                # repro: allow=REP006 cleanup only; fault is re-raised
                except BaseException as exc:
                    fin(False)
                    self._exception = exc
                    raise
                self._result = fin(True)
                return self._result
            if self._exception is not None:
                raise self._exception
            return self._result


class NeighborFetchService:
    """Driver-facing storage facade adding split / hot-cache / coalescing.

    Exposes the same surface as :class:`DistGraphStorage`; everything except
    remote compressed ``get_neighbor_infos`` delegates straight through, so
    drivers are agnostic to whether they hold the raw storage or the
    service.
    """

    def __init__(self, storage, cache: FetchCache, *, split: bool = True,
                 coalesce: bool = True, metrics=None, proc=None,
                 heat=None) -> None:
        self._g = storage
        self._cache = cache
        self._split = bool(split)
        self._coalesce = bool(coalesce)
        self._metrics = metrics
        self._proc = proc
        #: packed owner key -> remote-request count; the rebalancer reads
        #: this between epochs to find hot boundary vertices
        self._heat = heat

    # -- delegated surface ----------------------------------------------
    @property
    def rrefs(self):
        return self._g.rrefs

    @property
    def shard_id(self) -> int:
        return self._g.shard_id

    @property
    def caller(self) -> str:
        return self._g.caller

    @property
    def compress(self) -> bool:
        return self._g.compress

    @property
    def n_shards(self) -> int:
        return self._g.n_shards

    def is_local(self, dest_shard: int) -> bool:
        return self._g.is_local(dest_shard)

    def shard_masks(self, shard_ids: np.ndarray) -> dict[int, np.ndarray]:
        return self._g.shard_masks(shard_ids)

    def get_neighbor_infos_single(self, dest_shard: int, local_id: int):
        return self._g.get_neighbor_infos_single(dest_shard, local_id)

    def sample_one_neighbor(self, dest_shard: int, local_ids: np.ndarray,
                            salt: int | None = None):
        return self._g.sample_one_neighbor(dest_shard, local_ids, salt)

    def source_weighted_degrees(self, dest_shard: int,
                                local_ids: np.ndarray):
        return self._g.source_weighted_degrees(dest_shard, local_ids)

    # -- the adaptive path ----------------------------------------------
    def get_neighbor_infos(self, dest_shard: int, local_ids: np.ndarray):
        if not self._g.compress or self._g.is_local(dest_shard):
            return self._g.get_neighbor_infos(dest_shard, local_ids)
        ids = np.asarray(local_ids, dtype=np.int64)
        if len(ids) == 0:
            return self._g.get_neighbor_infos(dest_shard, ids)
        return self._fetch_remote(int(dest_shard), ids)

    def _inc(self, name: str, value: int = 1) -> None:
        if self._metrics is not None and value:
            self._metrics.inc(name, value)

    def _classify(self, cache, key_list, use_rows, tick,
                  hot_pos, hot_rows, pend):
        """Split request positions into hot hits / coalesced / misses."""
        rest: list[int] = []
        rows = cache.rows
        pending = cache.pending
        coalesce = self._coalesce
        for i, key in enumerate(key_list):
            if use_rows:
                row = rows.get(key)
                if row is not None:
                    row.freq += 1
                    row.tick = tick
                    hot_pos.append(i)
                    hot_rows.append(row)
                    continue
            if coalesce:
                ent = pending.get(key)
                if ent is not None:
                    fut, row_idx = ent
                    group = pend.get(id(fut))
                    if group is None:
                        group = pend[id(fut)] = (fut, [], [])
                    group[1].append(i)
                    group[2].append(row_idx)
                    continue
            rest.append(i)
        return rest

    def _fetch_remote(self, dest_shard: int, ids: np.ndarray):
        cache = self._cache
        n = len(ids)
        keys = ids * self._g.n_shards + dest_shard
        key_list = keys.tolist()  # one bulk conversion, not n int() calls

        hot_pos: list[int] = []
        hot_rows: list[_HotRow] = []
        #: id(fut) -> (fut, positions in this request, rows in that flight)
        pend: dict[int, tuple[Any, list[int], list[int]]] = {}
        rest: list[int] = []

        with cache.lock:
            cache.record_access(write=True)
            cache.tick += 1
            tick = cache.tick
            if self._heat is not None:
                heat = self._heat
                for key in key_list:
                    heat[key] = heat.get(key, 0) + 1
            use_rows = cache.capacity > 0 and bool(cache.rows)
            if not use_rows and not (self._coalesce and cache.pending):
                # nothing cached or in flight: every node is a miss
                rest = list(range(n))
            else:
                rest = self._classify(cache, key_list, use_rows, tick,
                                      hot_pos, hot_rows, pend)
            # Partial halo-cache hits: serve covered rows locally, send
            # only the misses over the wire.
            halo_pos: list[int] = []
            miss_pos = rest
            if self._split and rest:
                local_shard = self._g.rrefs[self._g.shard_id].local_value()
                if local_shard.has_halo_cache:
                    rest_arr = np.asarray(rest, dtype=np.int64)
                    covered = local_shard.cache_mask(dest_shard,
                                                     ids[rest_arr])
                    halo_pos = [int(p) for p in rest_arr[covered]]
                    miss_pos = [int(p) for p in rest_arr[~covered]]

            halo_fut = None
            if halo_pos:
                local_rref = self._g.rrefs[self._g.shard_id]
                halo_fut = local_rref.rpc_async(
                    self._g.caller, "get_cached_batch", dest_shard,
                    ids[np.asarray(halo_pos, dtype=np.int64)],
                )

            miss_fut = None
            miss_keys: list[int] = []
            if miss_pos:
                miss_fut = self._g.get_neighbor_infos(
                    dest_shard, ids[np.asarray(miss_pos, dtype=np.int64)]
                )
                if self._coalesce:
                    miss_keys = [key_list[p] for p in miss_pos]
                    for row_idx, key in enumerate(miss_keys):
                        cache.pending[key] = (miss_fut, row_idx)

        self._inc("fetch.requests")
        self._inc("fetch.cache_hits", len(hot_pos))
        self._inc("fetch.halo_hits", len(halo_pos))
        self._inc("fetch.coalesced", n - len(hot_pos) - len(rest))
        self._inc("fetch.misses", len(miss_pos))
        self._inc("fetch.bytes_saved",
                  sum(r.nbytes for r in hot_rows))
        if self._proc is not None and (hot_pos or halo_pos or pend):
            with self._proc.span("fetch.split", shard=dest_shard,
                                 hot=len(hot_pos), halo=len(halo_pos),
                                 miss=len(miss_pos)):
                pass
        if self._proc is not None and pend:
            # Zero-duration marker per coalesced flight, linked (via the
            # origin future's client span id) to the RPC this caller is
            # piggybacking on — exporters draw the cross-process flow arrow
            # from it instead of leaving the late requester dangling.
            tracer = getattr(self._proc, "tracer", None)
            if tracer is not None:
                now = self._proc.clock
                parent = tracer.current(self._proc.name)
                for fut, positions, _rows in pend.values():
                    origin = getattr(fut, "span_id", None)
                    if origin is None:
                        continue
                    tracer.record(
                        "fetch.coalesced", self._proc.name, now, now,
                        parent_id=parent, kind="coalesce", link=origin,
                        attrs={"shard": dest_shard, "rows": len(positions)},
                    )

        # Pure hot hit: no wire, no waiting — resolve immediately.
        if len(hot_pos) == n:
            batch = _rows_to_batch(hot_rows)
            ctx = self._g.rrefs[0].ctx
            if hasattr(ctx, "scheduler"):
                return SimFuture.resolved(batch, 0.0, tag="fetch.hot")
            from repro.rpc.thread_runtime import ThreadFuture

            return ThreadFuture.resolved(batch)

        # Pure miss with nothing to merge or admit or unregister: hand the
        # raw storage future through — byte-for-byte the pre-fetch-layer
        # path.
        if (miss_fut is not None and len(miss_pos) == n
                and cache.capacity <= 0 and not miss_keys):
            return miss_fut

        part_specs: list[tuple[Any, list[int], list[int] | None]] = []
        for fut, positions, row_idx in pend.values():
            part_specs.append((fut, positions, row_idx))
        if halo_fut is not None:
            part_specs.append((halo_fut, halo_pos, None))
        if miss_fut is not None:
            part_specs.append((miss_fut, miss_pos, None))

        def finalize(ok: bool):
            if not ok:
                if miss_keys:
                    with cache.lock:
                        cache.record_access(write=True)
                        cache.unregister(miss_keys, miss_fut)
                return None
            merge_parts: list[tuple[np.ndarray, NeighborBatch]] = []
            saved = 0
            for fut, positions, row_idx in part_specs:
                batch = fut.value()
                if row_idx is not None:
                    batch = batch.take_rows(
                        np.asarray(row_idx, dtype=np.int64)
                    )
                    saved += batch.rpc_payload()[0]
                elif fut is halo_fut:
                    saved += batch.rpc_payload()[0]
                merge_parts.append(
                    (np.asarray(positions, dtype=np.int64), batch)
                )
            evicted = 0
            if miss_keys or (cache.capacity > 0 and miss_fut is not None):
                with cache.lock:
                    cache.record_access(write=True)
                    if miss_keys:
                        cache.unregister(miss_keys, miss_fut)
                    if cache.capacity > 0 and miss_fut is not None:
                        admit_keys = [key_list[p] for p in miss_pos]
                        evicted = cache.admit(admit_keys, miss_fut.value())
            self._inc("fetch.bytes_saved", saved)
            self._inc("fetch.evictions", evicted)
            if hot_rows:
                merge_parts.append(
                    (np.asarray(hot_pos, dtype=np.int64),
                     _rows_to_batch(hot_rows))
                )
            if (len(merge_parts) == 1
                    and np.array_equal(merge_parts[0][0], np.arange(n))):
                return merge_parts[0][1]
            return NeighborBatch.merge(n, merge_parts)

        parts = [spec[0] for spec in part_specs]
        if hasattr(parts[0], "add_done_callback"):
            return _SimMergedFuture(parts, finalize)
        return _ThreadMergedFuture(parts, finalize)
