"""Partition-to-shard preprocessing (Section 3.2's "Graph Shard Preprocessing").

Given a graph and a partition assignment, build one :class:`GraphShard` per
part plus the global address book: every global node ID maps to its owner
``(shard ID, local ID)`` pair, where the local ID is the node's rank within
its shard's ascending global-ID list.  All of it is vectorized gathers — no
Python-level per-edge loops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShardError
from repro.graph.csr import CSRGraph
from repro.partition.base import PartitionResult
from repro.storage.shard import GraphShard


class ShardedGraph:
    """All shards of one graph plus global <-> (local, shard) translation."""

    def __init__(self, graph: CSRGraph, result: PartitionResult,
                 shards: list[GraphShard]) -> None:
        self.graph = graph
        self.result = result
        self.shards = shards
        self.n_shards = result.n_parts
        # Address book: owner shard and owner-local ID per global node.
        self.owner_shard = result.assignment
        self.owner_local = np.empty(graph.n_nodes, dtype=np.int64)
        for shard in shards:
            self.owner_local[shard.core_global] = np.arange(shard.n_core)

    def address_of(self, global_ids) -> tuple[np.ndarray, np.ndarray]:
        """Translate global IDs -> ``(local_ids, shard_ids)``."""
        gids = np.asarray(global_ids, dtype=np.int64)
        if len(gids) and (gids.min() < 0 or gids.max() >= self.graph.n_nodes):
            raise ShardError("global_ids out of range")
        return self.owner_local[gids], self.owner_shard[gids]

    def global_of(self, local_ids, shard_ids) -> np.ndarray:
        """Translate ``(local, shard)`` pairs back to global IDs."""
        local_ids = np.asarray(local_ids, dtype=np.int64)
        shard_ids = np.asarray(shard_ids, dtype=np.int64)
        if len(shard_ids) and (shard_ids.min() < 0
                               or shard_ids.max() >= self.n_shards):
            raise ShardError("shard_ids out of range")
        out = np.empty(len(local_ids), dtype=np.int64)
        for p, shard in enumerate(self.shards):
            mask = shard_ids == p
            if mask.any():
                ids = local_ids[mask]
                if ids.max(initial=-1) >= shard.n_core:
                    raise ShardError(f"local_ids out of range for shard {p}")
                out[mask] = shard.core_global[ids]
        return out

    def keys_of(self, global_ids) -> np.ndarray:
        """Encode global IDs as the engine's flat ``local*K + shard`` keys."""
        local, shard = self.address_of(global_ids)
        return local * self.n_shards + shard

    def globals_from_keys(self, keys) -> np.ndarray:
        """Decode flat keys back to global IDs."""
        keys = np.asarray(keys, dtype=np.int64)
        return self.global_of(keys // self.n_shards, keys % self.n_shards)

    def total_memory_nbytes(self) -> int:
        return sum(s.memory_nbytes() for s in self.shards)

    def describe(self) -> list[dict]:
        return [s.describe() for s in self.shards]


def build_shards(graph: CSRGraph, result: PartitionResult, *,
                 seed=0, halo_hops: int = 1) -> ShardedGraph:
    """Convert a partitioned graph into per-shard CSR storage.

    ``halo_hops=1`` (default) caches only halo *metadata* (addresses and
    weighted degrees inline in the neighbor arrays — the paper's scheme).
    ``halo_hops=2`` additionally caches the full adjacency *rows* of every
    1-hop halo node, so requests for them are answered locally — the
    memory-for-communication trade the paper describes in Section 3.2.1.
    """
    if halo_hops not in (1, 2):
        raise ShardError(f"halo_hops must be 1 or 2, got {halo_hops}")
    if result.n_nodes != graph.n_nodes:
        raise ShardError(
            f"partition covers {result.n_nodes} nodes, graph has {graph.n_nodes}"
        )
    n_shards = result.n_parts
    assignment = result.assignment

    # Owner-local IDs for every node (rank within its part's sorted list).
    owner_local = np.empty(graph.n_nodes, dtype=np.int64)
    part_nodes = []
    for p in range(n_shards):
        nodes = np.flatnonzero(assignment == p)
        part_nodes.append(nodes)
        owner_local[nodes] = np.arange(len(nodes))

    degrees = np.diff(graph.indptr)
    shards = []
    for p in range(n_shards):
        core = part_nodes[p]
        counts = degrees[core]
        indptr = np.zeros(len(core) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        # Flat gather of all core rows out of the global CSR.
        idx = np.repeat(graph.indptr[core] - indptr[:-1], counts) \
            + np.arange(total)
        nbr_global = graph.indices[idx]
        shards.append(GraphShard(
            shard_id=p,
            n_shards=n_shards,
            core_global=core,
            indptr=indptr,
            nbr_local=owner_local[nbr_global],
            nbr_shard=assignment[nbr_global],
            nbr_global=nbr_global,
            nbr_weight=graph.weights[idx],
            nbr_wdeg=graph.weighted_degrees[nbr_global],
            core_wdeg=graph.weighted_degrees[core],
            seed=None if seed is None else seed + p,
        ))

    if halo_hops == 2:
        n_shards_i = n_shards
        for shard in shards:
            halos = shard.halo_globals()
            # Sort halos by packed owner key so cache lookups can binary
            # search.
            halo_keys = owner_local[halos] * n_shards_i + assignment[halos]
            order = np.argsort(halo_keys)
            halos, halo_keys = halos[order], halo_keys[order]
            counts = degrees[halos]
            cache_indptr = np.zeros(len(halos) + 1, dtype=np.int64)
            np.cumsum(counts, out=cache_indptr[1:])
            total = int(cache_indptr[-1])
            idx = np.repeat(graph.indptr[halos] - cache_indptr[:-1],
                            counts) + np.arange(total)
            nbr_global = graph.indices[idx]
            shard.install_halo_cache(
                halo_keys,
                cache_indptr,
                (owner_local[nbr_global], assignment[nbr_global],
                 nbr_global, graph.weights[idx],
                 graph.weighted_degrees[nbr_global]),
                graph.weighted_degrees[halos],
            )
    return ShardedGraph(graph, result, shards)
