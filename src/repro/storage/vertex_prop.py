"""Zero-copy local fetch results.

A :class:`VertexProp` is what a local (shared-memory) ``get_neighbor_infos``
returns: no data is copied — it records the shard object and the requested
core-node IDs, and exposes views into the shard's flat arrays.  This mirrors
the paper's optimization of passing "a vector of shared pointers of
VertexProp across the C++ and Python layers for local fetching, without
taking ownership of the original data".

``to_arrays()`` materializes the same tuple a :class:`NeighborBatch` carries
(gather cost paid by the consumer, i.e. inside the push operator's measured
block).
"""

from __future__ import annotations

import numpy as np


class VertexProp:
    """Views over a shard's neighbor arrays for a batch of core nodes."""

    __slots__ = ("shard", "ids", "_starts", "_ends")

    def __init__(self, shard, ids: np.ndarray) -> None:
        self.shard = shard
        self.ids = ids
        self._starts = shard.indptr[ids]
        self._ends = shard.indptr[ids + 1]

    @property
    def n_sources(self) -> int:
        return len(self.ids)

    @property
    def n_entries(self) -> int:
        return int((self._ends - self._starts).sum())

    def degree(self, i: int) -> int:
        """Neighbor count of the i-th requested node."""
        return int(self._ends[i] - self._starts[i])

    def neighbors(self, i: int):
        """Views: ``(local, shard, global, weight, wdeg)`` of node i's neighbors."""
        s, e = self._starts[i], self._ends[i]
        sh = self.shard
        return (sh.nbr_local[s:e], sh.nbr_shard[s:e], sh.nbr_global[s:e],
                sh.nbr_weight[s:e], sh.nbr_wdeg[s:e])

    def source_weighted_degrees(self) -> np.ndarray:
        """Own weighted degree of each requested node."""
        return self.shard.core_wdeg[self.ids]

    def to_arrays(self):
        """Materialize ``(indptr, local, shard, global, w, wdeg, src_wdeg)``.

        When the requested ids form a contiguous ascending run — the
        common case for sorted core batches — the flat arrays are pure
        zero-copy slices of the shard's CSC arena (read-only views).
        Otherwise, a gather with one flat index array (no Python loop).
        Both paths return bitwise-identical values.
        """
        sh = self.shard
        ids = self.ids
        n = len(ids)
        if n and ids[0] + n - 1 == ids[-1] and np.all(np.diff(ids) == 1):
            i0 = int(ids[0])
            s0 = int(self._starts[0])
            e_last = int(self._ends[-1])
            indptr = sh.indptr[i0:i0 + n + 1] - s0
            return (indptr, sh.nbr_local[s0:e_last], sh.nbr_shard[s0:e_last],
                    sh.nbr_global[s0:e_last], sh.nbr_weight[s0:e_last],
                    sh.nbr_wdeg[s0:e_last], sh.core_wdeg[i0:i0 + n])
        counts = self._ends - self._starts
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        # flat gather indices: for each source i, range(starts[i], ends[i])
        idx = np.repeat(self._starts - indptr[:-1], counts) + np.arange(total)
        return (indptr, sh.nbr_local[idx], sh.nbr_shard[idx],
                sh.nbr_global[idx], sh.nbr_weight[idx], sh.nbr_wdeg[idx],
                sh.core_wdeg[ids])

    def rpc_payload(self) -> tuple[int, int]:
        """Local handoff is pointer-passing: negligible payload.

        VertexProp never crosses machines in the engine; if it ever did, the
        cost model would still see a tiny control payload rather than the
        (unsent) underlying arrays.
        """
        return 16 * (len(self.ids) + 1), 1
