"""Persisting preprocessed sharded graphs.

The paper amortizes partitioning across many query batches ("once the
input graph is partitioned, it can be used to compute many SSPPR queries").
These helpers make that amortization durable: a sharded graph round-trips
through one ``.npz`` archive holding the graph and the partition
assignment (shard arrays are deterministic vectorized gathers, so they are
rebuilt on load rather than serialized — the expensive part, min-cut
partitioning, is what's saved).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.partition.base import PartitionResult
from repro.storage.build import ShardedGraph, build_shards

_FORMAT_VERSION = 1


def save_sharded(path, sharded: ShardedGraph, *,
                 halo_hops: int = 1) -> None:
    """Write graph + partition (and shard build options) to ``path``."""
    graph = sharded.graph
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        n_nodes=np.int64(graph.n_nodes),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
        assignment=sharded.result.assignment,
        n_parts=np.int64(sharded.n_shards),
        halo_hops=np.int64(halo_hops),
    )


def load_sharded(path, *, seed=0) -> ShardedGraph:
    """Rebuild a :class:`ShardedGraph` saved by :func:`save_sharded`."""
    with np.load(Path(path)) as data:
        try:
            version = int(data["version"])
            if version != _FORMAT_VERSION:
                raise GraphFormatError(
                    f"unsupported sharded-graph version {version}"
                )
            graph = CSRGraph(int(data["n_nodes"]), data["indptr"],
                             data["indices"], data["weights"])
            result = PartitionResult(data["assignment"],
                                     int(data["n_parts"]))
            halo_hops = int(data["halo_hops"])
        except KeyError as exc:
            raise GraphFormatError(
                f"malformed sharded-graph file {path}: {exc}"
            ) from None
    return build_shards(graph, result, seed=seed, halo_hops=halo_hops)
