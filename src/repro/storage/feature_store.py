"""Cross-machine node-feature store (the GNN case study's data side).

The paper's ``convert_batch`` "slices corresponding features from a
cross-machine feature store": node features are partitioned exactly like the
graph (rows of a shard's core nodes live on its machine) and mini-batch
construction gathers rows for an arbitrary global-ID set with one batched
RPC per owning shard.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShardError
from repro.rpc.handlers import rpc_handler
from repro.rpc.rref import RRef
from repro.storage.build import ShardedGraph


class FeatureShard:
    """Feature rows for one shard's core nodes (hosted on its server)."""

    def __init__(self, shard_id: int, features: np.ndarray) -> None:
        if features.ndim != 2:
            raise ShardError(
                f"features must be 2-D (n_core, dim), got {features.shape}"
            )
        self.shard_id = shard_id
        self.features = features

    @property
    def n_rows(self) -> int:
        return self.features.shape[0]

    @property
    def dim(self) -> int:
        return self.features.shape[1]

    @rpc_handler
    def gather(self, local_ids) -> np.ndarray:
        """Rows for the given core-node local IDs (copy, RPC-safe)."""
        ids = np.asarray(local_ids, dtype=np.int64)
        if len(ids) and (ids.min() < 0 or ids.max() >= self.n_rows):
            raise ShardError(
                f"feature local_ids out of range for shard {self.shard_id}"
            )
        return self.features[ids].copy()


def split_features(sharded: ShardedGraph,
                   features: np.ndarray) -> list[FeatureShard]:
    """Partition a global feature matrix into per-shard feature shards."""
    if features.shape[0] != sharded.graph.n_nodes:
        raise ShardError(
            f"features cover {features.shape[0]} nodes, graph has "
            f"{sharded.graph.n_nodes}"
        )
    return [
        FeatureShard(p, features[shard.core_global])
        for p, shard in enumerate(sharded.shards)
    ]


class DistFeatureStore:
    """Per-process handle gathering feature rows across machines."""

    def __init__(self, rrefs: list[RRef], caller: str) -> None:
        self.rrefs = rrefs
        self.caller = caller

    def gather_futures(self, sharded: ShardedGraph, global_ids: np.ndarray):
        """Issue one gather per owning shard.

        Returns ``(futures, masks)``: ``futures[j]`` resolves to the rows of
        ``global_ids[masks[j]]``.  The caller reassembles rows in request
        order (see :func:`assemble_rows`).
        """
        gids = np.asarray(global_ids, dtype=np.int64)
        local, shard = sharded.address_of(gids)
        futures, masks = {}, {}
        for j in range(len(self.rrefs)):
            mask = shard == j
            if not mask.any():
                continue
            masks[j] = mask
            futures[j] = self.rrefs[j].rpc_async(
                self.caller, "gather", local[mask]
            )
        return futures, masks


def assemble_rows(n_rows: int, dim: int, parts: dict[int, np.ndarray],
                  masks: dict[int, np.ndarray]) -> np.ndarray:
    """Scatter per-shard row blocks back into request order."""
    out = np.empty((n_rows, dim))
    for j, rows in parts.items():
        out[masks[j]] = rows
    return out
