"""Per-process facade over local + remote graph shards (Figure 4's ``g``).

A :class:`DistGraphStorage` is constructed per computing process from the
list of storage RRefs (one per shard) and the process's own shard ID.  Its
methods mirror the paper's interface:

* ``get_neighbor_infos(dest_shard, local_ids)`` — asynchronous batched
  fetch.  Same-machine requests take the zero-copy :class:`VertexProp`
  path; cross-machine requests return a CSR-compressed
  :class:`NeighborBatch` (or the uncompressed list-of-lists when the
  *Compress* optimization is disabled, for the Table 3 ablation).
* ``get_neighbor_infos_single(dest_shard, local_id)`` — one node per RPC,
  the unbatched ablation baseline.
* ``sample_one_neighbor(dest_shard, local_ids)`` — random-walk step.

All methods return a future (already resolved for local calls), so driver
code is identical with and without overlap.
"""

from __future__ import annotations

import numpy as np

from repro.rpc.rref import RRef, check_rrefs


class DistGraphStorage:
    """Figure 4's distributed graph storage handle."""

    def __init__(self, rrefs: list[RRef], shard_id: int, caller: str, *,
                 compress: bool = True) -> None:
        check_rrefs(rrefs, len(rrefs))
        if not 0 <= shard_id < len(rrefs):
            raise ValueError(
                f"shard_id {shard_id} out of range [0, {len(rrefs)})"
            )
        self.rrefs = rrefs
        self.shard_id = int(shard_id)
        self.caller = caller
        self.compress = compress

    @property
    def n_shards(self) -> int:
        return len(self.rrefs)

    def is_local(self, dest_shard: int) -> bool:
        """Whether ``dest_shard``'s storage lives on the caller's machine."""
        return self.rrefs[dest_shard].is_owner(self.caller)

    def get_neighbor_infos(self, dest_shard: int, local_ids: np.ndarray):
        """Batched neighbor fetch; returns a future of a batch response.

        With ``compress`` on, same-machine requests take the zero-copy
        ``VertexProp`` path and remote ones return a CSR
        :class:`~repro.storage.neighbor_batch.NeighborBatch`.  With it off
        (Table 3 ablation), *both* paths return the slow per-node-wrapped
        list-of-lists — the paper introduces the shared-pointer local path
        as part of the compression optimization ("tensor wrapping dominates
        the local fetch time").
        """
        rref = self.rrefs[dest_shard]
        if self.compress:
            if self.is_local(dest_shard):
                return rref.rpc_async(self.caller, "get_vertex_props", local_ids)
            # 2-hop halo cache: if the local shard caches every requested
            # node's row, answer from shared memory instead of the network.
            local_rref = self.rrefs[self.shard_id]
            local_shard = local_rref.local_value()
            if (local_shard.has_halo_cache
                    and local_shard.cache_covers(dest_shard, local_ids)):
                return local_rref.rpc_async(
                    self.caller, "get_cached_batch", dest_shard, local_ids
                )
            return rref.rpc_async(self.caller, "get_neighbor_batch", local_ids)
        return rref.rpc_async(self.caller, "get_neighbor_lists", local_ids)

    def get_neighbor_infos_single(self, dest_shard: int, local_id: int):
        """Single-node fetch (the unbatched, uncompressed ablation baseline)."""
        return self.rrefs[dest_shard].rpc_async(
            self.caller, "get_single", int(local_id)
        )

    def sample_one_neighbor(self, dest_shard: int, local_ids: np.ndarray,
                            salt: int | None = None):
        """Sample one out-neighbor per node (random-walk step).

        ``salt`` (e.g. the walk step number) makes sampling independent of
        request arrival order — see GraphShard.sample_one_neighbor.
        """
        return self.rrefs[dest_shard].rpc_async(
            self.caller, "sample_one_neighbor", local_ids, salt
        )

    def source_weighted_degrees(self, dest_shard: int, local_ids: np.ndarray):
        """Fetch own weighted degrees (used to seed SSPPR queries)."""
        return self.rrefs[dest_shard].rpc_async(
            self.caller, "source_weighted_degrees", local_ids
        )

    def shard_masks(self, shard_ids: np.ndarray) -> dict[int, np.ndarray]:
        """Index array per destination shard (Figure 4's ``mask_dict``).

        Each entry holds the ascending positions of that shard's nodes in
        ``shard_ids`` — equivalent to ``np.flatnonzero(shard_ids == j)``
        for every present shard, but built in one ``np.argsort`` pass
        instead of one comparison scan per shard.  Only shards actually
        present get an entry — at high machine counts a frontier usually
        touches a few shards, and building all K masks per iteration is
        O(K·frontier) waste.  Callers must treat absent shards as empty
        (``masks.get(j)``); fancy-indexing with an index array selects and
        scatters exactly what the old boolean masks did, in the same
        (ascending-position) order.
        """
        if len(shard_ids) == 0:
            return {}
        order = np.argsort(shard_ids, kind="stable")
        sorted_sh = shard_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_sh)) + 1
        return {int(shard_ids[g[0]]): g
                for g in np.split(order, boundaries)}
