"""One partition's graph data: the Graph Shard of Section 3.2.2.

Rows are the shard's *core nodes* (identified by local ID = rank within the
shard's sorted global-ID list); for every core node the shard stores its
full out-neighborhood as five parallel flat arrays:

* ``nbr_local``  — neighbor local IDs (relative to the *owner* shard),
* ``nbr_shard``  — neighbor owner shard IDs,
* ``nbr_global`` — neighbor global IDs (used by random walks / baselines),
* ``nbr_weight`` — edge weights,
* ``nbr_wdeg``   — neighbors' weighted degrees (the 1-hop halo cache: lets
  Forward Push threshold-check any touched node without a second RPC).

plus ``core_wdeg``, the core nodes' own weighted degrees.  Neighbors owned
by other shards are the shard's *halo nodes*; only their addressing and
degree metadata is cached — their adjacency stays with their owner
(Figure 3: "shards only store the data about core nodes").

Shards are immutable under queries, but support *staged* mutation for
the streaming path: :meth:`~GraphShard.stage_updates` precomputes
replacement arrays off to the side (invisible to readers),
:meth:`~GraphShard.commit_updates` swaps them in atomically while
retaining the pre-image, and :meth:`~GraphShard.rollback_updates` /
:meth:`~GraphShard.abort_updates` undo a commit / discard a stage — the
building blocks of the two-phase batch protocol in
:mod:`repro.stream.ingest`.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ShardError
from repro.rpc.handlers import rpc_handler
from repro.storage.neighbor_batch import NeighborBatch, NeighborLists
from repro.storage.shard_update import ShardUpdate
from repro.storage.vertex_prop import VertexProp
from repro.utils.rng import rng_from_seed


def _freeze(*arrays: np.ndarray) -> None:
    """Mark arrays read-only (the zero-copy arena guard)."""
    for arr in arrays:
        arr.flags.writeable = False


class GraphShard:
    """Storage for one graph partition (plus halo metadata)."""

    def __init__(self, shard_id: int, n_shards: int, core_global: np.ndarray,
                 indptr: np.ndarray, nbr_local: np.ndarray,
                 nbr_shard: np.ndarray, nbr_global: np.ndarray,
                 nbr_weight: np.ndarray, nbr_wdeg: np.ndarray,
                 core_wdeg: np.ndarray, *, seed=None) -> None:
        if not 0 <= shard_id < n_shards:
            raise ShardError(f"shard_id {shard_id} out of range [0, {n_shards})")
        n_core = len(core_global)
        if indptr.shape != (n_core + 1,):
            raise ShardError(
                f"indptr shape {indptr.shape} != ({n_core + 1},)"
            )
        n_entries = int(indptr[-1])
        for name, arr in (("nbr_local", nbr_local), ("nbr_shard", nbr_shard),
                          ("nbr_global", nbr_global), ("nbr_weight", nbr_weight),
                          ("nbr_wdeg", nbr_wdeg)):
            if len(arr) != n_entries:
                raise ShardError(f"{name} length {len(arr)} != {n_entries}")
        if len(core_wdeg) != n_core:
            raise ShardError("core_wdeg length mismatch")
        self.shard_id = int(shard_id)
        self.n_shards = int(n_shards)
        self.core_global = core_global
        self.indptr = indptr
        self.nbr_local = nbr_local
        self.nbr_shard = nbr_shard
        self.nbr_global = nbr_global
        self.nbr_weight = nbr_weight
        self.nbr_wdeg = nbr_wdeg
        self.core_wdeg = core_wdeg
        # The CSC arena is read-only: fetch responses are zero-copy views
        # into these arrays, so an in-place write anywhere would silently
        # corrupt every outstanding response.  Mutation goes through the
        # staged two-phase path, which builds fresh arrays and swaps.
        _freeze(core_global, indptr, nbr_local, nbr_shard, nbr_global,
                nbr_weight, nbr_wdeg, core_wdeg)
        self._seed = seed
        self._pool = None  # RPC buffer pool, attached by the hosting server
        self._rng = rng_from_seed(seed)
        self._rng_lock = threading.Lock()
        # Optional 2-hop halo cache (install_halo_cache): full adjacency
        # rows for this shard's 1-hop halo nodes, answerable locally.
        self._cache_keys: np.ndarray | None = None
        self._cache_indptr: np.ndarray | None = None
        self._cache_arrays: tuple | None = None
        self._cache_src_wdeg: np.ndarray | None = None
        # Streaming two-phase state: staged replacement arrays per tag
        # (invisible until commit) and the pre-image of the last commit
        # (kept until the next commit so a failed round can roll back).
        self._staged: dict[int, dict] = {}
        self._preimage: dict[int, dict] = {}

    # -- validation ---------------------------------------------------------
    @property
    def n_core(self) -> int:
        return len(self.core_global)

    @property
    def n_entries(self) -> int:
        return len(self.nbr_local)

    def halo_globals(self) -> np.ndarray:
        """Global IDs of this shard's halo nodes (remote-owned neighbors)."""
        remote = self.nbr_shard != self.shard_id
        return np.unique(self.nbr_global[remote])

    def attach_pool(self, pool) -> None:
        """Link the hosting server's RPC buffer pool for memory accounting."""
        self._pool = pool

    def memory_nbytes(self) -> int:
        """Bytes held by the shard's arrays (paper: ~1.5x the raw CSR).

        Includes the optional 2-hop halo cache when installed, and the
        hosting server's pooled RPC buffers when a pool is attached —
        rebalancing heat decisions see the true per-shard footprint.
        """
        total = sum(arr.nbytes for arr in (
            self.core_global, self.indptr, self.nbr_local, self.nbr_shard,
            self.nbr_global, self.nbr_weight, self.nbr_wdeg, self.core_wdeg,
        ))
        if self._cache_keys is not None:
            total += (self._cache_keys.nbytes + self._cache_indptr.nbytes
                      + self._cache_src_wdeg.nbytes
                      + sum(a.nbytes for a in self._cache_arrays))
        if self._pool is not None:
            total += self._pool.nbytes()
        return total

    def _check_ids(self, local_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(local_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ShardError(f"local_ids must be 1-D, got shape {ids.shape}")
        if len(ids) and (ids.min() < 0 or ids.max() >= self.n_core):
            raise ShardError(
                f"local_ids out of range for shard {self.shard_id} "
                f"(n_core={self.n_core}): [{ids.min()}, {ids.max()}]"
            )
        return ids

    # -- fetch API (the "Graph Storage" operations) --------------------------
    @rpc_handler
    def get_vertex_props(self, local_ids) -> VertexProp:
        """Zero-copy local fetch: views over the shard arrays."""
        return VertexProp(self, self._check_ids(local_ids))

    @rpc_handler
    def get_neighbor_batch(self, local_ids) -> NeighborBatch:
        """CSR-compressed batch response (remote fetch, *Compress* mode)."""
        ids = self._check_ids(local_ids)
        prop = VertexProp(self, ids)
        (indptr, local, shard, glob, w, wdeg, src_wdeg) = prop.to_arrays()
        return NeighborBatch(indptr, local, shard, glob, w, wdeg, src_wdeg,
                             check=False)

    @rpc_handler
    def get_neighbor_lists(self, local_ids) -> NeighborLists:
        """Uncompressed list-of-lists response (ablation: batch, no compress).

        Each per-node tuple copies its slices — mirroring the tensor-
        wrapping the paper identifies as the dominant cost of this format.
        """
        ids = self._check_ids(local_ids)
        entries = []
        for lid in ids:
            s, e = self.indptr[lid], self.indptr[lid + 1]
            # repro: allow=REP011 this ablation measures per-node copy cost
            entries.append((
                self.nbr_local[s:e].copy(), self.nbr_shard[s:e].copy(),  # repro: allow=REP011
                self.nbr_global[s:e].copy(), self.nbr_weight[s:e].copy(),  # repro: allow=REP011
                self.nbr_wdeg[s:e].copy(),  # repro: allow=REP011
            ))
        return NeighborLists(entries, self.core_wdeg[ids].copy())  # repro: allow=REP011

    @rpc_handler
    def get_single(self, local_id: int) -> NeighborLists:
        """One-node response (ablation: no batching at all)."""
        return self.get_neighbor_lists(np.array([local_id], dtype=np.int64))

    @rpc_handler
    def source_weighted_degrees(self, local_ids) -> np.ndarray:
        """Own weighted degrees of the given core nodes."""
        return self.core_wdeg[self._check_ids(local_ids)]

    @rpc_handler
    def sample_one_neighbor(self, local_ids, salt: int | None = None):
        """Uniformly sample one out-neighbor per requested core node.

        Returns ``(next_local, next_global, next_shard)`` arrays, matching
        the Figure 4 random-walk interface.  Nodes with no out-neighbors
        stay in place (self-transition).

        ``salt`` makes the draw a pure function of
        ``(shard seed, salt, requested ids)`` — independent of request
        *arrival order*, which carries measured-time jitter in the
        simulator.  Callers wanting run-to-run reproducible walks pass a
        per-step salt; without one, the shard's shared stream is used.
        """
        ids = self._check_ids(local_ids)
        starts = self.indptr[ids]
        counts = self.indptr[ids + 1] - starts
        if salt is not None:
            import zlib

            digest = zlib.crc32(ids.tobytes())
            base = (int(self._seed)
                    if isinstance(self._seed, (int, np.integer)) else 0)
            rng = np.random.default_rng((base, int(salt), digest))
            offsets = rng.integers(0, np.maximum(counts, 1))
        else:
            with self._rng_lock:
                offsets = self._rng.integers(0, np.maximum(counts, 1))
        has = counts > 0
        # Clamp picks for zero-degree nodes so the gather stays in bounds;
        # their values are discarded by the np.where below.
        pick = np.minimum(starts + offsets, max(self.n_entries - 1, 0))
        next_local = np.where(has, self.nbr_local[pick], ids)
        next_global = np.where(has, self.nbr_global[pick],
                               self.core_global[ids])
        next_shard = np.where(has, self.nbr_shard[pick], self.shard_id)
        return next_local, next_global, next_shard

    # -- 2-hop halo cache ----------------------------------------------------
    # Section 3.2.1: "The higher the hop value for halo nodes, the lower
    # the communication requirements and the higher the amount of stored
    # data."  With the cache installed, this shard can answer neighbor-info
    # requests for its 1-hop halo nodes locally (so the engine only goes
    # remote for nodes 2+ hops outside the partition).

    @property
    def has_halo_cache(self) -> bool:
        return self._cache_keys is not None

    def install_halo_cache(self, cache_keys: np.ndarray,
                           cache_indptr: np.ndarray, cache_arrays: tuple,
                           cache_src_wdeg: np.ndarray) -> None:
        """Attach cached adjacency rows for halo nodes.

        ``cache_keys`` are sorted packed owner addresses
        (``local * K + shard``); ``cache_arrays`` is the
        (local, shard, global, weight, wdeg) tuple of flat arrays indexed
        by ``cache_indptr``.
        """
        if len(cache_keys) and np.any(np.diff(cache_keys) <= 0):
            raise ShardError("cache_keys must be strictly increasing")
        if cache_indptr.shape != (len(cache_keys) + 1,):
            raise ShardError("cache_indptr shape mismatch")
        if len(cache_src_wdeg) != len(cache_keys):
            raise ShardError("cache_src_wdeg length mismatch")
        # The cache is part of the read-only arena: get_cached_batch hands
        # out zero-copy views into these arrays.
        _freeze(cache_keys, cache_indptr, cache_src_wdeg, *cache_arrays)
        self._cache_keys = cache_keys
        self._cache_indptr = cache_indptr
        self._cache_arrays = cache_arrays
        self._cache_src_wdeg = cache_src_wdeg

    def cache_covers(self, dest_shard: int, local_ids: np.ndarray) -> bool:
        """Whether every requested remote node is in the halo cache."""
        if self._cache_keys is None or len(local_ids) == 0:
            return self._cache_keys is not None and len(local_ids) == 0
        keys = (np.asarray(local_ids, dtype=np.int64) * self.n_shards
                + int(dest_shard))
        pos = np.searchsorted(self._cache_keys, keys)
        pos = np.minimum(pos, len(self._cache_keys) - 1)
        return bool(np.all(self._cache_keys[pos] == keys))

    def cache_mask(self, dest_shard: int, local_ids: np.ndarray) -> np.ndarray:
        """Per-node boolean mask of which remote nodes the halo cache holds.

        The partial-hit counterpart of :meth:`cache_covers`: the fetch
        layer uses it to serve covered rows locally and send only the
        misses over the wire.
        """
        ids = np.asarray(local_ids, dtype=np.int64)
        if self._cache_keys is None or len(self._cache_keys) == 0:
            return np.zeros(len(ids), dtype=bool)
        keys = ids * self.n_shards + int(dest_shard)
        pos = np.searchsorted(self._cache_keys, keys)
        pos = np.minimum(pos, len(self._cache_keys) - 1)
        return self._cache_keys[pos] == keys

    @rpc_handler
    def get_cached_batch(self, dest_shard: int,
                         local_ids) -> NeighborBatch:
        """Serve a remote shard's nodes from the local halo cache."""
        if self._cache_keys is None:
            raise ShardError(f"shard {self.shard_id} has no halo cache")
        ids = np.asarray(local_ids, dtype=np.int64)
        keys = ids * self.n_shards + int(dest_shard)
        pos = np.searchsorted(self._cache_keys, keys)
        if len(keys):
            pos_clip = np.minimum(pos, len(self._cache_keys) - 1)
            if np.any(self._cache_keys[pos_clip] != keys):
                missing = keys[self._cache_keys[pos_clip] != keys]
                raise ShardError(
                    f"halo cache miss for {len(missing)} nodes of shard "
                    f"{dest_shard} (first key {missing[0]})"
                )
            pos = pos_clip
        local, shard, glob, w, wdeg = self._cache_arrays
        n = len(ids)
        if n and pos[0] + n - 1 == pos[-1] and bool(np.all(np.diff(pos) == 1)):
            # contiguous cache run: zero-copy slices of the cache arena
            p0 = int(pos[0])
            s0 = int(self._cache_indptr[p0])
            e_last = int(self._cache_indptr[p0 + n])
            return NeighborBatch(
                self._cache_indptr[p0:p0 + n + 1] - s0,
                local[s0:e_last], shard[s0:e_last], glob[s0:e_last],
                w[s0:e_last], wdeg[s0:e_last],
                self._cache_src_wdeg[p0:p0 + n], check=False,
            )
        starts = self._cache_indptr[pos]
        counts = self._cache_indptr[pos + 1] - starts
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        # repro: allow=REP011 scattered cache rows need a gather
        idx = np.repeat(starts - indptr[:-1], counts) + np.arange(total)
        return NeighborBatch(indptr, local[idx], shard[idx], glob[idx],
                             w[idx], wdeg[idx], self._cache_src_wdeg[pos],
                             check=False)

    # -- streaming: staged batch application ---------------------------------
    # Two-phase protocol (repro.stream.ingest): the driver stages one
    # update batch on every shard, then commits everywhere; any failure
    # aborts the stage (nothing was visible) or rolls back the commit
    # (pre-image restore), so a batch is all-or-nothing across the
    # cluster.  All three mutators are idempotent under RPC retries.

    @rpc_handler
    def stage_updates(self, tag: int, update: ShardUpdate) -> int:
        """Precompute replacement arrays for one batch; nothing visible yet.

        Returns the number of core rows the stage would replace.  A tag
        that already committed is a no-op (a retried stage after a lost
        reply must not re-apply on top of the new arrays).
        """
        tag = int(tag)
        if tag in self._preimage:
            return int(len(self._staged.get(tag, {}).get("row_lids", ())))
        lids = self._check_ids(update.row_lids)

        # Core degrees from the broadcast (changed vertices only).
        core_wdeg = self.core_wdeg.copy()  # repro: allow=REP011 staged replacement
        if self.n_core and len(update.deg_gids):
            pos = np.searchsorted(self.core_global, update.deg_gids)
            pos_c = np.minimum(pos, self.n_core - 1)
            sel = self.core_global[pos_c] == update.deg_gids
            core_wdeg[pos_c[sel]] = update.deg_wdeg[sel]

        # Splice replacement rows over the old flat arrays.
        old_counts = np.diff(self.indptr)
        new_counts = old_counts.copy()  # repro: allow=REP011 staged replacement
        new_counts[lids] = np.diff(update.row_indptr)
        indptr = np.zeros(self.n_core + 1, dtype=np.int64)
        np.cumsum(new_counts, out=indptr[1:])
        total = int(indptr[-1])
        arrays = {
            "nbr_local": np.empty(total, dtype=np.int64),
            "nbr_shard": np.empty(total, dtype=np.int64),
            "nbr_global": np.empty(total, dtype=np.int64),
            "nbr_weight": np.empty(total, dtype=np.float64),
            "nbr_wdeg": np.empty(total, dtype=np.float64),
        }
        changed = np.zeros(self.n_core, dtype=bool)
        changed[lids] = True
        entry_row = np.repeat(np.arange(self.n_core), old_counts)  # repro: allow=REP011
        keep = ~changed[entry_row]
        dst = (indptr[entry_row[keep]]
               + (np.arange(self.n_entries) - self.indptr[entry_row])[keep])
        for name, src in (("nbr_local", self.nbr_local),
                          ("nbr_shard", self.nbr_shard),
                          ("nbr_global", self.nbr_global),
                          ("nbr_weight", self.nbr_weight),
                          ("nbr_wdeg", self.nbr_wdeg)):
            arrays[name][dst] = src[keep]
        row_counts = np.diff(update.row_indptr)
        row_total = int(update.row_indptr[-1]) if len(lids) else 0
        # repro: allow=REP011 staged-splice scatter
        dst2 = (np.repeat(indptr[lids] - update.row_indptr[:-1], row_counts)
                + np.arange(row_total))
        arrays["nbr_local"][dst2] = update.row_local
        arrays["nbr_shard"][dst2] = update.row_shard
        arrays["nbr_global"][dst2] = update.row_global
        arrays["nbr_weight"][dst2] = update.row_weight
        arrays["nbr_wdeg"][dst2] = update.row_wdeg

        # Degree broadcast over every entry referencing a changed vertex.
        self._patch_degrees(arrays["nbr_global"], arrays["nbr_wdeg"],
                            update.deg_gids, update.deg_wdeg)

        staged = {"row_lids": lids, "indptr": indptr,
                  "core_wdeg": core_wdeg, **arrays}
        staged.update(self._stage_cache_refresh(update))
        self._staged[tag] = staged
        return int(len(lids))

    @staticmethod
    def _patch_degrees(gids: np.ndarray, wdeg: np.ndarray,
                       deg_gids: np.ndarray, deg_wdeg: np.ndarray) -> None:
        """Overwrite ``wdeg`` entries whose ``gids`` are in the broadcast."""
        if not len(gids) or not len(deg_gids):
            return
        pos = np.searchsorted(deg_gids, gids)
        pos_c = np.minimum(pos, len(deg_gids) - 1)
        sel = deg_gids[pos_c] == gids
        wdeg[sel] = deg_wdeg[pos_c[sel]]

    def _stage_cache_refresh(self, update: ShardUpdate) -> dict:
        """New halo-cache arrays with changed vertices' rows replaced.

        Cached content must always equal the owner's current row; rows
        this shard never cached stay uncached (coverage of *new* halo
        vertices is rebalancing's job, not ingestion's).
        """
        if self._cache_keys is None:
            return {}
        keys = self._cache_keys
        old_counts = np.diff(self._cache_indptr)
        refresh = np.zeros(len(keys), dtype=bool)
        src_pos = np.zeros(len(keys), dtype=np.int64)
        if len(keys) and len(update.halo_keys):
            pos = np.searchsorted(update.halo_keys, keys)
            pos_c = np.minimum(pos, len(update.halo_keys) - 1)
            refresh = update.halo_keys[pos_c] == keys
            src_pos = pos_c
        new_counts = old_counts.copy()  # repro: allow=REP011 staged replacement
        halo_counts = np.diff(update.halo_indptr)
        new_counts[refresh] = halo_counts[src_pos[refresh]]
        indptr = np.zeros(len(keys) + 1, dtype=np.int64)
        np.cumsum(new_counts, out=indptr[1:])
        total = int(indptr[-1])
        old_local, old_shard, old_glob, old_w, old_wdeg = self._cache_arrays
        out = {name: np.empty(total, dtype=dt) for name, dt in (
            ("c_local", np.int64), ("c_shard", np.int64),
            ("c_global", np.int64), ("c_weight", np.float64),
            ("c_wdeg", np.float64))}
        # Kept rows: gather from the old arrays at their new offsets.
        kept = ~refresh
        n_old = int(self._cache_indptr[-1])
        entry_key = np.repeat(np.arange(len(keys)), old_counts)  # repro: allow=REP011
        keep_entries = kept[entry_key]
        dst = (indptr[entry_key[keep_entries]]
               + (np.arange(n_old)
                  - self._cache_indptr[entry_key])[keep_entries])
        for name, src in (("c_local", old_local), ("c_shard", old_shard),
                          ("c_global", old_glob), ("c_weight", old_w),
                          ("c_wdeg", old_wdeg)):
            out[name][dst] = src[keep_entries]
        # Refreshed rows: gather from the update's halo rows.
        ref_idx = np.flatnonzero(refresh)
        srcs = src_pos[ref_idx]
        cnt = halo_counts[srcs]
        n_ref = int(np.sum(cnt))
        within = (np.arange(n_ref)  # staged cache-refresh gather
                  - np.repeat(np.cumsum(cnt) - cnt, cnt))  # repro: allow=REP011
        dst2 = np.repeat(indptr[ref_idx], cnt) + within  # repro: allow=REP011
        src2 = np.repeat(update.halo_indptr[srcs], cnt) + within  # repro: allow=REP011
        for name, src in (("c_local", update.halo_local),
                          ("c_shard", update.halo_shard),
                          ("c_global", update.halo_global),
                          ("c_weight", update.halo_weight),
                          ("c_wdeg", update.halo_wdeg)):
            out[name][dst2] = src[src2]
        self._patch_degrees(out["c_global"], out["c_wdeg"],
                            update.deg_gids, update.deg_wdeg)
        src_wdeg = self._cache_src_wdeg.copy()  # repro: allow=REP011 staged replacement
        src_wdeg[ref_idx] = update.halo_src_wdeg[srcs]
        return {"c_indptr": indptr, "c_src_wdeg": src_wdeg, **out}

    @rpc_handler
    def commit_updates(self, tag: int) -> int:
        """Swap staged arrays in, retaining the pre-image for rollback."""
        tag = int(tag)
        if tag in self._preimage:
            return 1  # retried commit after a lost reply: already applied
        staged = self._staged.pop(tag, None)
        if staged is None:
            raise ShardError(f"shard {self.shard_id}: commit of unknown "
                             f"tag {tag}")
        # staged arrays join the read-only arena the moment they go live
        _freeze(*(v for v in staged.values()
                  if isinstance(v, np.ndarray)))
        pre = {
            "indptr": self.indptr, "nbr_local": self.nbr_local,
            "nbr_shard": self.nbr_shard, "nbr_global": self.nbr_global,
            "nbr_weight": self.nbr_weight, "nbr_wdeg": self.nbr_wdeg,
            "core_wdeg": self.core_wdeg, "c_keys": self._cache_keys,
            "c_indptr": self._cache_indptr, "c_arrays": self._cache_arrays,
            "c_src_wdeg": self._cache_src_wdeg,
        }
        self.indptr = staged["indptr"]
        self.nbr_local = staged["nbr_local"]
        self.nbr_shard = staged["nbr_shard"]
        self.nbr_global = staged["nbr_global"]
        self.nbr_weight = staged["nbr_weight"]
        self.nbr_wdeg = staged["nbr_wdeg"]
        self.core_wdeg = staged["core_wdeg"]
        if "c_indptr" in staged:
            self._cache_indptr = staged["c_indptr"]
            self._cache_arrays = (staged["c_local"], staged["c_shard"],
                                  staged["c_global"], staged["c_weight"],
                                  staged["c_wdeg"])
            self._cache_src_wdeg = staged["c_src_wdeg"]
        self._preimage = {tag: pre}  # older pre-images are now unreachable
        return 1

    @rpc_handler
    def rollback_updates(self, tag: int) -> int:
        """Undo a commit (pre-image restore) or discard a stage.

        Idempotent: rolling back a tag that never staged/committed here
        is a no-op, so the driver can broadcast rollbacks safely.
        """
        tag = int(tag)
        pre = self._preimage.pop(tag, None)
        if pre is not None:
            self.indptr = pre["indptr"]
            self.nbr_local = pre["nbr_local"]
            self.nbr_shard = pre["nbr_shard"]
            self.nbr_global = pre["nbr_global"]
            self.nbr_weight = pre["nbr_weight"]
            self.nbr_wdeg = pre["nbr_wdeg"]
            self.core_wdeg = pre["core_wdeg"]
            self._cache_keys = pre["c_keys"]
            self._cache_indptr = pre["c_indptr"]
            self._cache_arrays = pre["c_arrays"]
            self._cache_src_wdeg = pre["c_src_wdeg"]
        self._staged.pop(tag, None)
        return 1

    @rpc_handler
    def abort_updates(self, tag: int) -> int:
        """Discard a staged (never committed) batch.  Idempotent."""
        self._staged.pop(int(tag), None)
        return 1

    @rpc_handler
    def install_halo_rows(self, keys, src_wdeg, indptr, local, shard,
                          glob, weight, wdeg) -> int:
        """Merge replacement/replica rows into the halo cache.

        ``keys`` are sorted packed owner addresses; rows for keys already
        cached replace the old content, new keys extend coverage (the
        replication path of telemetry-driven rebalancing).  Creates the
        cache if the shard had none.
        """
        keys = np.asarray(keys, dtype=np.int64)
        src_wdeg = np.asarray(src_wdeg, dtype=np.float64)
        indptr = np.asarray(indptr, dtype=np.int64)
        if len(keys) and bool(np.any(np.diff(keys) <= 0)):
            raise ShardError("install_halo_rows keys must be strictly "
                             "increasing")
        if indptr.shape != (len(keys) + 1,) or len(src_wdeg) != len(keys):
            raise ShardError("install_halo_rows header mismatch")
        new_arrays = (np.asarray(local, dtype=np.int64),
                      np.asarray(shard, dtype=np.int64),
                      np.asarray(glob, dtype=np.int64),
                      np.asarray(weight, dtype=np.float64),
                      np.asarray(wdeg, dtype=np.float64))
        if self._cache_keys is None:
            self.install_halo_cache(keys, indptr, new_arrays, src_wdeg)
            return int(len(keys))
        # Sorted merge: incoming rows win on key collision.
        merged_keys = np.union1d(self._cache_keys, keys)
        rows = []
        for key in merged_keys:
            pos = np.searchsorted(keys, key)
            if pos < len(keys) and keys[pos] == key:
                s, e = indptr[pos], indptr[pos + 1]
                rows.append((tuple(a[s:e] for a in new_arrays),
                             float(src_wdeg[pos])))
            else:
                pos = np.searchsorted(self._cache_keys, key)
                s, e = self._cache_indptr[pos], self._cache_indptr[pos + 1]
                rows.append((tuple(a[s:e] for a in self._cache_arrays),
                             float(self._cache_src_wdeg[pos])))
        counts = np.fromiter((len(r[0][0]) for r in rows), dtype=np.int64,
                             count=len(rows))
        m_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=m_indptr[1:])
        m_arrays = tuple(
            # repro: allow=REP011 cache-merge rebuild copies by design
            np.concatenate([r[0][i] for r in rows]) if rows
            else np.empty(0, dtype=a.dtype)
            for i, a in enumerate(new_arrays))
        m_src = np.array([r[1] for r in rows], dtype=np.float64)
        self.install_halo_cache(merged_keys, m_indptr, m_arrays, m_src)
        return int(len(keys))

    # -- diagnostics -----------------------------------------------------------
    def describe(self) -> dict:
        """Summary stats used by preprocessing reports."""
        return {
            "shard_id": self.shard_id,
            "n_core": self.n_core,
            "n_halo": int(len(self.halo_globals())),
            "n_entries": self.n_entries,
            "memory_mb": self.memory_nbytes() / 1e6,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GraphShard(id={self.shard_id}/{self.n_shards}, "
            f"core={self.n_core}, entries={self.n_entries})"
        )
