"""One partition's graph data: the Graph Shard of Section 3.2.2.

Rows are the shard's *core nodes* (identified by local ID = rank within the
shard's sorted global-ID list); for every core node the shard stores its
full out-neighborhood as five parallel flat arrays:

* ``nbr_local``  — neighbor local IDs (relative to the *owner* shard),
* ``nbr_shard``  — neighbor owner shard IDs,
* ``nbr_global`` — neighbor global IDs (used by random walks / baselines),
* ``nbr_weight`` — edge weights,
* ``nbr_wdeg``   — neighbors' weighted degrees (the 1-hop halo cache: lets
  Forward Push threshold-check any touched node without a second RPC).

plus ``core_wdeg``, the core nodes' own weighted degrees.  Neighbors owned
by other shards are the shard's *halo nodes*; only their addressing and
degree metadata is cached — their adjacency stays with their owner
(Figure 3: "shards only store the data about core nodes").
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ShardError
from repro.storage.neighbor_batch import NeighborBatch, NeighborLists
from repro.storage.vertex_prop import VertexProp
from repro.utils.rng import rng_from_seed


class GraphShard:
    """Immutable storage for one graph partition (plus halo metadata)."""

    def __init__(self, shard_id: int, n_shards: int, core_global: np.ndarray,
                 indptr: np.ndarray, nbr_local: np.ndarray,
                 nbr_shard: np.ndarray, nbr_global: np.ndarray,
                 nbr_weight: np.ndarray, nbr_wdeg: np.ndarray,
                 core_wdeg: np.ndarray, *, seed=None) -> None:
        if not 0 <= shard_id < n_shards:
            raise ShardError(f"shard_id {shard_id} out of range [0, {n_shards})")
        n_core = len(core_global)
        if indptr.shape != (n_core + 1,):
            raise ShardError(
                f"indptr shape {indptr.shape} != ({n_core + 1},)"
            )
        n_entries = int(indptr[-1])
        for name, arr in (("nbr_local", nbr_local), ("nbr_shard", nbr_shard),
                          ("nbr_global", nbr_global), ("nbr_weight", nbr_weight),
                          ("nbr_wdeg", nbr_wdeg)):
            if len(arr) != n_entries:
                raise ShardError(f"{name} length {len(arr)} != {n_entries}")
        if len(core_wdeg) != n_core:
            raise ShardError("core_wdeg length mismatch")
        self.shard_id = int(shard_id)
        self.n_shards = int(n_shards)
        self.core_global = core_global
        self.indptr = indptr
        self.nbr_local = nbr_local
        self.nbr_shard = nbr_shard
        self.nbr_global = nbr_global
        self.nbr_weight = nbr_weight
        self.nbr_wdeg = nbr_wdeg
        self.core_wdeg = core_wdeg
        self._seed = seed
        self._rng = rng_from_seed(seed)
        self._rng_lock = threading.Lock()
        # Optional 2-hop halo cache (install_halo_cache): full adjacency
        # rows for this shard's 1-hop halo nodes, answerable locally.
        self._cache_keys: np.ndarray | None = None
        self._cache_indptr: np.ndarray | None = None
        self._cache_arrays: tuple | None = None
        self._cache_src_wdeg: np.ndarray | None = None

    # -- validation ---------------------------------------------------------
    @property
    def n_core(self) -> int:
        return len(self.core_global)

    @property
    def n_entries(self) -> int:
        return len(self.nbr_local)

    def halo_globals(self) -> np.ndarray:
        """Global IDs of this shard's halo nodes (remote-owned neighbors)."""
        remote = self.nbr_shard != self.shard_id
        return np.unique(self.nbr_global[remote])

    def memory_nbytes(self) -> int:
        """Bytes held by the shard's arrays (paper: ~1.5x the raw CSR).

        Includes the optional 2-hop halo cache when installed.
        """
        total = sum(arr.nbytes for arr in (
            self.core_global, self.indptr, self.nbr_local, self.nbr_shard,
            self.nbr_global, self.nbr_weight, self.nbr_wdeg, self.core_wdeg,
        ))
        if self._cache_keys is not None:
            total += (self._cache_keys.nbytes + self._cache_indptr.nbytes
                      + self._cache_src_wdeg.nbytes
                      + sum(a.nbytes for a in self._cache_arrays))
        return total

    def _check_ids(self, local_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(local_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ShardError(f"local_ids must be 1-D, got shape {ids.shape}")
        if len(ids) and (ids.min() < 0 or ids.max() >= self.n_core):
            raise ShardError(
                f"local_ids out of range for shard {self.shard_id} "
                f"(n_core={self.n_core}): [{ids.min()}, {ids.max()}]"
            )
        return ids

    # -- fetch API (the "Graph Storage" operations) --------------------------
    def get_vertex_props(self, local_ids) -> VertexProp:
        """Zero-copy local fetch: views over the shard arrays."""
        return VertexProp(self, self._check_ids(local_ids))

    def get_neighbor_batch(self, local_ids) -> NeighborBatch:
        """CSR-compressed batch response (remote fetch, *Compress* mode)."""
        ids = self._check_ids(local_ids)
        prop = VertexProp(self, ids)
        (indptr, local, shard, glob, w, wdeg, src_wdeg) = prop.to_arrays()
        return NeighborBatch(indptr, local, shard, glob, w, wdeg, src_wdeg)

    def get_neighbor_lists(self, local_ids) -> NeighborLists:
        """Uncompressed list-of-lists response (ablation: batch, no compress).

        Each per-node tuple copies its slices — mirroring the tensor-
        wrapping the paper identifies as the dominant cost of this format.
        """
        ids = self._check_ids(local_ids)
        entries = []
        for lid in ids:
            s, e = self.indptr[lid], self.indptr[lid + 1]
            entries.append((
                self.nbr_local[s:e].copy(), self.nbr_shard[s:e].copy(),
                self.nbr_global[s:e].copy(), self.nbr_weight[s:e].copy(),
                self.nbr_wdeg[s:e].copy(),
            ))
        return NeighborLists(entries, self.core_wdeg[ids].copy())

    def get_single(self, local_id: int) -> NeighborLists:
        """One-node response (ablation: no batching at all)."""
        return self.get_neighbor_lists(np.array([local_id], dtype=np.int64))

    def source_weighted_degrees(self, local_ids) -> np.ndarray:
        """Own weighted degrees of the given core nodes."""
        return self.core_wdeg[self._check_ids(local_ids)]

    def sample_one_neighbor(self, local_ids, salt: int | None = None):
        """Uniformly sample one out-neighbor per requested core node.

        Returns ``(next_local, next_global, next_shard)`` arrays, matching
        the Figure 4 random-walk interface.  Nodes with no out-neighbors
        stay in place (self-transition).

        ``salt`` makes the draw a pure function of
        ``(shard seed, salt, requested ids)`` — independent of request
        *arrival order*, which carries measured-time jitter in the
        simulator.  Callers wanting run-to-run reproducible walks pass a
        per-step salt; without one, the shard's shared stream is used.
        """
        ids = self._check_ids(local_ids)
        starts = self.indptr[ids]
        counts = self.indptr[ids + 1] - starts
        if salt is not None:
            import zlib

            digest = zlib.crc32(ids.tobytes())
            base = (int(self._seed)
                    if isinstance(self._seed, (int, np.integer)) else 0)
            rng = np.random.default_rng((base, int(salt), digest))
            offsets = rng.integers(0, np.maximum(counts, 1))
        else:
            with self._rng_lock:
                offsets = self._rng.integers(0, np.maximum(counts, 1))
        has = counts > 0
        # Clamp picks for zero-degree nodes so the gather stays in bounds;
        # their values are discarded by the np.where below.
        pick = np.minimum(starts + offsets, max(self.n_entries - 1, 0))
        next_local = np.where(has, self.nbr_local[pick], ids)
        next_global = np.where(has, self.nbr_global[pick],
                               self.core_global[ids])
        next_shard = np.where(has, self.nbr_shard[pick], self.shard_id)
        return next_local, next_global, next_shard

    # -- 2-hop halo cache ----------------------------------------------------
    # Section 3.2.1: "The higher the hop value for halo nodes, the lower
    # the communication requirements and the higher the amount of stored
    # data."  With the cache installed, this shard can answer neighbor-info
    # requests for its 1-hop halo nodes locally (so the engine only goes
    # remote for nodes 2+ hops outside the partition).

    @property
    def has_halo_cache(self) -> bool:
        return self._cache_keys is not None

    def install_halo_cache(self, cache_keys: np.ndarray,
                           cache_indptr: np.ndarray, cache_arrays: tuple,
                           cache_src_wdeg: np.ndarray) -> None:
        """Attach cached adjacency rows for halo nodes.

        ``cache_keys`` are sorted packed owner addresses
        (``local * K + shard``); ``cache_arrays`` is the
        (local, shard, global, weight, wdeg) tuple of flat arrays indexed
        by ``cache_indptr``.
        """
        if len(cache_keys) and np.any(np.diff(cache_keys) <= 0):
            raise ShardError("cache_keys must be strictly increasing")
        if cache_indptr.shape != (len(cache_keys) + 1,):
            raise ShardError("cache_indptr shape mismatch")
        if len(cache_src_wdeg) != len(cache_keys):
            raise ShardError("cache_src_wdeg length mismatch")
        self._cache_keys = cache_keys
        self._cache_indptr = cache_indptr
        self._cache_arrays = cache_arrays
        self._cache_src_wdeg = cache_src_wdeg

    def cache_covers(self, dest_shard: int, local_ids: np.ndarray) -> bool:
        """Whether every requested remote node is in the halo cache."""
        if self._cache_keys is None or len(local_ids) == 0:
            return self._cache_keys is not None and len(local_ids) == 0
        keys = (np.asarray(local_ids, dtype=np.int64) * self.n_shards
                + int(dest_shard))
        pos = np.searchsorted(self._cache_keys, keys)
        pos = np.minimum(pos, len(self._cache_keys) - 1)
        return bool(np.all(self._cache_keys[pos] == keys))

    def cache_mask(self, dest_shard: int, local_ids: np.ndarray) -> np.ndarray:
        """Per-node boolean mask of which remote nodes the halo cache holds.

        The partial-hit counterpart of :meth:`cache_covers`: the fetch
        layer uses it to serve covered rows locally and send only the
        misses over the wire.
        """
        ids = np.asarray(local_ids, dtype=np.int64)
        if self._cache_keys is None or len(self._cache_keys) == 0:
            return np.zeros(len(ids), dtype=bool)
        keys = ids * self.n_shards + int(dest_shard)
        pos = np.searchsorted(self._cache_keys, keys)
        pos = np.minimum(pos, len(self._cache_keys) - 1)
        return self._cache_keys[pos] == keys

    def get_cached_batch(self, dest_shard: int,
                         local_ids) -> NeighborBatch:
        """Serve a remote shard's nodes from the local halo cache."""
        if self._cache_keys is None:
            raise ShardError(f"shard {self.shard_id} has no halo cache")
        ids = np.asarray(local_ids, dtype=np.int64)
        keys = ids * self.n_shards + int(dest_shard)
        pos = np.searchsorted(self._cache_keys, keys)
        if len(keys):
            pos_clip = np.minimum(pos, len(self._cache_keys) - 1)
            if np.any(self._cache_keys[pos_clip] != keys):
                missing = keys[self._cache_keys[pos_clip] != keys]
                raise ShardError(
                    f"halo cache miss for {len(missing)} nodes of shard "
                    f"{dest_shard} (first key {missing[0]})"
                )
            pos = pos_clip
        starts = self._cache_indptr[pos]
        counts = self._cache_indptr[pos + 1] - starts
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        idx = np.repeat(starts - indptr[:-1], counts) + np.arange(total)
        local, shard, glob, w, wdeg = self._cache_arrays
        return NeighborBatch(indptr, local[idx], shard[idx], glob[idx],
                             w[idx], wdeg[idx], self._cache_src_wdeg[pos])

    # -- diagnostics -----------------------------------------------------------
    def describe(self) -> dict:
        """Summary stats used by preprocessing reports."""
        return {
            "shard_id": self.shard_id,
            "n_core": self.n_core,
            "n_halo": int(len(self.halo_globals())),
            "n_entries": self.n_entries,
            "memory_mb": self.memory_nbytes() / 1e6,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GraphShard(id={self.shard_id}/{self.n_shards}, "
            f"core={self.n_core}, entries={self.n_entries})"
        )
