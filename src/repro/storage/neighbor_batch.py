"""Wire formats for neighbor-information responses.

Two formats carry the same information — for each requested core node, its
neighbors' (local ID, shard ID, global ID, edge weight, weighted degree)
plus the node's own weighted degree:

* :class:`NeighborBatch` — CSR-compressed: one ``indptr`` plus flat
  concatenated arrays.  A response is **7 tensors total** regardless of
  batch size.  This is the paper's *Compress* optimization.
* :class:`NeighborLists` — list-of-lists: per requested node, a tuple of
  small arrays.  A response is **5 tensors per node**, which is exactly the
  TensorPipe-hostile pattern the paper measures as ~5x slower to transfer
  (Table 3, +Compress row).

Both expose ``to_arrays()`` so the push operator consumes either
uniformly; conversion cost for the uncompressed format lands on the
consumer, as it does in the real system.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass

import numpy as np

from repro.errors import ShardError


@dataclass
class NeighborBatch:
    """CSR-compressed neighbor info for a batch of core nodes.

    Internal constructions (``take_rows``, ``merge``, the shard read
    path) pass ``check=False``: their shapes are correct by
    construction, and the arrays may be read-only views into the
    owning shard's CSC arena rather than private copies.
    """

    indptr: np.ndarray        # (n+1,) extents into the flat arrays
    local_ids: np.ndarray     # neighbor local IDs (owner-relative)
    shard_ids: np.ndarray     # neighbor owner shard IDs
    global_ids: np.ndarray    # neighbor global IDs
    weights: np.ndarray       # edge weights
    weighted_degrees: np.ndarray  # neighbors' weighted degrees (halo cache)
    source_wdeg: np.ndarray   # (n,) requested nodes' own weighted degrees
    check: InitVar[bool] = True

    def __post_init__(self, check: bool = True) -> None:
        if not check:  # trusted internal construction
            return
        n_entries = len(self.local_ids)
        if self.indptr[0] != 0 or self.indptr[-1] != n_entries:
            raise ShardError("NeighborBatch indptr does not span its arrays")
        for name in ("shard_ids", "global_ids", "weights", "weighted_degrees"):
            if len(getattr(self, name)) != n_entries:
                raise ShardError(f"NeighborBatch field {name} length mismatch")
        if len(self.source_wdeg) != len(self.indptr) - 1:
            raise ShardError("NeighborBatch source_wdeg length mismatch")

    @property
    def n_sources(self) -> int:
        return len(self.indptr) - 1

    @property
    def n_entries(self) -> int:
        return len(self.local_ids)

    def to_arrays(self):
        """Uniform consumption API: ``(indptr, local, shard, global, w, wdeg, src_wdeg)``."""
        return (self.indptr, self.local_ids, self.shard_ids, self.global_ids,
                self.weights, self.weighted_degrees, self.source_wdeg)

    def rpc_payload(self) -> tuple[int, int]:
        """7 tensors regardless of batch size — the compression win."""
        nbytes = (
            self.indptr.nbytes + self.local_ids.nbytes + self.shard_ids.nbytes
            + self.global_ids.nbytes + self.weights.nbytes
            + self.weighted_degrees.nbytes + self.source_wdeg.nbytes
        )
        return nbytes, 7

    def rpc_tensors(self):
        """The tensors a serialized response would carry (buffer-pool hook)."""
        return (self.indptr, self.local_ids, self.shard_ids, self.global_ids,
                self.weights, self.weighted_degrees, self.source_wdeg)

    def materialize(self) -> "NeighborBatch":
        """Copy-on-serialize: a batch backed by private, writable arrays.

        View-backed batches alias the shard's read-only CSC arena; the RPC
        boundary (and any consumer that wants ownership) calls this to
        detach.  Values are bitwise identical.
        """
        # repro: allow=REP011 copy-on-serialize is the one sanctioned copy point
        copies = tuple(a.copy() for a in self.rpc_tensors())
        return NeighborBatch(*copies, check=False)

    def take_rows(self, rows: np.ndarray) -> "NeighborBatch":
        """A new batch holding the given source rows, in the given order.

        Used by the fetch layer to extract a subset of an in-flight
        response (single-flight coalescing): row values are slices of the
        owner's arrays, so they are bitwise identical to a direct fetch.
        """
        rows = np.asarray(rows, dtype=np.int64)
        n = len(rows)
        if n and rows[0] + n - 1 == rows[-1] and np.all(np.diff(rows) == 1):
            # contiguous ascending run: pure slices, no gather
            r0 = int(rows[0])
            s0 = int(self.indptr[r0])
            e_last = int(self.indptr[r0 + n])
            return NeighborBatch(
                self.indptr[r0:r0 + n + 1] - s0,
                self.local_ids[s0:e_last], self.shard_ids[s0:e_last],
                self.global_ids[s0:e_last], self.weights[s0:e_last],
                self.weighted_degrees[s0:e_last], self.source_wdeg[r0:r0 + n],
                check=False,
            )
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        # repro: allow=REP011 non-contiguous rows need a gather by definition
        idx = np.repeat(starts - indptr[:-1], counts) + np.arange(total)
        return NeighborBatch(
            indptr, self.local_ids[idx], self.shard_ids[idx],
            self.global_ids[idx], self.weights[idx],
            self.weighted_degrees[idx], self.source_wdeg[rows],
            check=False,
        )

    @classmethod
    def merge(cls, n_sources: int,
              parts: list[tuple[np.ndarray, "NeighborBatch"]]
              ) -> "NeighborBatch":
        """Reassemble per-part batches into one batch in request order.

        ``parts`` is a list of ``(positions, batch)`` pairs where
        ``positions`` are row indices into the original request; together
        they must cover ``0..n_sources-1`` exactly once.  The scatter is
        fully vectorized (one ``np.repeat`` gather per part), and the
        output rows are the parts' rows verbatim — a merged response is
        bitwise identical to the response a single unsplit fetch would
        have produced.
        """
        counts = np.zeros(n_sources, dtype=np.int64)
        seen = np.zeros(n_sources, dtype=bool)
        for pos, batch in parts:
            if batch.n_sources != len(pos):
                raise ShardError(
                    f"merge part covers {len(pos)} positions but holds "
                    f"{batch.n_sources} rows"
                )
            if np.any(seen[pos]):
                raise ShardError("merge parts overlap in positions")
            seen[pos] = True
            counts[pos] = np.diff(batch.indptr)
        if not np.all(seen):
            raise ShardError(
                f"merge parts cover {int(np.count_nonzero(seen))} of "
                f"{n_sources} positions"
            )
        indptr = np.zeros(n_sources + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        local = np.empty(total, dtype=np.int64)
        shard = np.empty(total, dtype=np.int64)
        glob = np.empty(total, dtype=np.int64)
        w = np.empty(total, dtype=np.float64)
        wdeg = np.empty(total, dtype=np.float64)
        src_wdeg = np.empty(n_sources, dtype=np.float64)
        for pos, batch in parts:
            part_counts = np.diff(batch.indptr)
            part_total = int(batch.indptr[-1])
            # repro: allow=REP011 scatter into the merged arena is a copy by definition
            idx = (np.repeat(indptr[pos] - batch.indptr[:-1], part_counts)
                   + np.arange(part_total))
            local[idx] = batch.local_ids
            shard[idx] = batch.shard_ids
            glob[idx] = batch.global_ids
            w[idx] = batch.weights
            wdeg[idx] = batch.weighted_degrees
            src_wdeg[pos] = batch.source_wdeg
        return cls(indptr, local, shard, glob, w, wdeg, src_wdeg, check=False)


class NeighborLists:
    """Uncompressed list-of-lists response (ablation baseline)."""

    __slots__ = ("entries", "source_wdeg")

    def __init__(self, entries: list[tuple], source_wdeg: np.ndarray) -> None:
        #: per requested node: (local_ids, shard_ids, global_ids, weights, wdeg)
        self.entries = entries
        self.source_wdeg = np.asarray(source_wdeg, dtype=np.float64)
        if len(entries) != len(self.source_wdeg):
            raise ShardError("NeighborLists source_wdeg length mismatch")

    @property
    def n_sources(self) -> int:
        return len(self.entries)

    @property
    def n_entries(self) -> int:
        return sum(len(e[0]) for e in self.entries)

    def to_arrays(self):
        """Concatenate on the consumer side (costs interpreter time there)."""
        counts = np.fromiter((len(e[0]) for e in self.entries),
                             dtype=np.int64, count=len(self.entries))
        indptr = np.zeros(len(self.entries) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if self.entries:
            # repro: allow=REP011 uncompressed ablation pays the copy on purpose
            local = np.concatenate([e[0] for e in self.entries])
            shard = np.concatenate([e[1] for e in self.entries])  # repro: allow=REP011
            glob = np.concatenate([e[2] for e in self.entries])  # repro: allow=REP011
            w = np.concatenate([e[3] for e in self.entries])  # repro: allow=REP011
            wdeg = np.concatenate([e[4] for e in self.entries])  # repro: allow=REP011
        else:
            local = shard = glob = np.zeros(0, dtype=np.int64)
            w = wdeg = np.zeros(0, dtype=np.float64)
        return indptr, local, shard, glob, w, wdeg, self.source_wdeg

    def rpc_payload(self) -> tuple[int, int]:
        """5 tensors *per requested node* — the TensorPipe-hostile shape."""
        nbytes = self.source_wdeg.nbytes
        n_tensors = 1
        for entry in self.entries:
            for arr in entry:
                nbytes += arr.nbytes
                n_tensors += 1
        return nbytes, n_tensors

    def rpc_tensors(self):
        """Every per-node tensor a transfer would wrap (buffer-pool hook)."""
        yield self.source_wdeg
        for entry in self.entries:
            yield from entry
