"""Structured benchmark reports, baselines, and regression detection.

The benchmark suite under ``benchmarks/`` reproduces every table and figure
of the paper, but a free-text table cannot be *gated*: nothing fails when a
change silently halves Table 2 throughput or flips the Table 3 ablation
ordering.  This module makes benchmark telemetry a first-class subsystem:

* :class:`BenchReport` — one bench's machine-readable result: typed per-row
  records, the run's scale and environment fingerprint, a virtual-time vs
  wall-clock field split, an optional embedded metrics snapshot, and the
  bench's *declarative expectations* (the shape claims the paper makes);
* **expectations** — a small declarative language (``cmp`` / ``per_row`` /
  ``monotone`` / ``bounds`` / ``all_true`` / ``ratio``) evaluated against
  the report's own rows, replacing imperative ``assert`` blocks so the same
  claims can be re-checked from the JSON long after the run;
* **trajectory files** (``BENCH_<scale>.json``) — the per-scale aggregate of
  every bench's numeric records, the unit the baseline store diffs;
* **comparator** — deterministic fields (dispatch counts, modeled network
  seconds, push/iteration counters: everything seeded) compare exactly;
  wall-clock-derived fields compare under a relative tolerance with a
  declared improvement direction, supporting best-of-N rep merging;
* **linter** — cross-checks each ``results/<name>.txt`` table against its
  ``.json`` sibling (row counts, headline values) so the human-readable and
  machine-readable artifacts cannot drift apart.

``repro.cli bench run|report|diff|check|lint`` is the operational surface;
``benchmarks/common.py`` is the producer.  See ``docs/benchmarking.md``.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.utils.timer import wall_unix

REPORT_SCHEMA = "repro.bench-report/v1"
TRAJECTORY_SCHEMA = "repro.bench-trajectory/v1"

BENCH_SCALES = ("tiny", "small", "full")

#: relative tolerance for "exact" float comparison — deterministic fields
#: are seeded, but BLAS reductions may differ in the last bits across hosts
DET_RTOL = 1e-6
DET_ATOL = 1e-9

#: injectable clock for report/trajectory timestamps.  Defaults to the
#: sanctioned wall_unix shim; tests pin it (set_wall_clock) to make
#: created_unix deterministic.
_wall_clock = wall_unix


def set_wall_clock(clock=None):
    """Override the timestamp clock; ``None`` restores :func:`wall_unix`."""
    global _wall_clock
    _wall_clock = clock if clock is not None else wall_unix
    return _wall_clock


_CMP_OPS = ("gt", "ge", "lt", "le", "eq", "ne")
_AGGS = ("only", "first", "last", "min", "max", "mean", "sum")
_KINDS = ("cmp", "per_row", "monotone", "bounds", "all_true", "ratio")
_WHERE_OPS = ("eq", "ne", "gt", "ge", "lt", "le", "in")


# ---------------------------------------------------------------------------
# environment fingerprint
# ---------------------------------------------------------------------------

def git_revision(cwd: str | Path | None = None) -> str | None:
    """Short git revision of ``cwd`` (or this package's repo); None if n/a."""
    if cwd is None:
        cwd = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=str(cwd),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def env_fingerprint() -> dict:
    """What this host looks like — recorded so baselines are attributable."""
    import numpy as np
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


# ---------------------------------------------------------------------------
# the report
# ---------------------------------------------------------------------------

@dataclass
class BenchReport:
    """One bench's structured result.

    ``rows`` are typed records: every value is a number, bool, or string
    (strings are display-only — they never enter comparisons).  ``key``
    names the columns whose values identify a row (e.g. ``("Dataset",
    "Machines")``); ``deterministic`` names the columns (and ``extra``
    entries) that are seeded/modeled and therefore compared exactly by the
    regression gate, every other numeric column is wall-clock-derived and
    compared under tolerance.  ``higher_is_better`` / ``lower_is_better``
    give wall columns a regression direction (and pick the best-of-N rep).
    """

    name: str
    title: str
    scale: str
    rows: list[dict]
    key: tuple[str, ...]
    deterministic: tuple[str, ...] = ()
    higher_is_better: tuple[str, ...] = ()
    lower_is_better: tuple[str, ...] = ()
    expectations: list[dict] = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    metrics: dict | None = None
    #: wall-clock seconds the bench body took, and the summed virtual
    #: seconds its engine runs simulated — the report-level time split
    wall_s: float | None = None
    virtual_s: float | None = None
    git_rev: str | None = None
    env: dict = field(default_factory=dict)
    created_unix: float = 0.0
    reps: int = 1

    def __post_init__(self) -> None:
        self.key = tuple(self.key)
        self.deterministic = tuple(self.deterministic)
        self.higher_is_better = tuple(self.higher_is_better)
        self.lower_is_better = tuple(self.lower_is_better)
        if not self.env:
            self.env = env_fingerprint()
        if self.git_rev is None:
            self.git_rev = git_revision()
        if not self.created_unix:
            self.created_unix = _wall_clock()

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "name": self.name,
            "title": self.title,
            "scale": self.scale,
            "git_rev": self.git_rev,
            "created_unix": self.created_unix,
            "env": self.env,
            "key": list(self.key),
            "deterministic": list(self.deterministic),
            "higher_is_better": list(self.higher_is_better),
            "lower_is_better": list(self.lower_is_better),
            "rows": self.rows,
            "extra": self.extra,
            "expectations": self.expectations,
            "metrics": self.metrics,
            "timing": {"wall_s": self.wall_s, "virtual_s": self.virtual_s},
            "reps": self.reps,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "BenchReport":
        errors = validate_report(d)
        if errors:
            raise ValueError(
                f"invalid bench report {d.get('name')!r}: " + "; ".join(errors)
            )
        timing = d.get("timing") or {}
        return cls(
            name=d["name"], title=d.get("title", d["name"]),
            scale=d["scale"], rows=[dict(r) for r in d["rows"]],
            key=tuple(d["key"]),
            deterministic=tuple(d.get("deterministic", ())),
            higher_is_better=tuple(d.get("higher_is_better", ())),
            lower_is_better=tuple(d.get("lower_is_better", ())),
            expectations=list(d.get("expectations", ())),
            extra=dict(d.get("extra", {})),
            metrics=d.get("metrics"),
            wall_s=timing.get("wall_s"), virtual_s=timing.get("virtual_s"),
            git_rev=d.get("git_rev"), env=dict(d.get("env", {})),
            created_unix=d.get("created_unix", 0.0),
            reps=d.get("reps", 1),
        )

    def row_key(self, row: Mapping) -> str:
        return "|".join(str(row[k]) for k in self.key)

    def numeric_records(self) -> dict[str, dict]:
        """Row-key -> {column: numeric value} for every comparable field."""
        out: dict[str, dict] = {}
        for row in self.rows:
            rec = {k: v for k, v in row.items()
                   if k not in self.key and _is_numeric(v)}
            out[self.row_key(row)] = rec
        return out


def _is_numeric(v) -> bool:
    return isinstance(v, (int, float, bool)) and not isinstance(v, str) \
        and (not isinstance(v, float) or math.isfinite(v))


def validate_report(d: Mapping) -> list[str]:
    """Structural schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(d, Mapping):
        return ["report is not a mapping"]
    if d.get("schema") != REPORT_SCHEMA:
        errors.append(f"schema must be {REPORT_SCHEMA!r}, got {d.get('schema')!r}")
    for f in ("name", "scale", "rows", "key"):
        if f not in d:
            errors.append(f"missing required field {f!r}")
    if errors:
        return errors
    if d["scale"] not in BENCH_SCALES:
        errors.append(f"scale must be one of {BENCH_SCALES}, got {d['scale']!r}")
    rows = d["rows"]
    if not isinstance(rows, list) or not rows:
        errors.append("rows must be a non-empty list")
        return errors
    columns = set(rows[0].keys()) if isinstance(rows[0], Mapping) else set()
    seen_keys = set()
    for i, row in enumerate(rows):
        if not isinstance(row, Mapping):
            errors.append(f"row {i} is not a mapping")
            continue
        for k in d["key"]:
            if k not in row:
                errors.append(f"row {i} missing key column {k!r}")
        for col, v in row.items():
            if isinstance(v, float) and not math.isfinite(v):
                errors.append(f"row {i} column {col!r} is non-finite")
        rk = "|".join(str(row.get(k)) for k in d["key"])
        if rk in seen_keys:
            errors.append(f"duplicate row key {rk!r}")
        seen_keys.add(rk)
    for col in d.get("deterministic", ()):
        if col not in columns and col not in d.get("extra", {}):
            errors.append(f"deterministic column {col!r} not in rows or extra")
    for exp in d.get("expectations", ()):
        if not isinstance(exp, Mapping) or exp.get("kind") not in _KINDS:
            errors.append(f"bad expectation {exp!r}")
    metrics = d.get("metrics")
    if metrics is not None and not isinstance(metrics, Mapping):
        errors.append("metrics must be a mapping or null")
    return errors


def write_report(path: str | Path, report: BenchReport) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_dict(), indent=1, sort_keys=False)
                    + "\n")
    return path


def load_report(path: str | Path) -> dict:
    d = json.loads(Path(path).read_text())
    errors = validate_report(d)
    if errors:
        raise ValueError(f"{path}: " + "; ".join(errors))
    return d


def load_reports(results_dir: str | Path) -> list[dict]:
    """Every schema-valid report under ``results_dir`` (sorted by name)."""
    out = []
    for p in sorted(Path(results_dir).glob("*.json")):
        out.append(load_report(p))
    return out


# ---------------------------------------------------------------------------
# expectations
# ---------------------------------------------------------------------------

def _match_where(row: Mapping, where: Mapping | None) -> bool:
    if not where:
        return True
    for col, cond in where.items():
        v = row.get(col)
        if isinstance(cond, Mapping):
            for op, ref in cond.items():
                if op not in _WHERE_OPS:
                    raise ValueError(f"unknown where op {op!r}")
                if op == "eq" and not v == ref:
                    return False
                if op == "ne" and not v != ref:
                    return False
                if op == "gt" and not v > ref:
                    return False
                if op == "ge" and not v >= ref:
                    return False
                if op == "lt" and not v < ref:
                    return False
                if op == "le" and not v <= ref:
                    return False
                if op == "in" and v not in ref:
                    return False
        elif v != cond:
            return False
    return True


def _select(rows: list[dict], where: Mapping | None) -> list[dict]:
    return [r for r in rows if _match_where(r, where)]


def _resolve(spec, rows: list[dict], extra: Mapping) -> float:
    """A value spec -> float: a literal, an ``extra`` ref, or a column agg."""
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        return float(spec)
    if not isinstance(spec, Mapping):
        raise ValueError(f"bad value spec {spec!r}")
    if "extra" in spec:
        if spec["extra"] not in extra:
            raise ValueError(f"extra value {spec['extra']!r} not in report")
        return float(extra[spec["extra"]])
    col = spec["col"]
    sel = _select(rows, spec.get("where"))
    if not sel:
        raise ValueError(f"no rows match where={spec.get('where')!r}")
    order_col = spec.get("order_col")
    if order_col:
        sel = sorted(sel, key=lambda r: r[order_col])
    vals = [float(r[col]) for r in sel]
    agg = spec.get("agg", "only")
    if agg not in _AGGS:
        raise ValueError(f"unknown agg {agg!r}")
    if agg == "only":
        if len(vals) != 1:
            raise ValueError(
                f"agg 'only' on col {col!r} matched {len(vals)} rows"
            )
        return vals[0]
    if agg == "first":
        return vals[0]
    if agg == "last":
        return vals[-1]
    if agg == "min":
        return min(vals)
    if agg == "max":
        return max(vals)
    if agg == "mean":
        return sum(vals) / len(vals)
    return sum(vals)


def _apply_op(left: float, op: str, right: float) -> bool:
    if op == "gt":
        return left > right
    if op == "ge":
        return left >= right
    if op == "lt":
        return left < right
    if op == "le":
        return left <= right
    if op == "eq":
        return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-12)
    if op == "ne":
        return not math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-12)
    raise ValueError(f"unknown op {op!r}")


def _exp_label(exp: Mapping) -> str:
    return exp.get("label") or exp["kind"]


def _check_one(exp: Mapping, rows: list[dict], extra: Mapping) -> str | None:
    """Evaluate one expectation; returns a failure message or None."""
    kind = exp["kind"]
    factor = float(exp.get("factor", 1.0))
    offset = float(exp.get("offset", 0.0))
    if kind == "cmp":
        left = _resolve(exp["left"], rows, extra)
        right = _resolve(exp["right"], rows, extra)
        if not _apply_op(left, exp["op"], factor * right + offset):
            return (f"{_exp_label(exp)}: {left:.6g} !{exp['op']} "
                    f"{factor:.6g}*{right:.6g}+{offset:.6g}")
        return None
    if kind == "per_row":
        sel = _select(rows, exp.get("where"))
        if not sel:
            return f"{_exp_label(exp)}: no rows match {exp.get('where')!r}"
        for row in sel:
            left = float(row[exp["left_col"]])
            right = (float(row[exp["right_col"]]) if "right_col" in exp
                     else float(exp["right"]))
            if not _apply_op(left, exp["op"], factor * right + offset):
                return (f"{_exp_label(exp)}: row "
                        f"{ {k: row[k] for k in exp.get('show', ())} or row}"
                        f" has {exp['left_col']}={left:.6g} !{exp['op']} "
                        f"{factor:.6g}*{right:.6g}+{offset:.6g}")
        return None
    if kind == "monotone":
        groups: dict[object, list[dict]] = {}
        for row in _select(rows, exp.get("where")):
            groups.setdefault(row.get(exp.get("group_by")), []).append(row)
        strict = bool(exp.get("strict", True))
        increasing = exp.get("direction", "increasing") == "increasing"
        for gname, grows in groups.items():
            if exp.get("order_col"):
                grows = sorted(grows, key=lambda r: r[exp["order_col"]])
            vals = [float(r[exp["col"]]) for r in grows]
            for a, b in zip(vals, vals[1:]):
                ok = (b > a if strict else b >= a) if increasing \
                    else (b < a if strict else b <= a)
                if not ok:
                    where = f" in group {gname!r}" if exp.get("group_by") else ""
                    return (f"{_exp_label(exp)}: {exp['col']} not "
                            f"{exp.get('direction', 'increasing')}{where}: "
                            f"{vals}")
        return None
    if kind == "bounds":
        for row in _select(rows, exp.get("where")):
            v = float(row[exp["col"]])
            if "lo" in exp and v < float(exp["lo"]):
                return (f"{_exp_label(exp)}: {exp['col']}={v:.6g} < "
                        f"lo={exp['lo']:.6g}")
            if "hi" in exp and v > float(exp["hi"]):
                return (f"{_exp_label(exp)}: {exp['col']}={v:.6g} > "
                        f"hi={exp['hi']:.6g}")
        return None
    if kind == "all_true":
        for row in _select(rows, exp.get("where")):
            if not row[exp["col"]]:
                return f"{_exp_label(exp)}: {exp['col']} falsy in {row!r}"
        return None
    if kind == "ratio":
        lnum = _resolve(exp["left"][0], rows, extra)
        lden = _resolve(exp["left"][1], rows, extra)
        right = exp["right"]
        if isinstance(right, (int, float)):
            rval = float(right)
        else:
            rval = (_resolve(right[0], rows, extra)
                    / _resolve(right[1], rows, extra))
        lval = lnum / lden if lden else math.inf
        if not _apply_op(lval, exp["op"], factor * rval + offset):
            return (f"{_exp_label(exp)}: ratio {lval:.6g} !{exp['op']} "
                    f"{factor:.6g}*{rval:.6g}+{offset:.6g}")
        return None
    raise ValueError(f"unknown expectation kind {kind!r}")


def expectation_applies(exp: Mapping, scale: str) -> bool:
    scales = exp.get("scales", ["full"])
    return scales == "all" or scale in scales


def evaluate_expectations(report: Mapping,
                          scale: str | None = None) -> list[str]:
    """Failure messages for every expectation active at ``scale``.

    ``scale`` defaults to the report's own recorded scale, so a saved JSON
    re-checks exactly the claims its run was gated on.
    """
    scale = scale or report["scale"]
    rows = [dict(r) for r in report["rows"]]
    extra = report.get("extra", {})
    failures = []
    for exp in report.get("expectations", ()):
        if not expectation_applies(exp, scale):
            continue
        try:
            msg = _check_one(exp, rows, extra)
        except (KeyError, ValueError, TypeError) as e:
            msg = f"{_exp_label(exp)}: unevaluable ({e})"
        if msg:
            failures.append(f"{report['name']}: {msg}")
    return failures


# ---------------------------------------------------------------------------
# trajectories (the baseline unit)
# ---------------------------------------------------------------------------

def build_trajectory(reports: Iterable[Mapping], scale: str) -> dict:
    """Aggregate per-bench reports into one ``BENCH_<scale>`` trajectory."""
    benches = {}
    for d in sorted(reports, key=lambda r: r["name"]):
        if d["scale"] != scale:
            continue
        rep = BenchReport.from_dict(d)
        benches[rep.name] = {
            "title": rep.title,
            "key": list(rep.key),
            "n_rows": len(rep.rows),
            "deterministic": list(rep.deterministic),
            "higher_is_better": list(rep.higher_is_better),
            "lower_is_better": list(rep.lower_is_better),
            "records": rep.numeric_records(),
            "extra": {k: v for k, v in rep.extra.items() if _is_numeric(v)},
        }
    return {
        "schema": TRAJECTORY_SCHEMA,
        "scale": scale,
        "git_rev": git_revision(),
        "created_unix": _wall_clock(),
        "env": env_fingerprint(),
        "benches": benches,
    }


def load_trajectory(path: str | Path) -> dict:
    d = json.loads(Path(path).read_text())
    if d.get("schema") != TRAJECTORY_SCHEMA:
        raise ValueError(
            f"{path}: schema must be {TRAJECTORY_SCHEMA!r}, "
            f"got {d.get('schema')!r}"
        )
    return d


def write_trajectory(path: str | Path, trajectory: dict) -> Path:
    path = Path(path)
    path.write_text(json.dumps(trajectory, indent=1) + "\n")
    return path


def merge_reports(reps: list[Mapping]) -> dict:
    """Best-of-N merge of repeated runs of one bench.

    Deterministic fields must agree across reps (a mismatch means the run
    is *not* deterministic — that is itself a bug and raises).  Wall-clock
    fields take the best value per the declared direction (max when higher
    is better, min when lower is better, mean otherwise).
    """
    if not reps:
        raise ValueError("no reports to merge")
    base = BenchReport.from_dict(reps[0])
    if len(reps) == 1:
        return dict(reps[0])
    merged_rows = [dict(r) for r in base.rows]
    keys = [base.row_key(r) for r in merged_rows]
    per_key = {k: [r] for k, r in zip(keys, merged_rows)}
    for other_d in reps[1:]:
        other = BenchReport.from_dict(other_d)
        if other.name != base.name:
            raise ValueError(
                f"cannot merge {other.name!r} into {base.name!r}"
            )
        for row in other.rows:
            rk = other.row_key(row)
            if rk not in per_key:
                raise ValueError(f"{base.name}: rep row {rk!r} not in base")
            per_key[rk].append(dict(row))
    for rk, variants in per_key.items():
        out = variants[0]
        for col, v in list(out.items()):
            if col in base.key or not _is_numeric(v):
                continue
            vals = [float(var[col]) for var in variants]
            if col in base.deterministic:
                for other_v in vals[1:]:
                    if not math.isclose(vals[0], other_v,
                                        rel_tol=DET_RTOL, abs_tol=DET_ATOL):
                        raise ValueError(
                            f"{base.name}: deterministic field {rk}.{col} "
                            f"differs across reps: {vals}"
                        )
                continue
            if col in base.higher_is_better:
                out[col] = max(vals)
            elif col in base.lower_is_better:
                out[col] = min(vals)
            else:
                out[col] = sum(vals) / len(vals)
    merged = base.to_dict()
    merged["rows"] = [per_key[k][0] for k in keys]
    merged["reps"] = sum(d.get("reps", 1) for d in reps)
    return merged


# ---------------------------------------------------------------------------
# comparator
# ---------------------------------------------------------------------------

@dataclass
class Delta:
    """One compared field: where it lives, what changed, and whether it
    counts as a regression under the active policy."""

    bench: str
    field: str
    kind: str                 # "deterministic" | "wall" | "structure"
    base: object
    cur: object
    regressed: bool
    note: str = ""

    @property
    def rel_change(self) -> float | None:
        try:
            b, c = float(self.base), float(self.cur)
        except (TypeError, ValueError):
            return None
        if b == 0:
            return None if c == 0 else math.inf
        return (c - b) / abs(b)

    def describe(self) -> str:
        rel = self.rel_change
        pct = "" if rel is None or not math.isfinite(rel) \
            else f" ({rel:+.1%})"
        mark = "!" if self.regressed else " "
        return (f"{mark} {self.bench}.{self.field} [{self.kind}]: "
                f"{self.base} -> {self.cur}{pct}"
                + (f"  {self.note}" if self.note else ""))


def compare_trajectories(base: Mapping, cur: Mapping, *,
                         wall_rtol: float | None = None) -> list[Delta]:
    """Field-by-field comparison of two trajectory files.

    Deterministic fields compare exactly (ints/bools) or at ``DET_RTOL``
    (floats); a mismatch is a regression.  Wall-clock fields are skipped
    unless ``wall_rtol`` is given, in which case a change beyond the
    tolerance — in the *worse* direction when the column declares one —
    is a regression.  Structural drift (missing bench, row-count change,
    missing field) always regresses.
    """
    deltas: list[Delta] = []
    base_benches = base.get("benches", {})
    cur_benches = cur.get("benches", {})
    for name, b in sorted(base_benches.items()):
        c = cur_benches.get(name)
        if c is None:
            deltas.append(Delta(name, "<bench>", "structure", "present",
                                "missing", True, "bench disappeared"))
            continue
        if b.get("n_rows") != c.get("n_rows"):
            deltas.append(Delta(name, "n_rows", "structure",
                                b.get("n_rows"), c.get("n_rows"), True,
                                "row count changed"))
        det = set(b.get("deterministic", ()))
        hib = set(b.get("higher_is_better", ()))
        lib = set(b.get("lower_is_better", ()))
        pairs = [(rk, col, rec.get(col), None)
                 for rk, rec in sorted(b.get("records", {}).items())
                 for col in rec]
        pairs += [("<extra>", k, v, None)
                  for k, v in sorted(b.get("extra", {}).items())]
        for rk, col, bval, _ in pairs:
            if rk == "<extra>":
                cval = c.get("extra", {}).get(col)
                fieldname = f"extra.{col}"
            else:
                cval = c.get("records", {}).get(rk, {}).get(col)
                fieldname = f"{rk}.{col}"
            if cval is None:
                deltas.append(Delta(name, fieldname, "structure", bval,
                                    "missing", True, "field disappeared"))
                continue
            if col in det:
                if isinstance(bval, bool) or isinstance(cval, bool) \
                        or (isinstance(bval, int) and isinstance(cval, int)):
                    same = bval == cval
                else:
                    same = math.isclose(float(bval), float(cval),
                                        rel_tol=DET_RTOL, abs_tol=DET_ATOL)
                if not same:
                    deltas.append(Delta(name, fieldname, "deterministic",
                                        bval, cval, True,
                                        "deterministic field changed"))
                elif bval != cval:
                    deltas.append(Delta(name, fieldname, "deterministic",
                                        bval, cval, False, "within DET_RTOL"))
                continue
            # wall-clock-derived field
            if wall_rtol is None:
                continue
            try:
                bf, cf = float(bval), float(cval)
            except (TypeError, ValueError):
                continue
            lo = bf - wall_rtol * abs(bf)
            hi = bf + wall_rtol * abs(bf)
            if col in hib:
                bad = cf < lo
                note = "throughput-like value fell" if bad else ""
            elif col in lib:
                bad = cf > hi
                note = "time-like value rose" if bad else ""
            else:
                bad = not (lo <= cf <= hi)
                note = "wall value drifted" if bad else ""
            if bad or cf != bf:
                deltas.append(Delta(name, fieldname, "wall", bval, cval,
                                    bad, note))
    for name in sorted(set(cur_benches) - set(base_benches)):
        deltas.append(Delta(name, "<bench>", "structure", "missing",
                            "present", False, "new bench (no baseline)"))
    return deltas


def regressions(deltas: Iterable[Delta]) -> list[Delta]:
    return [d for d in deltas if d.regressed]


def render_diff(base: Mapping, cur: Mapping, *,
                wall_rtol: float | None = None) -> str:
    """Readable old-vs-new comparison of two trajectory files."""
    deltas = compare_trajectories(base, cur, wall_rtol=wall_rtol)
    lines = [
        f"baseline: scale={base.get('scale')} rev={base.get('git_rev')}",
        f"current:  scale={cur.get('scale')} rev={cur.get('git_rev')}",
    ]
    shown = [d for d in deltas if d.regressed or d.base != d.cur]
    if not shown:
        lines.append("no differences.")
        return "\n".join(lines)
    by_bench: dict[str, list[Delta]] = {}
    for d in shown:
        by_bench.setdefault(d.bench, []).append(d)
    n_reg = 0
    for bench, ds in sorted(by_bench.items()):
        lines.append(f"-- {bench}")
        for d in ds:
            lines.append("  " + d.describe())
            n_reg += d.regressed
    lines.append(f"{len(shown)} changed field(s), {n_reg} regression(s).")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# results linter: .txt and .json siblings must agree
# ---------------------------------------------------------------------------

def lint_results(results_dir: str | Path) -> list[str]:
    """Cross-check every report JSON against its ``.txt`` table sibling.

    Fails when the two disagree on row count or when a row's headline
    values (the key columns plus the first numeric column) are missing
    from the corresponding table line — the drift that happens when one
    artifact is regenerated and the other is stale.
    """
    results_dir = Path(results_dir)
    problems: list[str] = []
    for path in sorted(results_dir.glob("*.json")):
        try:
            d = load_report(path)
        except ValueError as e:
            problems.append(str(e))
            continue
        txt_path = path.with_suffix(".txt")
        if not txt_path.exists():
            problems.append(f"{path.name}: missing .txt sibling")
            continue
        lines = [ln for ln in txt_path.read_text().splitlines() if ln.strip()]
        # layout: "== title ==", header, dashes, then one line per row
        body = lines[3:] if len(lines) >= 3 else []
        rows = d["rows"]
        if len(body) != len(rows):
            problems.append(
                f"{path.name}: row count mismatch — json has {len(rows)} "
                f"rows, txt table has {len(body)} lines"
            )
            continue
        numeric_cols = [c for c in rows[0]
                        if c not in d["key"] and _is_numeric(rows[0][c])]
        headline = numeric_cols[:1]
        for row, line in zip(rows, body):
            for col in list(d["key"]) + headline:
                sval = str(row[col])
                if sval not in line:
                    problems.append(
                        f"{path.name}: row {d['key']}="
                        f"{[row[k] for k in d['key']]!r}: value "
                        f"{col}={sval!r} not found in txt line {line!r}"
                    )
                    break
    return problems


# ---------------------------------------------------------------------------
# suite orchestration (used by repro.cli bench run/check)
# ---------------------------------------------------------------------------

def run_suite(benchmarks_dir: str | Path, scale: str, *,
              select: str | None = None, repo_root: str | Path | None = None,
              extra_args: tuple[str, ...] = ()) -> int:
    """Run the pytest bench suite at ``scale``; returns the exit code.

    Uses a subprocess so the child's ``REPRO_BENCH_SCALE`` (and the scale
    caches keyed on it) cannot leak into — or out of — this process.
    """
    benchmarks_dir = Path(benchmarks_dir)
    repo_root = Path(repo_root) if repo_root else benchmarks_dir.parent
    env = dict(os.environ)
    env["REPRO_BENCH_SCALE"] = scale
    src = str(repo_root / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src, str(repo_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    cmd = [sys.executable, "-m", "pytest", str(benchmarks_dir), "-q",
           "--benchmark-disable", "-o", "addopts="]
    if select:
        cmd += ["-k", select]
    cmd += list(extra_args)
    return subprocess.run(cmd, env=env, cwd=str(repo_root)).returncode
