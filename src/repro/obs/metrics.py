"""Process-safe metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` exists per engine run (created by
:class:`~repro.engine.cluster.SimCluster` or a
:class:`~repro.rpc.thread_runtime.ThreadRuntime`).  Every layer — RPC
dispatch, fault handling, drivers, the engine facade — increments the *same*
named instruments, so a run's counters are identical whether the workload
executed on the virtual-time scheduler or on real threads: the registry is
what the differential tests compare.

All instruments share one lock (``ThreadRuntime`` updates them from many OS
threads); on the single-threaded virtual-time scheduler the lock is
uncontended and costs one acquire per update.

Histograms use fixed bucket upper bounds so that merging registries and
computing percentiles is exact with respect to the bucket grid: a reported
``p99`` is the linear interpolation inside the bucket holding the rank-0.99
sample, clamped to the observed maximum.
"""

from __future__ import annotations

import bisect
import threading

#: default histogram bucket upper bounds — a 1/2/5 ladder from 1 us to 10 s,
#: sized for virtual-time latencies (seconds)
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    m * 10.0 ** e for e in range(-6, 1) for m in (1.0, 2.0, 5.0)
) + (10.0,)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative inc {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-write-wins float (e.g. a queue depth or makespan)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, v: float) -> None:
        with self._lock:
            self._value = float(v)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``buckets`` are increasing upper bounds; an observation lands in the
    first bucket whose bound is >= the value, or in the overflow bucket.
    """

    __slots__ = ("name", "buckets", "counts", "overflow", "count", "sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str, lock: threading.Lock,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or any(b <= a for a, b in zip(buckets, buckets[1:])):
            raise ValueError("buckets must be non-empty and increasing")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self._min = 0.0
        self._max = 0.0
        self._lock = lock

    def observe(self, v: float) -> None:
        v = float(v)
        with self._lock:
            idx = bisect.bisect_left(self.buckets, v)
            if idx == len(self.buckets):
                self.overflow += 1
            else:
                self.counts[idx] += 1
            if self.count == 0:
                self._min = self._max = v
            else:
                self._min = min(self._min, v)
                self._max = max(self._max, v)
            self.count += 1
            self.sum += v

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max

    def percentile(self, q: float) -> float:
        """The value at percentile ``q`` (0-100), bucket-interpolated."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, -(-int(q * self.count) // 100))  # ceil(q/100 * count)
        cum = 0
        for i, upper in enumerate(self.buckets):
            c = self.counts[i]
            cum += c
            if cum >= rank:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                frac = (rank - (cum - c)) / c
                return min(lower + frac * (upper - lower), self._max)
        return self._max  # rank falls into the overflow bucket

    def percentiles(self, q=(50, 95, 99)) -> dict[float, float]:
        return {float(p): self.percentile(p) for p in q}

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: bucket mismatch"
            )
        with self._lock:
            for i, c in enumerate(other.counts):
                self.counts[i] += c
            self.overflow += other.overflow
            if other.count:
                if self.count == 0:
                    self._min, self._max = other._min, other._max
                else:
                    self._min = min(self._min, other._min)
                    self._max = max(self._max, other._max)
            self.count += other.count
            self.sum += other.sum


class MetricsRegistry:
    """Named instruments, created lazily, updated under one shared lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._create_lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, *args):
        with self._create_lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = kind(name, self._lock, *args)
                self._instruments[name] = inst
            elif not isinstance(inst, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(inst).__name__}, "
                    f"not a {kind.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    # -- conveniences (the hot-path API) ------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set(self, name: str, v: float) -> None:
        self.gauge(name).set(v)

    def observe(self, name: str, v: float) -> None:
        self.histogram(name).observe(v)

    def get(self, name: str):
        """The instrument registered under ``name`` (KeyError if absent)."""
        return self._instruments[name]

    def counters(self) -> dict[str, int]:
        """All counter values — the differential tests' comparison unit."""
        return {n: i.value for n, i in sorted(self._instruments.items())
                if isinstance(i, Counter)}

    def snapshot(self) -> dict[str, float | int]:
        """Flat stats dict: one scalar per counter/gauge, five per histogram."""
        out: dict[str, float | int] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                out[name] = inst.value
            elif isinstance(inst, Gauge):
                out[name] = inst.value
            else:
                assert isinstance(inst, Histogram)
                out[f"{name}.count"] = inst.count
                out[f"{name}.sum"] = inst.sum
                out[f"{name}.p50"] = inst.percentile(50)
                out[f"{name}.p95"] = inst.percentile(95)
                out[f"{name}.p99"] = inst.percentile(99)
                out[f"{name}.max"] = inst.max
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (counters add, gauges overwrite,
        histograms merge bucket-wise)."""
        for name, inst in other._instruments.items():
            if isinstance(inst, Counter):
                self.counter(name).inc(inst.value)
            elif isinstance(inst, Gauge):
                self.gauge(name).set(inst.value)
            else:
                assert isinstance(inst, Histogram)
                self.histogram(name, inst.buckets).merge(inst)
