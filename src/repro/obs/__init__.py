"""``repro.obs`` — the unified observability layer.

One :class:`Obs` bundle travels with every deployment (virtual-time cluster
or thread runtime): a process-safe :class:`MetricsRegistry` that every layer
increments under the same instrument names, and an optional
:class:`SpanTracer` recording nested per-process spans with linked RPC
client/server pairs.  Exporters turn a finished run into a Chrome
``trace_event`` JSON (:func:`chrome_trace` / :func:`write_chrome_trace`), a
flat stats dict (:func:`flat_stats`), or a CLI text table
(:func:`text_table`).

The design contract the differential tests enforce: the *identical* counters
appear whether a run used the virtual-time scheduler or the real-thread
runtime, because both increment this registry at the same logical points.

See ``docs/observability.md`` for the span-name / Figure 6 phase mapping
and a ``repro.cli profile`` walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.export import chrome_trace, flat_stats, text_table, write_chrome_trace
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import Span, SpanTracer


@dataclass
class Obs:
    """One run's observability bundle: metrics always, spans when asked."""

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: SpanTracer | None = None

    @classmethod
    def create(cls, trace: bool = False) -> "Obs":
        """A fresh bundle; ``trace=True`` attaches a span tracer."""
        return cls(metrics=MetricsRegistry(),
                   tracer=SpanTracer() if trace else None)


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Obs",
    "Span",
    "SpanTracer",
    "chrome_trace",
    "flat_stats",
    "text_table",
    "write_chrome_trace",
]
