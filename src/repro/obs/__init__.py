"""``repro.obs`` — the unified observability layer.

One :class:`Obs` bundle travels with every deployment (virtual-time cluster
or thread runtime): a process-safe :class:`MetricsRegistry` that every layer
increments under the same instrument names, and an optional
:class:`SpanTracer` recording nested per-process spans with linked RPC
client/server pairs.  Exporters turn a finished run into a Chrome
``trace_event`` JSON (:func:`chrome_trace` / :func:`write_chrome_trace`), a
flat stats dict (:func:`flat_stats`), or a CLI text table
(:func:`text_table`).

The design contract the differential tests enforce: the *identical* counters
appear whether a run used the virtual-time scheduler or the real-thread
runtime, because both increment this registry at the same logical points.

:mod:`repro.obs.bench` builds on this layer: structured
:class:`BenchReport` documents with embedded metrics snapshots, trajectory
aggregation, baseline comparison and the ``repro.cli bench`` regression
gate.  :mod:`repro.obs.analysis` adds trace analytics on top: causal
critical paths over the span DAG, deterministic telemetry
:class:`Timeline` series, and the :func:`diagnose` reports behind
``repro.cli doctor``.  See ``docs/observability.md`` for the span-name /
Figure 6 phase mapping and a ``repro.cli profile`` walkthrough;
``docs/benchmarking.md`` for the bench observatory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.bench import (
    BenchReport,
    build_trajectory,
    compare_trajectories,
    evaluate_expectations,
    lint_results,
    merge_reports,
    render_diff,
    validate_report,
)
from repro.obs.analysis import (
    CriticalPath,
    DiagnosisReport,
    PathSegment,
    Timeline,
    TimelineSample,
    TraceGraph,
    diagnose,
    diff_reports,
    render_diagnosis,
    render_doctor_diff,
)
from repro.obs.export import chrome_trace, flat_stats, text_table, write_chrome_trace
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import DEFAULT_MAX_SPANS, Span, SpanTracer


@dataclass
class Obs:
    """One run's observability bundle: metrics always, spans when asked."""

    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: SpanTracer | None = None
    #: optional race sanitizer (repro.analysis.race.RaceDetector); typed as
    #: a plain object so obs stays import-independent of the analysis layer
    sanitizer: object | None = None

    @classmethod
    def create(cls, trace: bool = False,
               max_spans: int | None = DEFAULT_MAX_SPANS) -> "Obs":
        """A fresh bundle; ``trace=True`` attaches a span tracer.

        The tracer is linked back to the bundle's registry so spans
        dropped by the ``max_spans`` cap surface as ``obs.spans_dropped``.
        """
        metrics = MetricsRegistry()
        tracer = SpanTracer(max_spans=max_spans, metrics=metrics) \
            if trace else None
        return cls(metrics=metrics, tracer=tracer)


__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SPANS",
    "BenchReport",
    "Counter",
    "CriticalPath",
    "DiagnosisReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Obs",
    "PathSegment",
    "Span",
    "SpanTracer",
    "Timeline",
    "TimelineSample",
    "TraceGraph",
    "build_trajectory",
    "chrome_trace",
    "compare_trajectories",
    "diagnose",
    "diff_reports",
    "evaluate_expectations",
    "flat_stats",
    "lint_results",
    "merge_reports",
    "render_diagnosis",
    "render_diff",
    "render_doctor_diff",
    "text_table",
    "validate_report",
    "write_chrome_trace",
]
