"""Span tracing over virtual (or charged) time.

A :class:`Span` is one named interval on one process's timeline.  Spans nest
per process — the tracer keeps a stack per process name, so a ``push`` span
opened inside a ``query`` span records the query as its parent — and RPC
spans come in linked client/server pairs: the server span's ``link`` field
carries the client span's id, which is how a Chrome trace reconstructs the
message flow between machines.

Span clocks are whatever the owning process calls time: virtual seconds on
the :class:`~repro.simt.scheduler.Scheduler`, accumulated charged seconds on
a :class:`~repro.rpc.thread_runtime.ThreadRuntime`.  The tracer never reads
a wall clock itself.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class Span:
    """One completed interval on one process's timeline."""

    span_id: int
    name: str
    process: str
    start: float
    end: float
    parent_id: int | None = None
    #: "span" (plain nested interval), "client" (RPC caller side),
    #: "server" (RPC service side)
    kind: str = "span"
    #: for ``kind="server"``: the linked client span's id
    link: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


#: default cap on retained spans — long bench/chaos runs record millions of
#: intervals; past the cap new spans are counted but not stored
DEFAULT_MAX_SPANS = 262_144


class SpanTracer:
    """Collects spans; hands out ids; tracks one open-span stack per process.

    ``max_spans`` bounds memory: once the list reaches the cap, further
    spans are *dropped* (the earliest spans are kept — the start of a run
    is usually the interesting part of a trace) and counted in
    ``dropped``; when a :class:`~repro.obs.metrics.MetricsRegistry` is
    attached, every drop also increments the ``obs.spans_dropped`` counter.
    ``max_spans=None`` disables the cap.
    """

    def __init__(self, max_spans: int | None = DEFAULT_MAX_SPANS,
                 metrics=None) -> None:
        if max_spans is not None and max_spans < 1:
            raise ValueError(f"max_spans must be >= 1 or None, got {max_spans}")
        self.spans: list[Span] = []
        self.max_spans = max_spans
        self.dropped = 0
        self.metrics = metrics
        self._lock = threading.Lock()
        self._next = 1
        self._stacks: dict[str, list[int]] = {}

    def __len__(self) -> int:
        return len(self.spans)

    def next_id(self) -> int:
        with self._lock:
            out = self._next
            self._next += 1
            return out

    def current(self, process: str) -> int | None:
        """The innermost open span id on ``process``, or None."""
        stack = self._stacks.get(process)
        return stack[-1] if stack else None

    def record(self, name: str, process: str, start: float, end: float, *,
               span_id: int | None = None, parent_id: int | None = None,
               kind: str = "span", link: int | None = None,
               attrs: dict | None = None) -> int:
        """Append a completed span; returns its id."""
        if span_id is None:
            span_id = self.next_id()
        with self._lock:
            if self.max_spans is not None and len(self.spans) >= self.max_spans:
                self.dropped += 1
                drop = True
            else:
                self.spans.append(Span(
                    span_id=span_id, name=name, process=process,
                    start=start, end=end, parent_id=parent_id, kind=kind,
                    link=link, attrs=attrs or {},
                ))
                drop = False
        if drop and self.metrics is not None:
            self.metrics.inc("obs.spans_dropped")
        return span_id

    def span(self, process: str, name: str, clock: Callable[[], float],
             attrs: dict | None = None) -> "_OpenSpan":
        """Context manager: an interval read off ``clock`` at enter/exit.

        Safe to hold across generator suspensions — the span simply covers
        everything (waits included) between enter and exit on that
        process's clock.
        """
        return _OpenSpan(self, process, name, clock, attrs)

    # -- queries ------------------------------------------------------------
    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def by_process(self, process: str) -> list[Span]:
        return [s for s in self.spans if s.process == process]

    def by_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]


class _OpenSpan:
    __slots__ = ("_tracer", "_process", "_name", "_clock", "_attrs",
                 "_id", "_parent", "_start")

    def __init__(self, tracer: SpanTracer, process: str, name: str,
                 clock: Callable[[], float], attrs: dict | None) -> None:
        self._tracer = tracer
        self._process = process
        self._name = name
        self._clock = clock
        self._attrs = attrs

    def __enter__(self) -> "_OpenSpan":
        self._id = self._tracer.next_id()
        self._parent = self._tracer.current(self._process)
        self._tracer._stacks.setdefault(self._process, []).append(self._id)
        self._start = self._clock()
        return self

    def __exit__(self, *exc) -> None:
        stack = self._tracer._stacks.get(self._process)
        if stack and stack[-1] == self._id:
            stack.pop()
        self._tracer.record(
            self._name, self._process, self._start, self._clock(),
            span_id=self._id, parent_id=self._parent, attrs=self._attrs,
        )


class _TracedMeasure:
    """``proc.measured(category)`` with a span recorded on top of the charge.

    Works for any process object exposing ``name``, ``clock``, ``timer``
    and a ``tracer`` (:class:`~repro.simt.process.SimProcess` and
    :class:`~repro.rpc.thread_runtime.ThreadProcess`).  The span's interval
    is the *clock advance* caused by the measured block, so breakdown
    categories and spans stay consistent by construction.
    """

    __slots__ = ("_proc", "_category", "_inner", "_start", "_parent")

    def __init__(self, proc, category: str) -> None:
        self._proc = proc
        self._category = category

    def __enter__(self) -> "_TracedMeasure":
        self._parent = self._proc.tracer.current(self._proc.name)
        self._start = self._proc.clock
        self._inner = self._proc.timer.charge(self._category)
        self._inner.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._inner.__exit__(*exc)
        self._proc.tracer.record(
            self._category, self._proc.name, self._start, self._proc.clock,
            parent_id=self._parent,
        )
