"""Exporters: Chrome ``trace_event`` JSON, flat stats dict, text table.

``chrome_trace`` turns a :class:`~repro.obs.spans.SpanTracer` into the JSON
object format understood by ``chrome://tracing`` / Perfetto: one complete
(``"ph": "X"``) event per span, process/thread metadata so tracks are named
after simulated machines and workers, and flow (``"s"``/``"f"``) event pairs
stitching every RPC server span to its client span — the visual arrows that
show a request leaving one machine's timeline and landing on another's.

Virtual seconds are exported as microseconds (the trace format's unit).
Timed events are emitted sorted by ``ts`` (metadata first), so each track's
timestamps are monotone — the property ``tests`` assert on the schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer


def chrome_trace(tracer: SpanTracer,
                 machine_of: Mapping[str, int] | None = None) -> dict:
    """Build a Chrome trace-event JSON object from recorded spans.

    ``machine_of`` maps process names to machine ids (the trace's ``pid``);
    unknown processes land on pid 0.
    """
    machine_of = machine_of or {}
    processes = sorted({s.process for s in tracer.spans})
    tids = {p: i + 1 for i, p in enumerate(processes)}
    meta: list[dict] = []
    events: list[dict] = []

    pids_seen = set()
    for p in processes:
        pid = int(machine_of.get(p, 0))
        if pid not in pids_seen:
            pids_seen.add(pid)
            meta.append({"ph": "M", "name": "process_name", "pid": pid,
                         "tid": 0, "args": {"name": f"machine {pid}"}})
        meta.append({"ph": "M", "name": "thread_name", "pid": pid,
                     "tid": tids[p], "args": {"name": p}})

    client_spans = {s.span_id: s for s in tracer.spans if s.kind == "client"}
    for s in tracer.spans:
        pid = int(machine_of.get(s.process, 0))
        args = {"span_id": s.span_id, **s.attrs}
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        if s.link is not None:
            args["link"] = s.link
        events.append({
            "ph": "X", "name": s.name, "cat": s.kind,
            "ts": s.start * 1e6, "dur": max(s.end - s.start, 0.0) * 1e6,
            "pid": pid, "tid": tids[s.process], "args": args,
        })
        if s.kind == "server" and s.link in client_spans:
            client = client_spans[s.link]
            cpid = int(machine_of.get(client.process, 0))
            events.append({"ph": "s", "name": "rpc", "cat": "rpc",
                           "id": s.link, "ts": client.start * 1e6,
                           "pid": cpid, "tid": tids[client.process]})
            events.append({"ph": "f", "bp": "e", "name": "rpc", "cat": "rpc",
                           "id": s.link, "ts": s.start * 1e6,
                           "pid": pid, "tid": tids[s.process]})
        if s.kind == "coalesce" and s.link in client_spans:
            # A coalesced fetch rides another caller's in-flight RPC: draw
            # the arrow from the origin client span to the late requester's
            # marker so the piggybacked flow doesn't dangle.  The flow id is
            # the marker's own span id — the origin id already names the
            # client->server arrow above.
            origin = client_spans[s.link]
            opid = int(machine_of.get(origin.process, 0))
            events.append({"ph": "s", "name": "coalesce", "cat": "coalesce",
                           "id": s.span_id, "ts": origin.start * 1e6,
                           "pid": opid, "tid": tids[origin.process]})
            events.append({"ph": "f", "bp": "e", "name": "coalesce",
                           "cat": "coalesce", "id": s.span_id,
                           "ts": s.start * 1e6,
                           "pid": pid, "tid": tids[s.process]})
    events.sort(key=lambda e: e["ts"])  # stable: ties keep record order
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, tracer: SpanTracer,
                       machine_of: Mapping[str, int] | None = None) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, machine_of)))
    return path


def flat_stats(registry: MetricsRegistry) -> dict[str, float | int]:
    """The registry's flat stats dict (alias of ``snapshot`` for exporters)."""
    return registry.snapshot()


def text_table(stats: Mapping[str, float | int], title: str = "metrics") -> str:
    """Render a flat stats dict as an aligned two-column text table."""
    if not stats:
        return f"{title}: (empty)"
    keys = sorted(stats)
    width = max(len(k) for k in keys)
    lines = [f"{title}:"]
    for k in keys:
        v = stats[k]
        sval = str(v) if isinstance(v, int) else f"{v:.6g}"
        lines.append(f"  {k:<{width}}  {sval}")
    return "\n".join(lines)
