"""The central metric-namespace catalog.

Every instrument name used under ``src/repro`` must live in one of the
namespaces declared here — the REP007 lint rule
(:mod:`repro.analysis.rules.observability`) walks every
``MetricsRegistry.inc/set/observe`` call site and flags string literals
(including f-string literal heads) whose leading segment is not
catalogued.  The table mirrors ``docs/observability.md``: adding a new
namespace means documenting it there *and* declaring it here, so the
docs and the code cannot silently drift apart.

Dependency note: this module is imported by the lint layer and must stay
free of repro imports.
"""

from __future__ import annotations

#: namespace -> one-line meaning (the docs/observability.md section map)
METRIC_NAMESPACES: dict[str, str] = {
    "rpc": ("transport accounting, fault machinery, rpc.pool.* buffer "
            "reuse, rpc.trace.* gauges"),
    "engine": "per-run query accounting and makespan",
    "ppr": "SSPPR operator work (pushes, iterations, touched)",
    "fetch": "adaptive neighbor-fetch layer",
    "serve": "multi-tenant serving sessions",
    "stream": "streaming update ingestion + incremental PPR",
    "rebalance": "telemetry-driven shard rebalancing",
    "obs": "observability self-accounting (span drops)",
    "sanitizer": "lockset race-detector accounting",
}


def namespace_of(name: str) -> str:
    """The leading dotted segment of an instrument name."""
    return name.split(".", 1)[0]


def is_catalogued(name: str) -> bool:
    """Whether a (possibly partial) instrument name is in the catalog.

    ``name`` may be the literal head of an f-string — only the leading
    namespace segment is judged, and a bare head like ``"serve."`` or
    ``"rpc.faults."`` passes through its namespace.
    """
    return namespace_of(name) in METRIC_NAMESPACES
