"""Causal trace graph and critical-path extraction.

:class:`SpanTracer` records two causal relations: parent/child nesting
inside one process (driver spans, measured categories, RPC client
spans) and client→server links across processes (the propagated span
id).  This module reconstructs that DAG on the virtual clock and walks
it to answer *where did each query's virtual time actually go?*

The walk is a **cursor sweep**: inside a span, children sorted by start
time claim the interval they cover (clipped against earlier siblings
and the parent window), and every gap between children is attributed to
the span itself.  An RPC client span splits further: the tail of its
window that the linked server span was actually executing is attributed
to the *server* process/machine, the head is network/queueing time on
the client.  By construction the produced segments partition the root
span exactly — no virtual nanosecond is counted twice or silently lost
— which :meth:`CriticalPath.validate` checks and the hypothesis suite
exercises (``tests/test_trace_analysis.py``).

Nothing here assumes the simulated runtime: thread-mode traces (spans
on the accumulated charged clock) go through the same sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.spans import Span, SpanTracer

#: span names that anchor one critical path each
ROOT_SPAN_NAMES = ("query", "query_batch")

#: span-name -> phase bucket (the Figure 6 mapping from
#: docs/observability.md); client/server spans are classified by kind.
PHASE_OF_NAME = {
    "local_fetch": "local_fetch",
    "local_exec": "local_fetch",
    "remote_fetch": "remote_fetch",
    "rpc_issue": "remote_fetch",
    "rpc_wait": "remote_fetch",
    "push": "push",
    "pop": "pop",
    "crashed": "crashed",
}

#: path phases beyond the aggregate breakdown: ``serve`` is the slice of
#: a remote call the server was actually executing (the straggler
#: signal the aggregate view cannot see).
PATH_PHASES = ("local_fetch", "remote_fetch", "serve", "push", "pop",
               "crashed", "other")


def machine_of_process(process: str) -> int:
    """Machine index encoded in ``compute:M.P`` / ``server:M`` names."""
    if ":" not in process:
        return -1
    tail = process.split(":", 1)[1]
    head = tail.split(".", 1)[0]
    try:
        return int(head)
    except ValueError:
        return -1


def phase_of_span(span: Span) -> str:
    if span.kind == "client":
        return "remote_fetch"
    if span.kind == "server":
        return "serve"
    return PHASE_OF_NAME.get(span.name, "other")


def fault_of_span(span: Span) -> str | None:
    """The fault event a span witnessed, if any."""
    if span.name == "crashed":
        return "crash"
    if span.attrs:
        err = span.attrs.get("error")
        if err:
            return str(err)
    return None


@dataclass(frozen=True)
class PathSegment:
    """One contiguous critical interval with a single attribution."""

    start: float
    end: float
    process: str
    machine: int
    name: str
    phase: str
    #: "span" — a child span's own window; "self" — a gap attributed to
    #: the enclosing span; "network" / "serve" — the two halves of a
    #: clipped RPC client window.
    kind: str
    fault: str | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bucket(self) -> tuple:
        """The (machine, phase, span-name, fault-event) attribution key."""
        return (self.machine, self.phase, self.name, self.fault)

    def to_dict(self) -> dict:
        return {"start": self.start, "end": self.end,
                "process": self.process, "machine": self.machine,
                "name": self.name, "phase": self.phase,
                "kind": self.kind, "fault": self.fault}


@dataclass(frozen=True)
class CriticalPath:
    """The root span's window, partitioned into attributed segments."""

    root: Span
    segments: tuple

    @property
    def duration(self) -> float:
        return self.root.duration

    def validate(self) -> None:
        """Assert the segments partition ``[root.start, root.end]``.

        Chaining is checked with *exact* float equality — the sweep
        carries each segment's end forward as the next start, so any
        mismatch is a real accounting bug, not rounding.
        """
        if not self.segments:
            if self.root.duration != 0.0:
                raise AssertionError(
                    f"non-empty root {self.root.name} produced no segments")
            return
        cursor = self.root.start
        for seg in self.segments:
            if seg.start != cursor:
                raise AssertionError(
                    f"gap/overlap at {cursor}: segment starts at {seg.start}")
            if seg.end < seg.start:
                raise AssertionError(f"negative segment {seg}")
            cursor = seg.end
        if cursor != self.root.end:
            raise AssertionError(
                f"path ends at {cursor}, root ends at {self.root.end}")

    def totals(self) -> dict:
        """Critical seconds per (machine, phase, name, fault) bucket."""
        out: dict = {}
        for seg in self.segments:
            out[seg.bucket] = out.get(seg.bucket, 0.0) + seg.duration
        return out

    def phase_totals(self) -> dict:
        out = {phase: 0.0 for phase in PATH_PHASES}
        for seg in self.segments:
            out[seg.phase] = out.get(seg.phase, 0.0) + seg.duration
        return out

    def conservation_error(self) -> float:
        """|sum of segment durations − root duration| (float noise only)."""
        return abs(sum(s.duration for s in self.segments)
                   - self.root.duration)


class TraceGraph:
    """Span DAG: nesting within processes, RPC links across them."""

    def __init__(self, spans) -> None:
        self.spans = list(spans)
        self.by_id: dict = {}
        self.children: dict = {}
        self.server_of: dict = {}
        for idx, span in enumerate(self.spans):
            if span.span_id is not None:
                self.by_id[span.span_id] = span
            if span.parent_id is not None:
                self.children.setdefault(span.parent_id, []).append(
                    (span.start, idx, span))
            if span.kind == "server" and span.link is not None:
                self.server_of[span.link] = span
        for lst in self.children.values():
            lst.sort(key=lambda item: (item[0], item[1]))
        self.roots = tuple(s for s in self.spans
                           if s.name in ROOT_SPAN_NAMES)

    @classmethod
    def from_tracer(cls, tracer: SpanTracer) -> "TraceGraph":
        return cls(tracer.spans)

    def children_of(self, span: Span):
        if span.span_id is None:
            return ()
        return tuple(item[2] for item in self.children.get(span.span_id, ()))

    # -- critical path -------------------------------------------------------
    def critical_path(self, root: Span) -> CriticalPath:
        segments: list = []
        self._sweep(root, root.start, root.end, segments)
        path = CriticalPath(root=root, segments=tuple(segments))
        path.validate()
        return path

    def critical_paths(self) -> list:
        return [self.critical_path(root) for root in self.roots]

    def _self_segment(self, span: Span, lo: float, hi: float) -> PathSegment:
        return PathSegment(
            start=lo, end=hi, process=span.process,
            machine=machine_of_process(span.process), name=span.name,
            phase=phase_of_span(span), kind="self",
            fault=fault_of_span(span))

    def _sweep(self, span: Span, lo: float, hi: float, out: list) -> None:
        """Partition ``[lo, hi]`` between ``span``'s children and itself."""
        cursor = lo
        for child in self.children_of(span):
            if cursor >= hi:
                break
            if child.start >= hi:
                break  # children are start-sorted; the rest are clipped out
            c_lo = max(child.start, cursor)
            c_hi = min(child.end, hi)
            if c_hi <= c_lo:
                continue  # hidden behind an earlier sibling / zero width
            if c_lo > cursor:
                out.append(self._self_segment(span, cursor, c_lo))
            if child.kind == "client":
                self._client_sweep(child, c_lo, c_hi, out)
            else:
                self._sweep(child, c_lo, c_hi, out)
            cursor = c_hi
        if cursor < hi:
            out.append(self._self_segment(span, cursor, hi))

    def _client_sweep(self, client: Span, lo: float, hi: float,
                      out: list) -> None:
        """Split a clipped RPC window into network and server execution.

        The linked server span executed for ``server.duration`` seconds
        strictly before the response became ready, so the *tail* of the
        client window (up to that long) is server time; the head is
        wire latency, queueing, and any fault-retry churn on the client
        side.
        """
        fault = fault_of_span(client)
        server = None
        if client.span_id is not None:
            server = self.server_of.get(client.span_id)
        window = hi - lo
        serve_d = 0.0
        if server is not None:
            serve_d = min(max(server.duration, 0.0), window)
        # ``hi - serve_d`` can cancel below ``lo`` when ``serve_d`` was
        # clamped to the full window (hi - (hi - lo) != lo in floats);
        # the exact-equality chain needs the split point back in range.
        mid = max(lo, hi - serve_d)
        if mid > lo:
            out.append(PathSegment(
                start=lo, end=mid, process=client.process,
                machine=machine_of_process(client.process),
                name=client.name, phase="remote_fetch", kind="network",
                fault=fault))
        if serve_d > 0.0 and server is not None:
            out.append(PathSegment(
                start=mid, end=hi, process=server.process,
                machine=machine_of_process(server.process),
                name=server.name, phase="serve", kind="serve",
                fault=fault))
