"""``repro.obs.analysis`` — trace analytics over the observability layer.

Three modules turn a finished run's raw telemetry into answers:

* :mod:`~repro.obs.analysis.causal` — span DAG reconstruction and
  per-query critical-path extraction with total-conserving
  (machine, phase, span-name, fault-event) attribution;
* :mod:`~repro.obs.analysis.timeline` — typed, deterministic
  virtual-time series of selected counters and gauges
  (``RunRequest(timeline=interval)``, session/stream boundary samples);
* :mod:`~repro.obs.analysis.doctor` — ``diagnose(run)`` →
  :class:`DiagnosisReport`, report diffing, and the rendering behind
  ``python -m repro.cli doctor``.

See the "Trace analytics & doctor" section of ``docs/observability.md``.
"""

from repro.obs.analysis.causal import (
    PATH_PHASES,
    CriticalPath,
    PathSegment,
    TraceGraph,
    machine_of_process,
)
from repro.obs.analysis.doctor import (
    DIAGNOSIS_SCHEMA,
    DiagnosisReport,
    diagnose,
    diff_reports,
    render_diagnosis,
    render_doctor_diff,
)
from repro.obs.analysis.timeline import (
    ENGINE_WATCH,
    SESSION_WATCH,
    STREAM_WATCH,
    Timeline,
    TimelineSample,
    edge_samples,
    install_sim_sampler,
    sample_counters,
)

__all__ = [
    "DIAGNOSIS_SCHEMA",
    "ENGINE_WATCH",
    "PATH_PHASES",
    "SESSION_WATCH",
    "STREAM_WATCH",
    "CriticalPath",
    "DiagnosisReport",
    "PathSegment",
    "Timeline",
    "TimelineSample",
    "TraceGraph",
    "diagnose",
    "diff_reports",
    "edge_samples",
    "install_sim_sampler",
    "machine_of_process",
    "render_diagnosis",
    "render_doctor_diff",
    "sample_counters",
]
