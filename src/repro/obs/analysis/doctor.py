"""``diagnose(run)``: one structured verdict per run.

Folds the causal critical path (:mod:`repro.obs.analysis.causal`), the
metrics snapshot, the fetch-layer heat maps, and the optional
:class:`~repro.obs.analysis.timeline.Timeline` into a single
JSON-serializable :class:`DiagnosisReport` — the object behind
``python -m repro.cli doctor``.

Two layers of comparison:

* :meth:`DiagnosisReport.differential_view` projects the report onto its
  **count-derived** fields (fault counters, fetch/cache counts, heat-based
  straggler attribution, query-span counts, final timeline counters).
  Those replay bitwise-identically across the virtual-time scheduler and
  :class:`~repro.rpc.thread_runtime.ThreadRuntime` for the same seed and
  fault plan — asserted in ``tests/test_runtime_differential.py``.
  Durations (critical-path seconds, clock skews) stay *out* of the view:
  both runtimes fold measured host compute into their clocks, so no span
  duration is reproducible across hosts, let alone across runtimes.
* :func:`diff_reports` compares two full reports and names the
  critical-path buckets that moved — the before/after lens for "did my
  change actually shrink remote-fetch time?".
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.obs.analysis.causal import PATH_PHASES, TraceGraph
from repro.obs.analysis.timeline import ENGINE_WATCH, Timeline

#: report schema tag — bump on incompatible field changes
DIAGNOSIS_SCHEMA = "repro.diagnosis/v1"

#: counters summarizing injected faults and the retry machinery
FAULT_COUNTER_NAMES = ("rpc.retries", "rpc.timeouts", "rpc.dropped_messages",
                       "rpc.giveups")

#: row-level fetch counters (all under the cross-runtime contract)
CACHE_COUNTER_NAMES = ("fetch.requests", "fetch.cache_hits",
                       "fetch.halo_hits", "fetch.coalesced",
                       "fetch.misses", "fetch.bytes_saved")


@dataclass
class DiagnosisReport:
    """Structured analysis of one run (see module doc for the contract)."""

    schema: str = DIAGNOSIS_SCHEMA
    n_queries: int = 0
    makespan: float = 0.0
    #: the trace hit its span cap: the paths below describe a *prefix*
    trace_incomplete: bool = False
    spans_dropped: int = 0
    has_trace: bool = False
    n_paths: int = 0
    #: summed critical seconds across all per-query paths
    path_total_s: float = 0.0
    #: max over paths of |segment sum - root span| (float noise only)
    conservation_error: float = 0.0
    #: every path's duration stayed <= the run makespan
    paths_within_makespan: bool = True
    #: (machine, phase, name, fault) buckets, descending critical seconds
    path_buckets: list = field(default_factory=list)
    phase_totals: dict = field(default_factory=dict)
    #: critical seconds on segments that witnessed a fault event
    fault_path_s: float = 0.0
    fault_counters: dict = field(default_factory=dict)
    #: per machine: final clock, skew vs the mean, fetch heat + share
    stragglers: list = field(default_factory=list)
    cache: dict = field(default_factory=dict)
    #: Timeline.to_dict() when the run sampled one, else None
    timeline: dict | None = None

    # -- views ---------------------------------------------------------------
    def top_edges(self, n: int = 10) -> list:
        """The ``n`` heaviest critical-path buckets."""
        return self.path_buckets[:n]

    def differential_view(self) -> dict:
        """The count-derived projection (bitwise across runtimes)."""
        timeline_last = None
        if self.timeline and self.timeline.get("samples"):
            last = self.timeline["samples"][-1]["values"]
            timeline_last = {k: last[k] for k in ENGINE_WATCH if k in last}
        return {
            "schema": self.schema,
            "n_queries": self.n_queries,
            "n_paths": self.n_paths,
            "trace_incomplete": self.trace_incomplete,
            "spans_dropped": self.spans_dropped,
            "fault_counters": dict(self.fault_counters),
            "straggler_heat": {str(s["machine"]): s["heat"]
                               for s in self.stragglers},
            "cache_counts": {k: v for k, v in self.cache.items()
                             if k in CACHE_COUNTER_NAMES},
            "timeline_last": timeline_last,
        }

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: dict) -> "DiagnosisReport":
        if doc.get("schema") != DIAGNOSIS_SCHEMA:
            raise ValueError(
                f"unsupported diagnosis schema {doc.get('schema')!r}; "
                f"this build reads {DIAGNOSIS_SCHEMA}")
        fields = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in doc.items() if k in fields})

    @classmethod
    def from_json(cls, text: str) -> "DiagnosisReport":
        return cls.from_dict(json.loads(text))


def _bucket_rows(paths, path_total: float) -> list:
    totals: dict = {}
    for path in paths:
        for bucket, seconds in path.totals().items():
            totals[bucket] = totals.get(bucket, 0.0) + seconds
    rows = [
        {"machine": machine, "phase": phase, "name": name, "fault": fault,
         "seconds": seconds,
         "share": seconds / path_total if path_total > 0 else 0.0}
        for (machine, phase, name, fault), seconds in totals.items()
    ]
    rows.sort(key=lambda r: (-r["seconds"], r["machine"], r["phase"],
                             r["name"], str(r["fault"])))
    return rows


def _straggler_rows(per_proc_clocks: dict, heat: dict) -> list:
    from repro.obs.analysis.causal import machine_of_process

    clocks: dict = {}
    for proc, clock in per_proc_clocks.items():
        machine = machine_of_process(proc)
        clocks[machine] = max(clocks.get(machine, 0.0), clock)
    heat_totals = {int(m): int(sum(hmap.values()))
                   for m, hmap in heat.items()}
    machines = sorted(set(clocks) | set(heat_totals))
    mean_clock = (sum(clocks.values()) / len(clocks)) if clocks else 0.0
    total_heat = sum(heat_totals.values())
    rows = []
    for machine in machines:
        clock = clocks.get(machine, 0.0)
        h = heat_totals.get(machine, 0)
        rows.append({
            "machine": machine,
            "clock_s": clock,
            "clock_skew": clock / mean_clock if mean_clock > 0 else 0.0,
            "heat": h,
            "heat_share": h / total_heat if total_heat > 0 else 0.0,
        })
    rows.sort(key=lambda r: (-r["heat"], r["machine"]))
    return rows


def _cache_verdict(metrics: dict) -> dict:
    out = {name: int(metrics.get(name, 0)) for name in CACHE_COUNTER_NAMES}
    saved = (out["fetch.cache_hits"] + out["fetch.halo_hits"]
             + out["fetch.coalesced"])
    rows = saved + out["fetch.misses"]
    ratio = saved / rows if rows > 0 else 0.0
    if out["fetch.requests"] == 0:
        verdict = "idle"
    elif ratio >= 0.2:
        verdict = "effective"
    elif ratio > 0.0:
        verdict = "marginal"
    else:
        verdict = "ineffective"
    out["savings_ratio"] = ratio
    out["verdict"] = verdict
    return out


def diagnose(run, *, validate: bool = True) -> DiagnosisReport:
    """Analyze one :class:`~repro.engine.engine.QueryRunResult`.

    Works with or without a trace: an untraced run still yields the
    counter-derived sections (faults, cache, heat stragglers, timeline);
    a traced run adds critical paths.  ``validate=True`` re-asserts the
    conservation invariant on every extracted path.
    """
    metrics = dict(run.metrics or {})
    spans_dropped = int(metrics.get("obs.spans_dropped", 0))
    report = DiagnosisReport(
        n_queries=int(run.n_queries),
        makespan=float(run.makespan),
        spans_dropped=spans_dropped,
        trace_incomplete=spans_dropped > 0,
        fault_counters={
            **{name: int(metrics.get(name, 0))
               for name in FAULT_COUNTER_NAMES},
            **{name: int(value) for name, value in sorted(metrics.items())
               if name.startswith("rpc.faults.")},
        },
        stragglers=_straggler_rows(run.per_proc_clocks or {}, run.heat or {}),
        cache=_cache_verdict(metrics),
        timeline=(run.timeline.to_dict()
                  if isinstance(run.timeline, Timeline) else run.timeline),
    )

    tracer = getattr(run.obs, "tracer", None) if run.obs is not None else None
    if tracer is not None and tracer.spans:
        report.has_trace = True
        graph = TraceGraph.from_tracer(tracer)
        paths = graph.critical_paths()
        if validate:
            for path in paths:
                path.validate()
        report.n_paths = len(paths)
        report.path_total_s = sum(p.duration for p in paths)
        report.conservation_error = max(
            (p.conservation_error() for p in paths), default=0.0)
        report.paths_within_makespan = all(
            p.duration <= run.makespan + 1e-9 for p in paths)
        report.path_buckets = _bucket_rows(paths, report.path_total_s)
        phase_totals = {phase: 0.0 for phase in PATH_PHASES}
        for p in paths:
            for phase, seconds in p.phase_totals().items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
        report.phase_totals = phase_totals
        report.fault_path_s = sum(
            row["seconds"] for row in report.path_buckets
            if row["fault"] is not None)
    return report


# -- report diffing ----------------------------------------------------------
def _bucket_key(row: dict) -> tuple:
    return (row["machine"], row["phase"], row["name"], row["fault"])


def diff_reports(before: DiagnosisReport, after: DiagnosisReport,
                 *, top: int = 10) -> dict:
    """Name the critical-path buckets that moved between two reports."""
    a = {_bucket_key(r): r["seconds"] for r in before.path_buckets}
    b = {_bucket_key(r): r["seconds"] for r in after.path_buckets}
    moved = []
    for key in sorted(set(a) | set(b), key=str):
        before_s = a.get(key, 0.0)
        after_s = b.get(key, 0.0)
        delta = after_s - before_s
        if delta == 0.0:
            continue
        machine, phase, name, fault = key
        moved.append({"machine": machine, "phase": phase, "name": name,
                      "fault": fault, "before_s": before_s,
                      "after_s": after_s, "delta_s": delta})
    moved.sort(key=lambda r: -abs(r["delta_s"]))
    phases = {}
    for phase in set(before.phase_totals) | set(after.phase_totals):
        d = (after.phase_totals.get(phase, 0.0)
             - before.phase_totals.get(phase, 0.0))
        if d != 0.0:
            phases[phase] = d
    return {
        "schema": DIAGNOSIS_SCHEMA,
        "makespan_delta": after.makespan - before.makespan,
        "path_total_delta": after.path_total_s - before.path_total_s,
        "phase_deltas": phases,
        "moved": moved[:top],
        "n_moved": len(moved),
    }


# -- rendering ---------------------------------------------------------------
def _fmt_bucket(row: dict) -> str:
    fault = f" fault={row['fault']}" if row["fault"] else ""
    return (f"m{row['machine']:<3} {row['phase']:<13} {row['name']:<24} "
            f"{row['seconds']:.6f}s  {row['share'] * 100:5.1f}%{fault}")


def render_diagnosis(report: DiagnosisReport, *, top: int = 10) -> str:
    """Human-readable doctor summary (what ``cli doctor`` prints)."""
    lines = [f"diagnosis ({report.schema})",
             f"  queries: {report.n_queries}   "
             f"makespan: {report.makespan:.6f}s"]
    if report.trace_incomplete:
        lines.append(f"  WARNING: trace incomplete — "
                     f"{report.spans_dropped} spans dropped; critical "
                     f"paths describe a prefix of the run")
    if report.has_trace:
        lines.append(f"  critical paths: {report.n_paths} "
                     f"({report.path_total_s:.6f}s total, conservation "
                     f"error {report.conservation_error:.2e})")
        lines.append("  top critical-path buckets:")
        for row in report.top_edges(top):
            lines.append(f"    {_fmt_bucket(row)}")
        if report.fault_path_s > 0:
            lines.append(f"  fault impact on path: "
                         f"{report.fault_path_s:.6f}s")
    else:
        lines.append("  no span trace attached (run with trace=True for "
                     "critical paths)")
    if report.stragglers:
        lines.append("  machines (heat-ordered):")
        for row in report.stragglers:
            lines.append(
                f"    m{row['machine']:<3} clock {row['clock_s']:.6f}s "
                f"(skew {row['clock_skew']:.2f}x)  heat {row['heat']} "
                f"({row['heat_share'] * 100:5.1f}%)")
    if report.fault_counters:
        hot = {k: v for k, v in report.fault_counters.items() if v}
        lines.append(f"  fault counters: {hot if hot else 'clean'}")
    if report.cache:
        lines.append(
            f"  fetch cache: {report.cache.get('verdict', 'n/a')} "
            f"(saved {report.cache.get('savings_ratio', 0.0) * 100:.1f}% "
            f"of {report.cache.get('fetch.requests', 0)} requests)")
    if report.timeline and report.timeline.get("samples"):
        lines.append(f"  timeline: {len(report.timeline['samples'])} "
                     f"samples")
    return "\n".join(lines)


def render_doctor_diff(diff: dict, *, top: int = 10) -> str:
    """Human-readable rendering of a :func:`diff_reports` document."""
    lines = [f"diagnosis diff ({diff['schema']})",
             f"  makespan: {diff['makespan_delta']:+.6f}s   "
             f"path total: {diff['path_total_delta']:+.6f}s"]
    if diff["phase_deltas"]:
        parts = ", ".join(f"{k} {v:+.6f}s"
                          for k, v in sorted(diff["phase_deltas"].items()))
        lines.append(f"  phases moved: {parts}")
    if not diff["moved"]:
        lines.append("  no critical-path buckets moved")
        return "\n".join(lines)
    lines.append(f"  moved buckets ({diff['n_moved']} total, "
                 f"top {min(top, len(diff['moved']))}):")
    for row in diff["moved"][:top]:
        fault = f" fault={row['fault']}" if row["fault"] else ""
        lines.append(
            f"    m{row['machine']:<3} {row['phase']:<13} "
            f"{row['name']:<24} {row['delta_s']:+.6f}s "
            f"({row['before_s']:.6f} -> {row['after_s']:.6f}){fault}")
    return "\n".join(lines)
