"""Deterministic telemetry timelines.

A :class:`Timeline` is a typed series of ``(virtual_time, values)``
samples of selected counters and gauges.  Three samplers feed it:

* **simulated engine runs** — a scheduler timer fires every
  ``RunRequest(timeline=interval)`` virtual seconds and snapshots the
  watch list mid-run (:func:`install_sim_sampler`); the timer re-arms
  only while other events remain queued, so it can never keep the event
  loop alive by itself;
* **thread-mode engine runs** — real threads have no virtual timer, so
  the series keeps the two deterministic edges: an all-zero sample at
  ``t=0`` and a final sample at the run's makespan
  (:func:`edge_samples`);
* **serving / streaming sessions** — every drain or stream event
  boundary samples on the deterministic serving clock, which advances
  through cost models only.  Those series are *count-derived end to
  end* and therefore replay bitwise-identically on both runtimes,
  joining the cross-runtime differential contract
  (``tests/test_runtime_differential.py``).

Counter values come from :meth:`MetricsRegistry.counters` — the same
comparison unit the differential tests use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: engine-run watch list: counters under the cross-runtime contract.
ENGINE_WATCH = (
    "rpc.calls", "rpc.calls_local", "rpc.calls_remote",
    "rpc.request_bytes", "rpc.response_bytes",
    "rpc.retries", "rpc.timeouts", "rpc.dropped_messages", "rpc.giveups",
    "fetch.requests", "fetch.halo_hits", "fetch.misses",
    "obs.spans_dropped",
)

#: serving-session watch list (sampled on the deterministic serving clock).
SESSION_WATCH = (
    "serve.submitted", "serve.admitted", "serve.rejected",
    "serve.completed", "serve.slo_missed",
    "serve.batches", "serve.batch_queries",
)

#: streaming-session watch list.
STREAM_WATCH = (
    "stream.published", "stream.batches", "stream.batches_committed",
    "stream.staged_rows", "stream.queries", "stream.refreshes",
    "stream.refresh_corrections", "stream.refresh_pushes",
    "rebalance.epochs", "rebalance.migrations", "rebalance.replications",
)


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot: virtual time plus ``{name: value}``."""

    t: float
    values: dict

    def to_dict(self) -> dict:
        return {"t": self.t, "values": dict(self.values)}


@dataclass
class Timeline:
    """An append-only, time-ordered series of :class:`TimelineSample`."""

    interval: float | None = None
    samples: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def sample(self, t: float, values: dict) -> None:
        if self.samples and t < self.samples[-1].t:
            raise ValueError(
                f"timeline samples must be time-ordered: "
                f"{t} < {self.samples[-1].t}")
        self.samples.append(TimelineSample(t=float(t), values=dict(values)))

    def series(self, name: str) -> list:
        """``[(t, value), ...]`` for one watched instrument."""
        return [(s.t, s.values[name]) for s in self.samples
                if name in s.values]

    def names(self) -> tuple:
        seen: dict = {}
        for s in self.samples:
            for name in s.values:
                seen[name] = True
        return tuple(sorted(seen))

    def to_dict(self) -> dict:
        return {"interval": self.interval,
                "samples": [s.to_dict() for s in self.samples]}

    @classmethod
    def from_dict(cls, doc: dict) -> "Timeline":
        tl = cls(interval=doc.get("interval"))
        for s in doc.get("samples", ()):
            tl.sample(s["t"], s["values"])
        return tl

    def counts_view(self) -> dict:
        """First/last rows — the count-derived differential summary."""
        if not self.samples:
            return {"first": {}, "last": {}}
        return {"first": dict(self.samples[0].values),
                "last": dict(self.samples[-1].values)}


def sample_counters(metrics, names) -> dict:
    """Snapshot ``names`` out of a registry's counters (missing -> 0)."""
    counters = metrics.counters()
    return {name: counters.get(name, 0) for name in names}


def install_sim_sampler(scheduler, metrics, timeline: Timeline,
                        interval: float, gauges=None) -> None:
    """Arm a virtual-time grid sampler on a :class:`Scheduler`.

    Takes the ``t=0`` sample immediately, then snapshots every
    ``interval`` virtual seconds while the run has other events queued.
    The timer checks the event queue *after* firing and only then
    re-arms, so an otherwise-finished run is never kept alive (and the
    scheduler's deadlock detection stays meaningful).  Timer callbacks
    only read counters — they cannot perturb the workload interleaving.
    """
    if interval <= 0:
        raise ValueError(f"timeline interval must be > 0, got {interval}")

    def snapshot() -> dict:
        values = sample_counters(metrics, ENGINE_WATCH)
        if gauges is not None:
            values.update(gauges())
        return values

    timeline.sample(scheduler.now, snapshot())

    def tick() -> None:
        timeline.sample(scheduler.now, snapshot())
        if scheduler._heap:
            scheduler.call_at(scheduler.now + interval, tick)

    scheduler.call_at(scheduler.now + interval, tick)


def edge_samples(timeline: Timeline, metrics, makespan: float,
                 gauges=None, *, zero_first: bool = True) -> None:
    """Thread-mode fallback: sample the deterministic edges only.

    Real threads have no virtual timer to hook, so the series carries an
    all-zero ``t=0`` row plus the final counters at the run's makespan —
    both fully determined by the workload, never by wall time.
    """
    if zero_first and not timeline.samples:
        timeline.sample(0.0, {name: 0 for name in ENGINE_WATCH})
    values = sample_counters(metrics, ENGINE_WATCH)
    if gauges is not None:
        values.update(gauges())
    timeline.sample(max(makespan, timeline.samples[-1].t
                        if timeline.samples else 0.0), values)
