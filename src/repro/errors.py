"""Exception hierarchy for the repro graph engine.

All library-specific failures derive from :class:`ReproError` so callers can
catch engine errors without masking programming mistakes (``TypeError`` /
``ValueError`` raised by validation keep their builtin types).
"""


class ReproError(Exception):
    """Base class for all repro-specific errors."""


class GraphFormatError(ReproError):
    """A graph container was built from inconsistent arrays."""


class PartitionError(ReproError):
    """Graph partitioning failed or produced an invalid assignment."""


class ShardError(ReproError):
    """A graph shard was queried with IDs it does not own."""


class RpcError(ReproError):
    """An RPC could not be dispatched or its handler raised."""


class RpcTimeoutError(RpcError):
    """A remote call exhausted its retry budget without a reply.

    Raised to the waiting caller after a :class:`~repro.rpc.retry.RetryPolicy`
    runs out of attempts — each attempt either lost to the network (a
    :class:`~repro.simt.faults.FaultPlan` drop) or answered past its
    per-call timeout.
    """


class WorkerCrashedError(RpcError):
    """A remote call exhausted its retries against a crashed server.

    The transport cannot distinguish a dead server from a lossy network
    attempt-by-attempt (both look like a missing reply), but when the last
    failed attempt targeted a server inside a crash window the typed error
    names the real cause.
    """


class SimulationError(ReproError):
    """The discrete-event runtime reached an invalid state (e.g. deadlock)."""


class ConvergenceError(ReproError):
    """An iterative solver exceeded its iteration budget."""


class StreamError(ReproError):
    """A streaming-update operation failed."""


class StreamIngestError(StreamError):
    """A two-phase batch application could not complete atomically.

    ``applied`` reports the outcome the cluster converged to: ``False``
    when the batch was aborted/rolled back everywhere (the graph is
    unchanged), ``True`` never — a fully-applied batch does not raise.
    A rollback that itself failed permanently leaves ``applied=None``
    (shards may disagree) and is a deployment-level incident.
    """

    def __init__(self, message: str, *, applied: bool | None = False) -> None:
        super().__init__(message)
        self.applied = applied
