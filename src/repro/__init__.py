"""repro — an efficient distributed graph engine for deep learning on graphs.

A full from-scratch reproduction of Deng et al., *An Efficient Distributed
Graph Engine for Deep Learning on Graphs* (SC-W 2023): distributed min-cut
graph storage with halo-node caching, batched/compressed/overlapped RPC,
lock-free-parallel-map Forward Push SSPPR operators, tensor-based and
power-iteration baselines, and a ShaDow-style GNN-training integration —
all on a deterministic virtual-time distributed runtime.

Quick start::

    from repro import EngineConfig, GraphEngine, RunRequest, load_dataset

    graph = load_dataset("products", scale=0.05)
    engine = GraphEngine(graph, EngineConfig(n_machines=4))
    run = engine.run(RunRequest(n_queries=16, keep_states=True))
    print(f"{run.throughput:.1f} SSPPR queries/s (virtual)")

Chaos testing — inject deterministic faults and keep serving::

    from repro import DegradationMode, FaultPlan, RunRequest

    run = engine.run(RunRequest(
        n_queries=16,
        fault_plan=FaultPlan(seed=7, drop_prob=0.05),
        degradation=DegradationMode.SKIP_REMOTE,
    ))
    print(run.retries, run.timeouts, run.degraded_queries)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from repro.engine import EngineConfig, GraphEngine, QueryRunResult, RunRequest
from repro.obs import MetricsRegistry, Obs, SpanTracer
from repro.errors import (
    ReproError,
    RpcError,
    RpcTimeoutError,
    SimulationError,
    WorkerCrashedError,
)
from repro.graph import CSRGraph, DATASETS, load_dataset
from repro.partition import (
    BfsPartitioner,
    HashPartitioner,
    MetisLitePartitioner,
    RandomPartitioner,
)
from repro.ppr import (
    DegradationMode,
    OptLevel,
    PPRParams,
    SSPPR,
    forward_push_parallel,
    forward_push_sequential,
    power_iteration_ssppr,
    topk_precision,
)
from repro.rpc import RetryPolicy
from repro.simt import CrashWindow, FaultPlan
from repro.storage import DistGraphStorage, GraphShard, ShardedGraph, build_shards

__version__ = "1.0.0"

__all__ = [
    "BfsPartitioner",
    "CSRGraph",
    "CrashWindow",
    "DATASETS",
    "DegradationMode",
    "DistGraphStorage",
    "EngineConfig",
    "FaultPlan",
    "GraphEngine",
    "GraphShard",
    "HashPartitioner",
    "MetisLitePartitioner",
    "MetricsRegistry",
    "Obs",
    "OptLevel",
    "PPRParams",
    "QueryRunResult",
    "RandomPartitioner",
    "ReproError",
    "RetryPolicy",
    "RpcError",
    "RpcTimeoutError",
    "RunRequest",
    "SSPPR",
    "ShardedGraph",
    "SimulationError",
    "SpanTracer",
    "WorkerCrashedError",
    "__version__",
    "build_shards",
    "forward_push_parallel",
    "forward_push_sequential",
    "load_dataset",
    "power_iteration_ssppr",
    "topk_precision",
]
