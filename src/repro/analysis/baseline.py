"""The ratchet baseline: known findings are frozen, the count only goes down.

A baseline file (``analysis-baseline.json`` at the repo root, committed)
records every currently-accepted violation as a multiset keyed by
``(rule, path, message)`` — deliberately *not* by line number, so pure
code motion above a finding does not churn the file.  Reconciling a lint
run against the baseline splits the violations three ways:

* **new** — findings with no (or not enough) baseline budget: these fail
  the gate; fix them or (deliberately, reviewed) regenerate the baseline
  with ``cli analyze --update-baseline``;
* **stale** — baseline entries the tree no longer produces: these *also*
  fail, forcing the baseline to ratchet down as debt is paid instead of
  silently hoarding expired exemptions;
* **suppressed** — findings covered by the baseline, reported but not
  fatal.

Stale detection is only sound when the whole default tree was analyzed;
:func:`reconcile` takes ``check_stale=False`` under ``--changed-only`` or
explicit path arguments, where absence proves nothing.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.lint import Violation

#: on-disk schema tag; bump on incompatible layout changes
BASELINE_SCHEMA = "repro.analysis-baseline/v1"

#: the multiset key: everything about a finding except its line/column
Key = tuple[str, str, str]


def _key(v: Violation) -> Key:
    return (v.rule, v.path, v.message)


@dataclass(frozen=True)
class Baseline:
    """The accepted-findings multiset, as loaded from disk."""

    entries: dict[Key, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.entries.values())


@dataclass(frozen=True)
class BaselineResult:
    """One reconciliation: what is new, what expired, what is covered."""

    new: tuple[Violation, ...]
    stale: tuple[Key, ...]          # (rule, path, message) with dead budget
    suppressed: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return Baseline()
    data = json.loads(p.read_text())
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{p}: expected schema {BASELINE_SCHEMA!r}, "
            f"got {data.get('schema')!r}"
        )
    entries: dict[Key, int] = {}
    for row in data.get("findings", []):
        key = (row["rule"], row["path"], row["message"])
        count = int(row.get("count", 1))
        if count < 1:
            raise ValueError(f"{p}: non-positive count for {key}")
        entries[key] = entries.get(key, 0) + count
    return Baseline(entries=entries)


def save_baseline(path: str | Path,
                  violations: Iterable[Violation]) -> Baseline:
    """Freeze ``violations`` as the new baseline file (sorted, stable)."""
    counts = Counter(_key(v) for v in violations)
    findings = [
        {"rule": rule, "path": rel, "message": message, "count": n}
        for (rule, rel, message), n in sorted(counts.items())
    ]
    payload = {"schema": BASELINE_SCHEMA, "findings": findings}
    Path(path).write_text(json.dumps(payload, indent=1) + "\n")
    return Baseline(entries=dict(counts))


def reconcile(baseline: Baseline, violations: Sequence[Violation], *,
              check_stale: bool = True) -> BaselineResult:
    """Split ``violations`` against the baseline multiset.

    When a key's found count exceeds its budget the *last* occurrences in
    line order are the new ones — deterministic, and the earliest sites
    (most likely the originally-baselined ones) stay suppressed.
    """
    by_key: dict[Key, list[Violation]] = {}
    for v in sorted(violations):
        by_key.setdefault(_key(v), []).append(v)
    new: list[Violation] = []
    suppressed: list[Violation] = []
    for key, found in sorted(by_key.items()):
        budget = baseline.entries.get(key, 0)
        suppressed.extend(found[:budget])
        new.extend(found[budget:])
    stale: list[Key] = []
    if check_stale:
        for key in sorted(baseline.entries):
            if len(by_key.get(key, ())) < baseline.entries[key]:
                stale.append(key)
    return BaselineResult(new=tuple(sorted(new)), stale=tuple(stale),
                          suppressed=tuple(sorted(suppressed)))
