"""``repro.analysis`` — determinism & concurrency sanitizers.

The engine's central correctness claim is that the deterministic
virtual-time runtime (:mod:`repro.simt`) and the real-thread runtime
(:class:`~repro.rpc.thread_runtime.ThreadRuntime`) execute the *same*
driver coroutines with identical results.  The differential tests can
detect a divergence but not localize its cause; this package catches the
hazard *classes* behind such divergences — wall-clock leakage, unseeded
randomness, ordering-nondeterministic iteration, unsizeable RPC payloads,
blocking calls in coroutines, swallowed fault injections, data races,
scheduler deadlocks — at lint time and at runtime:

* :mod:`repro.analysis.lint` — a small AST visitor framework with
  per-rule allowlists (``# repro: allow=REPnnn`` pragmas and the
  ``[tool.repro.analysis]`` table in ``pyproject.toml``); the repo-specific
  rules live in :mod:`repro.analysis.rules` (REP001–REP010);
* :mod:`repro.analysis.callgraph` — the whole-program model (module
  import graph, alias-aware call graph, lock-site index) behind the
  interprocedural rules REP008–REP010 and the project-refined
  REP004/REP006 verdicts; dump it with ``cli analyze --graph dot|json``;
* :mod:`repro.analysis.baseline` — the ratchet baseline
  (``analysis-baseline.json``): new findings fail, stale entries fail;
* :mod:`repro.analysis.sarif` — SARIF 2.1.0 export
  (``cli analyze --sarif``);
* :mod:`repro.analysis.race` — an Eraser-style lockset race detector that
  instruments :class:`~repro.ppr.hashmap.ShardedMap` and
  :class:`~repro.rpc.thread_runtime.ThreadRuntime` shared state behind a
  zero-overhead-when-off flag (``RunRequest(sanitize=True)``);
* :mod:`repro.analysis.deadlock` — a wait-for-graph diagnoser the
  virtual-time scheduler invokes when its event queue drains with
  unresolved futures, naming each blocked coroutine and what it awaits.

``python -m repro.cli analyze`` runs the lint suite over ``src/`` and is
gated in tier-1 by ``tests/test_analysis.py``.  See
``docs/static-analysis.md`` for the rule catalog and allowlist syntax.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    Baseline,
    BaselineResult,
    load_baseline,
    reconcile,
    save_baseline,
)
from repro.analysis.callgraph import Project, build_project
from repro.analysis.deadlock import DeadlockReport, diagnose
from repro.analysis.lint import (
    AnalysisConfig,
    FileContext,
    ProjectRule,
    Rule,
    Violation,
    load_config,
    run_lint,
)
from repro.analysis.sarif import to_sarif
from repro.analysis.race import (
    RaceAccess,
    RaceDetector,
    RaceViolation,
    TrackedLock,
    install,
    installed,
    uninstall,
)
from repro.analysis.rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "Baseline",
    "BaselineResult",
    "DeadlockReport",
    "FileContext",
    "Project",
    "ProjectRule",
    "RaceAccess",
    "RaceDetector",
    "RaceViolation",
    "Rule",
    "TrackedLock",
    "Violation",
    "build_project",
    "diagnose",
    "get_rules",
    "install",
    "installed",
    "load_baseline",
    "load_config",
    "reconcile",
    "run_lint",
    "save_baseline",
    "to_sarif",
    "uninstall",
]
