"""Whole-program resolution: modules, call graph, locks, RPC surface.

The per-file rules (REP001–REP007) judge one ``FileContext`` at a time;
the interprocedural rules (REP008–REP010, and the exception-flow upgrade
to REP006) need to see the *program*: which function calls which, where
locks are acquired while other locks are held, and which methods the RPC
layer can actually dispatch to.  :func:`build_project` parses every file
once (reusing :class:`~repro.analysis.lint.FileContext`) and assembles:

* a **module graph** — project-internal imports, alias-aware;
* a **function index** — one :class:`FunctionInfo` per ``def`` (methods
  qualified as ``module:Class.method``) with parameter shape, resolved
  call edges, raised exception names, lock acquisitions, and mutation
  sites over shared state;
* a **lock-site index** — every ``with <lock>:`` block over a
  ``threading.Lock`` / :class:`~repro.analysis.race.TrackedLock` /
  lock-named ``self`` attribute, identified by ``(owning class,
  attribute)`` or ``module:name`` so REP008 can order acquisitions
  program-wide;
* an **RPC surface** — methods marked ``@rpc_handler``
  (:mod:`repro.rpc.handlers`) plus every ``rpc_async`` /
  ``rpc_sync_effect`` / ``rref_call`` dispatch site with its method-name
  literal (or the parameter forwarding one, resolved a hop later by
  REP010).

Resolution is deliberately conservative and purely syntactic: ``self.m()``
binds inside the enclosing class (and project-internal bases),
``module.f()`` through the import map (following one package re-export),
``x = ClassName(...)`` through the same single-assignment environment
REP004 uses, and a bare method call on an unknown receiver only when
exactly one project class defines that method name.  Anything else
resolves to nothing — the rules treat unresolved calls as opaque (REP006
keeps them *suspect*; REP008/REP009 propagate nothing through them).

Derived fixpoints (:meth:`Project.acquires_closure`,
:meth:`Project.raises_fault`, :meth:`Project.always_called_locked`) are
memoized on the project; :meth:`Project.to_dot` / :meth:`Project.to_json`
back ``cli analyze --graph``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.lint import FileContext, iter_python_files

#: RRef dispatch attributes: ``rref.rpc_async(caller, "method", *payload)``
RPC_DISPATCH_ATTRS = ("rpc_async", "rpc_sync_effect")
#: context dispatch: ``ctx.rref_call(caller, rref, "method", args, kwargs)``
RPC_CONTEXT_ATTR = "rref_call"

#: canonical names of the ``@rpc_handler`` marker decorator
HANDLER_DECORATOR_NAMES = frozenset({
    "repro.rpc.handlers.rpc_handler",
    "repro.rpc.rpc_handler",
})

#: exception names whose *raise* is an injected fault (chaos layer)
FAULT_ERROR_NAMES = frozenset({
    "RpcTimeoutError", "WorkerCrashedError",
    "repro.errors.RpcTimeoutError", "repro.errors.WorkerCrashedError",
})

#: canonical constructors recognized as locks at assignment sites
LOCK_CONSTRUCTORS = frozenset({
    "threading.Lock", "threading.RLock",
    "repro.analysis.race.TrackedLock",
})

#: container methods that mutate their receiver in place
MUTATOR_ATTRS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort",
})


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/<pkg>/...`` drops the ``src`` layout root so in-project imports
    (``from repro.storage import shard``) resolve; anything else (tests,
    fixtures) keeps its full dotted path, which is unique either way.
    """
    parts = list(Path(relpath).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class ParamShape:
    """Callable acceptance of one function (``self``/``cls`` excluded)."""

    positional: tuple[str, ...]        # posonly + regular
    kwonly: tuple[str, ...]
    required: int                      # leading positionals without defaults
    required_kwonly: tuple[str, ...]
    has_varargs: bool
    has_kwargs: bool

    def accepts(self, n_pos: int, kw_names: Iterable[str]) -> str | None:
        """None when ``(n_pos, kw_names)`` binds; else a human reason."""
        kw = set(kw_names)
        if n_pos > len(self.positional) and not self.has_varargs:
            return (f"takes at most {len(self.positional)} positional "
                    f"argument(s), got {n_pos}")
        if not self.has_kwargs:
            unknown = kw - set(self.positional) - set(self.kwonly)
            if unknown:
                return f"got unexpected keyword(s) {sorted(unknown)}"
        missing = [p for i, p in enumerate(self.positional)
                   if i >= n_pos and i < self.required and p not in kw]
        if missing:
            return f"missing required argument(s) {missing}"
        missing_kw = [k for k in self.required_kwonly if k not in kw]
        if missing_kw:
            return f"missing required keyword-only argument(s) {missing_kw}"
        return None

    def describe(self) -> str:
        hi = "*" if self.has_varargs else str(len(self.positional))
        return f"{self.required}..{hi} positional"


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    raw: str                        # best-effort printable callee
    callee: str | None              # resolved function qname, if any
    held: tuple[str, ...]           # lock ids held at this site


@dataclass
class LockAcquisition:
    """One ``with <lock>:`` entry."""

    lock_id: str
    function: str                   # enclosing function qname
    lineno: int
    col: int
    held_before: tuple[str, ...]


@dataclass
class MutationSite:
    """One in-place mutation of a module-level or class-level container."""

    target: str                     # "module:NAME" or "Class.attr"
    kind: str                       # subscript | method | augassign | del
    lineno: int
    col: int
    held: tuple[str, ...]


@dataclass
class RpcCallSite:
    """One ``rpc_async``/``rpc_sync_effect``/``rref_call`` dispatch site."""

    relpath: str
    node: ast.Call
    attr: str
    function: str | None            # enclosing function qname
    method: str | None              # literal method name, if static
    method_param: str | None        # parameter forwarding the name, if so
    n_args: int | None              # payload positional count (None: unknown)
    kw_names: tuple[str, ...]


@dataclass
class HandlerInfo:
    """One ``@rpc_handler``-marked method."""

    qname: str                      # module:Class.method
    cls: str                        # class qname
    name: str                       # method name
    relpath: str
    lineno: int
    col: int
    params: ParamShape


@dataclass
class SharedDef:
    """A module-level or class-body mutable container definition."""

    target: str                     # "module:NAME" or "Class.attr"
    relpath: str
    lineno: int
    col: int


@dataclass
class FunctionInfo:
    """Everything the interprocedural rules need about one ``def``."""

    qname: str
    module: str
    cls: str | None                 # enclosing class qname, if a method
    name: str
    relpath: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: ParamShape
    calls: list[CallSite] = field(default_factory=list)
    locks: list[LockAcquisition] = field(default_factory=list)
    mutations: list[MutationSite] = field(default_factory=list)
    raises: set[str] = field(default_factory=set)
    has_yield: bool = False


@dataclass
class ClassInfo:
    qname: str
    module: str
    name: str
    relpath: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()     # resolved project class qnames
    methods: dict[str, str] = field(default_factory=dict)
    lock_attrs: set[str] = field(default_factory=set)


def _attr_chain(node: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` -> ("a", "b", "c"); None for non-name-rooted chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def _looks_lockish(name: str) -> bool:
    return "lock" in name.lower()


def _describe_callee(func: ast.expr) -> str:
    chain = _attr_chain(func)
    return ".".join(chain) if chain else "<dynamic>"


def _param_shape(node: ast.FunctionDef | ast.AsyncFunctionDef, *,
                 method: bool) -> ParamShape:
    a = node.args
    positional = [p.arg for p in (*a.posonlyargs, *a.args)]
    required = len(positional) - len(a.defaults)
    if method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
        required -= 1
    kw_required = tuple(
        p.arg for p, default in zip(a.kwonlyargs, a.kw_defaults)
        if default is None
    )
    return ParamShape(
        positional=tuple(positional),
        kwonly=tuple(p.arg for p in a.kwonlyargs),
        required=max(0, required),
        required_kwonly=kw_required,
        has_varargs=a.vararg is not None,
        has_kwargs=a.kwarg is not None,
    )


class Project:
    """The assembled whole-program model.  Build via :func:`build_project`."""

    def __init__(self, root: Path | None) -> None:
        self.root = root
        self.modules: dict[str, FileContext] = {}
        self.module_of_relpath: dict[str, str] = {}
        #: module name -> imported *project* module names
        self.imports: dict[str, set[str]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: method name -> class qnames defining it (unique-name fallback)
        self.method_index: dict[str, list[str]] = {}
        #: lock attr name -> owning class qnames
        self.lock_attr_index: dict[str, list[str]] = {}
        #: module-level lock ids: "module:NAME"
        self.module_locks: set[str] = set()
        #: module-level / class-body mutable container definitions
        self.shared_defs: dict[str, SharedDef] = {}
        self.rpc_handlers: list[HandlerInfo] = []
        self.rpc_call_sites: list[RpcCallSite] = []
        self._acquires_memo: dict[str, frozenset[str]] = {}
        self._fault_memo: dict[str, bool] = {}
        self._callers: dict[str, list[tuple[str, CallSite]]] | None = None
        self._locked_memo: dict[str, bool] = {}

    # -- lookups -----------------------------------------------------------
    def ctx_for(self, relpath: str) -> FileContext | None:
        mod = self.module_of_relpath.get(relpath)
        return self.modules.get(mod) if mod else None

    def handlers_by_name(self) -> dict[str, list[HandlerInfo]]:
        out: dict[str, list[HandlerInfo]] = {}
        for h in self.rpc_handlers:
            out.setdefault(h.name, []).append(h)
        return out

    def resolve_dotted(self, dotted: str, _depth: int = 0) -> str | None:
        """Map a canonical dotted name to a project function/class qname.

        Tries the longest module prefix first, then follows one package
        re-export (``from repro.storage import GraphShard`` in an
        ``__init__``) so facade imports resolve to the defining module.
        """
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            if mod not in self.modules:
                continue
            rest = parts[cut:]
            qname = f"{mod}:" + ".".join(rest)
            if qname in self.functions or qname in self.classes:
                return qname
            if _depth < 2:
                reexport = self.modules[mod].imports.aliases.get(rest[0])
                if reexport is not None:
                    chained = ".".join([reexport, *rest[1:]])
                    resolved = self.resolve_dotted(chained, _depth + 1)
                    if resolved is not None:
                        return resolved
        return None

    def resolve_method_on(self, cls_qname: str, method: str) -> str | None:
        """Method lookup through project-internal bases (BFS, shallow)."""
        seen: set[str] = set()
        queue = [cls_qname]
        while queue:
            c = queue.pop(0)
            if c in seen:
                continue
            seen.add(c)
            info = self.classes.get(c)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.bases)
        return None

    def lock_attr_of(self, cls_qname: str, attr: str) -> str | None:
        """Resolve ``self.<attr>`` to a lock id through the base chain."""
        seen: set[str] = set()
        queue = [cls_qname]
        while queue:
            c = queue.pop(0)
            if c in seen:
                continue
            seen.add(c)
            info = self.classes.get(c)
            if info is None:
                continue
            if attr in info.lock_attrs:
                return f"{info.name}.{attr}"
            queue.extend(info.bases)
        return None

    # -- derived fixpoints -------------------------------------------------
    def acquires_closure(self, qname: str) -> frozenset[str]:
        """Lock ids ``qname`` may acquire, directly or via resolved callees."""
        memo = self._acquires_memo
        if qname in memo:
            return memo[qname]
        memo[qname] = frozenset()  # cycle guard: in-flight contributes nothing
        fn = self.functions.get(qname)
        if fn is None:
            return frozenset()
        acc = {a.lock_id for a in fn.locks}
        for call in fn.calls:
            if call.callee is not None:
                acc |= self.acquires_closure(call.callee)
        memo[qname] = frozenset(acc)
        return memo[qname]

    def raises_fault(self, qname: str) -> bool:
        """Whether ``qname`` can transitively raise an injected fault type.

        True when the function raises ``RpcTimeoutError`` /
        ``WorkerCrashedError`` itself, dispatches RPC (the fault travels
        back through the returned future), or calls a project function
        that can.  Unresolved calls contribute nothing here — REP006
        treats them as *suspect* separately.
        """
        memo = self._fault_memo
        if qname in memo:
            return memo[qname]
        memo[qname] = False  # cycle guard
        fn = self.functions.get(qname)
        if fn is None:
            return False
        out = bool(fn.raises & FAULT_ERROR_NAMES)
        if not out:
            for call in fn.calls:
                func = call.node.func
                if isinstance(func, ast.Attribute) and \
                        func.attr in (*RPC_DISPATCH_ATTRS, RPC_CONTEXT_ATTR):
                    out = True
                    break
                if call.callee is not None and self.raises_fault(call.callee):
                    out = True
                    break
        memo[qname] = out
        return out

    def always_called_locked(self, qname: str) -> bool:
        """Whether every resolved project call path into ``qname`` holds a
        lock.  Entry points (no resolved callers) count as unlocked.  Lets
        REP009 accept helpers only ever invoked under a caller's lock."""
        if self._callers is None:
            callers: dict[str, list[tuple[str, CallSite]]] = {}
            for fn in self.functions.values():
                for call in fn.calls:
                    if call.callee is not None:
                        callers.setdefault(call.callee, []).append(
                            (fn.qname, call))
            self._callers = callers

        def locked(q: str, stack: frozenset[str]) -> bool:
            if q in self._locked_memo:
                return self._locked_memo[q]
            if q in stack:
                return True  # recursive edge: neutral
            sites = self._callers.get(q, [])
            if not sites:
                return False
            out = all(bool(c.held) or locked(owner, stack | {q})
                      for owner, c in sites)
            if not stack:  # only memoize top-level verdicts
                self._locked_memo[q] = out
            return out

        return locked(qname, frozenset())

    # -- lock-order graph --------------------------------------------------
    def lock_order_edges(self) -> dict[tuple[str, str], LockAcquisition]:
        """``(held, acquired)`` pairs, each mapped to a witness site.

        An edge A→B means some path acquires B while holding A: a nested
        ``with`` in one function, or a call made under A whose transitive
        callee acquires B.
        """
        edges: dict[tuple[str, str], LockAcquisition] = {}
        for fq in sorted(self.functions):
            fn = self.functions[fq]
            for acq in fn.locks:
                for held in acq.held_before:
                    if held != acq.lock_id:
                        edges.setdefault((held, acq.lock_id), acq)
            for call in fn.calls:
                if not call.held or call.callee is None:
                    continue
                for inner in sorted(self.acquires_closure(call.callee)):
                    for held in call.held:
                        if held != inner:
                            edges.setdefault((held, inner), LockAcquisition(
                                lock_id=inner, function=fn.qname,
                                lineno=call.node.lineno,
                                col=call.node.col_offset,
                                held_before=call.held,
                            ))
        return edges

    def lock_cycles(self) -> list[list[str]]:
        """Cycles in the lock-order graph, canonicalized + deduplicated.

        Each cycle is discovered once, rooted at its smallest lock id —
        the DFS only extends through nodes greater than the root.
        """
        edges = self.lock_order_edges()
        adj: dict[str, list[str]] = {}
        for a, b in sorted(edges):
            adj.setdefault(a, []).append(b)
        cycles: list[tuple[str, ...]] = []
        seen: set[tuple[str, ...]] = set()

        def dfs(start: str, node: str, path: list[str],
                on_path: set[str]) -> None:
            for nxt in adj.get(node, ()):
                if nxt == start:
                    cyc = tuple(path)
                    if cyc not in seen:
                        seen.add(cyc)
                        cycles.append(cyc)
                elif nxt not in on_path and nxt > start:
                    path.append(nxt)
                    on_path.add(nxt)
                    dfs(start, nxt, path, on_path)
                    on_path.discard(nxt)
                    path.pop()

        for start in sorted(adj):
            dfs(start, start, [start], {start})
        return [list(c) for c in sorted(cycles)]

    # -- dumps -------------------------------------------------------------
    def to_json(self) -> dict:
        edges = self.lock_order_edges()
        return {
            "schema": "repro.analysis-graph/v1",
            "modules": {m: sorted(self.imports.get(m, ()))
                        for m in sorted(self.modules)},
            "functions": sorted(self.functions),
            "calls": sorted(
                {(fn.qname, c.callee)
                 for fn in self.functions.values()
                 for c in fn.calls if c.callee is not None}
            ),
            "locks": {
                "sites": [
                    {"lock": a.lock_id, "function": a.function,
                     "line": a.lineno}
                    for fq in sorted(self.functions)
                    for a in self.functions[fq].locks
                ],
                "order_edges": [
                    {"held": a, "acquired": b,
                     "at": f"{edges[(a, b)].function}:{edges[(a, b)].lineno}"}
                    for a, b in sorted(edges)
                ],
                "cycles": self.lock_cycles(),
            },
            "rpc": {
                "handlers": [
                    {"method": h.name, "class": h.cls, "line": h.lineno,
                     "params": h.params.describe()}
                    for h in sorted(self.rpc_handlers,
                                    key=lambda h: (h.cls, h.name))
                ],
                "call_sites": [
                    {"method": s.method, "via_param": s.method_param,
                     "path": s.relpath, "line": s.node.lineno,
                     "dispatch": s.attr}
                    for s in sorted(self.rpc_call_sites,
                                    key=lambda s: (s.relpath, s.node.lineno,
                                                   s.node.col_offset))
                ],
            },
        }

    def to_dot(self) -> str:
        """Graphviz dump: call edges plus the lock-order graph as a
        cluster, with edges on any cycle highlighted in red."""
        lines = ["digraph repro_analysis {", "  rankdir=LR;",
                 "  node [shape=box, fontsize=10];"]
        call_edges = sorted(
            {(fn.qname, c.callee) for fn in self.functions.values()
             for c in fn.calls if c.callee is not None}
        )
        for src, dst in call_edges:
            lines.append(f'  "{src}" -> "{dst}";')
        edges = self.lock_order_edges()
        cyc_edges: set[tuple[str, str]] = set()
        for cycle in self.lock_cycles():
            ring = cycle + cycle[:1]
            cyc_edges.update(zip(ring, ring[1:]))
        lines.append("  subgraph cluster_locks {")
        lines.append('    label="lock order"; node [shape=ellipse];')
        for a, b in sorted(edges):
            style = " [color=red, penwidth=2]" if (a, b) in cyc_edges else ""
            lines.append(f'    "lock:{a}" -> "lock:{b}"{style};')
        lines.append("  }")
        lines.append("}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.DictComp,
                     ast.ListComp, ast.SetComp)
_MUTABLE_CTORS = ("dict", "list", "set", "defaultdict", "deque",
                  "OrderedDict", "Counter")


def _is_mutable_container(value: ast.expr) -> bool:
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _MUTABLE_CTORS
    return False


class _ModuleBuilder:
    """Extracts classes/functions/calls/locks from one parsed module."""

    def __init__(self, project: Project, modname: str,
                 ctx: FileContext) -> None:
        self.project = project
        self.modname = modname
        self.ctx = ctx
        self.local_funcs: dict[str, str] = {}
        self.local_classes: dict[str, str] = {}

    def qname(self, *parts: str) -> str:
        return f"{self.modname}:" + ".".join(parts)

    # -- pass 1: declarations -------------------------------------------
    def declare(self) -> None:
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                q = self.qname(node.name)
                self.local_funcs[node.name] = q
                self.project.functions[q] = self._function(q, None, node)
            elif isinstance(node, ast.ClassDef):
                self._declare_class(node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                target = f"{self.modname}:{name}"
                if self._is_lock_value(node.value):
                    self.project.module_locks.add(target)
                elif _is_mutable_container(node.value) and \
                        not name.startswith("__"):
                    self.project.shared_defs[target] = SharedDef(
                        target=target, relpath=self.ctx.relpath,
                        lineno=node.lineno, col=node.col_offset)

    def _declare_class(self, node: ast.ClassDef) -> None:
        cq = self.qname(node.name)
        self.local_classes[node.name] = cq
        cls = ClassInfo(qname=cq, module=self.modname, name=node.name,
                        relpath=self.ctx.relpath, node=node)
        self.project.classes[cq] = cls
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fq = self.qname(node.name, item.name)
                cls.methods[item.name] = fq
                self.project.functions[fq] = self._function(fq, cq, item)
                self.project.method_index.setdefault(
                    item.name, []).append(cq)
                self._maybe_handler(cq, item, fq)
            elif isinstance(item, ast.Assign) and len(item.targets) == 1 \
                    and isinstance(item.targets[0], ast.Name) and \
                    _is_mutable_container(item.value):
                # class *variable* holding a container: shared across
                # every instance, every thread
                target = f"{node.name}.{item.targets[0].id}"
                self.project.shared_defs[target] = SharedDef(
                    target=target, relpath=self.ctx.relpath,
                    lineno=item.lineno, col=item.col_offset)
        self._collect_lock_attrs(cls)

    def _function(self, qname: str, cls: str | None,
                  node: ast.FunctionDef | ast.AsyncFunctionDef
                  ) -> FunctionInfo:
        return FunctionInfo(
            qname=qname, module=self.modname, cls=cls, name=node.name,
            relpath=self.ctx.relpath, node=node,
            params=_param_shape(node, method=cls is not None),
        )

    def _maybe_handler(self, cls_q: str, item, fq: str) -> None:
        for dec in item.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = self.ctx.imports.resolve(target)
            bare = target.id if isinstance(target, ast.Name) else None
            if name in HANDLER_DECORATOR_NAMES or bare == "rpc_handler":
                self.project.rpc_handlers.append(HandlerInfo(
                    qname=fq, cls=cls_q, name=item.name,
                    relpath=self.ctx.relpath, lineno=item.lineno,
                    col=item.col_offset,
                    params=self.project.functions[fq].params,
                ))
                return

    def _collect_lock_attrs(self, cls: ClassInfo) -> None:
        """``self.X = threading.Lock()`` (possibly behind a conditional
        expression, e.g. ``TrackedLock(..) if sanitize else Lock()``)."""
        for item in ast.walk(cls.node):
            if not isinstance(item, ast.Assign) or len(item.targets) != 1:
                continue
            t = item.targets[0]
            if isinstance(t, ast.Attribute) and \
                    isinstance(t.value, ast.Name) and t.value.id == "self":
                if self._is_lock_value(item.value) and \
                        t.attr not in cls.lock_attrs:
                    cls.lock_attrs.add(t.attr)
                    self.project.lock_attr_index.setdefault(
                        t.attr, []).append(cls.qname)

    def _is_lock_value(self, value: ast.expr) -> bool:
        for node in ast.walk(value):
            if not isinstance(node, ast.Call):
                continue
            name = self.ctx.imports.resolve(node.func)
            if name in LOCK_CONSTRUCTORS:
                return True
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("TrackedLock",
                                                          "RLock", "Lock"):
                return True
            if isinstance(func, ast.Attribute) and \
                    func.attr in ("tracked_lock", "TrackedLock"):
                return True
        return False

    # -- pass 2: bodies --------------------------------------------------
    def link(self) -> None:
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._link_function(self.local_funcs[node.name], node)
            elif isinstance(node, ast.ClassDef):
                cq = self.local_classes[node.name]
                bases = []
                for b in node.bases:
                    resolved = self._resolve_class_expr(b)
                    if resolved is not None:
                        bases.append(resolved)
                self.project.classes[cq].bases = tuple(bases)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self._link_function(
                            self.project.classes[cq].methods[item.name],
                            item, cls=cq)

    def _resolve_class_expr(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name) and node.id in self.local_classes:
            return self.local_classes[node.id]
        name = self.ctx.imports.resolve(node)
        if name is None:
            return None
        q = self.project.resolve_dotted(name)
        return q if q in self.project.classes else None

    def _link_function(self, qname: str,
                       node: ast.FunctionDef | ast.AsyncFunctionDef,
                       cls: str | None = None) -> None:
        fn = self.project.functions[qname]
        env = self._instance_env(node)
        local_defs = {
            s.name: f"{qname}.<locals>.{s.name}" for s in node.body
            if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self._walk_stmts(fn, node.body, cls, env, (), local_defs)

    def _instance_env(self, node: ast.AST) -> dict[str, str]:
        """Single-assignment ``x = ClassName(...)`` typings in one scope."""
        counts: dict[str, int] = {}
        for n in _own_nodes(node):
            if isinstance(n, ast.Name) and isinstance(n.ctx, (ast.Store,
                                                              ast.Del)):
                counts[n.id] = counts.get(n.id, 0) + 1
        env: dict[str, str] = {}
        for n in _own_nodes(node):
            if isinstance(n, ast.Assign) and len(n.targets) == 1 and \
                    isinstance(n.targets[0], ast.Name) and \
                    isinstance(n.value, ast.Call):
                target = n.targets[0].id
                if counts.get(target) != 1:
                    continue
                func = n.value.func
                if isinstance(func, ast.Name) and \
                        func.id in self.local_classes:
                    env[target] = self.local_classes[func.id]
                    continue
                name = self.ctx.imports.resolve(func)
                if name is not None:
                    q = self.project.resolve_dotted(name)
                    if q in self.project.classes:
                        env[target] = q
        return env

    def _walk_stmts(self, fn: FunctionInfo, stmts: list, cls: str | None,
                    env: dict[str, str], held: tuple[str, ...],
                    local_defs: dict[str, str] | None = None) -> None:
        """Statement walk threading the held-lock stack through ``with``."""
        local_defs = local_defs if local_defs is not None else {}
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_nested_def(fn, stmt, cls, env, held, local_defs)
                continue
            if isinstance(stmt, ast.ClassDef):
                continue  # function-local classes are separate scopes
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: list[str] = []
                for item in stmt.items:
                    inner = tuple(held) + tuple(acquired)
                    self._scan_expr(fn, item.context_expr, cls, env, inner,
                                    local_defs)
                    lock_id = self._lock_id(item.context_expr, cls, env)
                    if lock_id is not None:
                        fn.locks.append(LockAcquisition(
                            lock_id=lock_id, function=fn.qname,
                            lineno=item.context_expr.lineno,
                            col=item.context_expr.col_offset,
                            held_before=inner,
                        ))
                        acquired.append(lock_id)
                self._walk_stmts(fn, stmt.body, cls, env,
                                 tuple(held) + tuple(acquired), local_defs)
                continue
            if isinstance(stmt, ast.Raise):
                if stmt.exc is not None:
                    target = stmt.exc.func if isinstance(stmt.exc, ast.Call) \
                        else stmt.exc
                    name = self.ctx.imports.resolve(target)
                    if name is None and isinstance(target, ast.Name):
                        name = target.id
                    if name is None and isinstance(target, ast.Attribute):
                        name = target.attr
                    if name is not None:
                        fn.raises.add(name)
                    self._scan_expr(fn, stmt.exc, cls, env, held, local_defs)
                if stmt.cause is not None:
                    self._scan_expr(fn, stmt.cause, cls, env, held,
                                    local_defs)
                continue
            self._record_mutation(fn, stmt, cls, held)
            for _name, value in ast.iter_fields(stmt):
                if isinstance(value, ast.expr):
                    self._scan_expr(fn, value, cls, env, held, local_defs)
                elif isinstance(value, list):
                    for sub in value:
                        if isinstance(sub, ast.expr):
                            self._scan_expr(fn, sub, cls, env, held,
                                            local_defs)
                        elif isinstance(sub, ast.stmt):
                            self._walk_stmts(fn, [sub], cls, env, held,
                                             local_defs)
                        elif isinstance(sub, ast.ExceptHandler):
                            if sub.type is not None:
                                self._scan_expr(fn, sub.type, cls, env,
                                                held, local_defs)
                            self._walk_stmts(fn, sub.body, cls, env, held,
                                             local_defs)
                        elif isinstance(sub, ast.match_case):
                            self._walk_stmts(fn, sub.body, cls, env, held,
                                             local_defs)

    def _walk_nested_def(self, fn: FunctionInfo,
                         stmt: ast.FunctionDef | ast.AsyncFunctionDef,
                         cls: str | None, env: dict[str, str],
                         held: tuple[str, ...],
                         local_defs: dict[str, str]) -> None:
        """Catalogue a nested def as its own function scope.

        The body runs at *call* time, so it starts with an empty held-lock
        stack (no false order edges from the definition site), but keeps
        the enclosing instance environment and ``self`` binding — closures
        capture them.  Decorators and defaults evaluate in the enclosing
        scope right now, under the current held set.
        """
        nq = f"{fn.qname}.<locals>.{stmt.name}"
        local_defs[stmt.name] = nq
        for dec in stmt.decorator_list:
            self._scan_expr(fn, dec, cls, env, held, local_defs)
        for default in (*stmt.args.defaults, *stmt.args.kw_defaults):
            if default is not None:
                self._scan_expr(fn, default, cls, env, held, local_defs)
        if nq in self.project.functions:  # pragma: no cover - dup names
            return
        nested = self._function(nq, None, stmt)
        self.project.functions[nq] = nested
        nested_env = dict(env)
        nested_env.update(self._instance_env(stmt))
        self._walk_stmts(nested, stmt.body, cls, nested_env, (),
                         dict(local_defs))

    def _scan_expr(self, fn: FunctionInfo, expr: ast.expr, cls: str | None,
                   env: dict[str, str], held: tuple[str, ...],
                   local_defs: dict[str, str] | None = None) -> None:
        """Record calls/yields/mutator-calls in one expression tree."""
        for node in ast.walk(expr):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                fn.has_yield = True
            elif isinstance(node, ast.Call):
                callee = self._resolve_call(node, cls, env, local_defs)
                fn.calls.append(CallSite(
                    node=node, raw=_describe_callee(node.func),
                    callee=callee, held=tuple(held)))
                self._maybe_rpc_site(fn, node)
                self._maybe_mutator_call(fn, node, cls, held)

    # -- shared-state mutations ------------------------------------------
    def _shared_target(self, node: ast.expr, cls: str | None) -> str | None:
        """Map an lvalue root to a tracked shared definition, if any."""
        if isinstance(node, ast.Name):
            target = f"{self.modname}:{node.id}"
            return target if target in self.project.shared_defs else None
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name):
            base = node.value.id
            if base in ("self", "cls") and cls is not None:
                target = f"{self.project.classes[cls].name}.{node.attr}"
                return target if target in self.project.shared_defs else None
            if base in self.local_classes:
                target = f"{base}.{node.attr}"
                return target if target in self.project.shared_defs else None
        return None

    def _record_mutation(self, fn: FunctionInfo, stmt: ast.stmt,
                         cls: str | None, held: tuple[str, ...]) -> None:
        hits: list[tuple[str, str, ast.AST]] = []
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Subscript):
                    hit = self._shared_target(t.value, cls)
                    if hit:
                        hits.append((hit, "subscript", t))
        elif isinstance(stmt, ast.AugAssign):
            node = stmt.target
            if isinstance(node, ast.Subscript):
                node = node.value
            hit = self._shared_target(node, cls)
            if hit:
                hits.append((hit, "augassign", stmt))
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Subscript):
                    hit = self._shared_target(t.value, cls)
                    if hit:
                        hits.append((hit, "del", t))
        for target, kind, node in hits:
            fn.mutations.append(MutationSite(
                target=target, kind=kind, lineno=node.lineno,
                col=node.col_offset, held=tuple(held)))

    def _maybe_mutator_call(self, fn: FunctionInfo, node: ast.Call,
                            cls: str | None, held: tuple[str, ...]) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or \
                func.attr not in MUTATOR_ATTRS:
            return
        hit = self._shared_target(func.value, cls)
        if hit:
            fn.mutations.append(MutationSite(
                target=hit, kind="method", lineno=node.lineno,
                col=node.col_offset, held=tuple(held)))

    # -- rpc sites --------------------------------------------------------
    def _maybe_rpc_site(self, fn: FunctionInfo, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in RPC_DISPATCH_ATTRS:
            method_pos, payload_from = 1, 2
        elif func.attr == RPC_CONTEXT_ATTR:
            method_pos, payload_from = 2, 3
        else:
            return
        if len(node.args) <= method_pos:
            return
        marg = node.args[method_pos]
        method = method_param = None
        if isinstance(marg, ast.Constant) and isinstance(marg.value, str):
            method = marg.value
        elif isinstance(marg, ast.Name) and \
                marg.id in fn.params.positional + fn.params.kwonly:
            method_param = marg.id
        if method is None and method_param is None:
            return
        n_args: int | None
        kw_names: tuple[str, ...]
        if func.attr == RPC_CONTEXT_ATTR:
            # rref_call carries the payload as (args_tuple, kwargs_dict)
            n_args, kw_names = None, ()
            if len(node.args) > payload_from and \
                    isinstance(node.args[payload_from], ast.Tuple):
                elts = node.args[payload_from].elts
                if not any(isinstance(e, ast.Starred) for e in elts):
                    n_args = len(elts)
            if len(node.args) > payload_from + 1 and \
                    isinstance(node.args[payload_from + 1], ast.Dict):
                keys = node.args[payload_from + 1].keys
                if all(isinstance(k, ast.Constant) and
                       isinstance(k.value, str) for k in keys):
                    kw_names = tuple(k.value for k in keys)
        else:
            payload = node.args[payload_from:]
            n_args = None if any(isinstance(a, ast.Starred)
                                 for a in payload) else len(payload)
            kw_names = tuple(kw.arg for kw in node.keywords
                             if kw.arg is not None)
        self.project.rpc_call_sites.append(RpcCallSite(
            relpath=self.ctx.relpath, node=node, attr=func.attr,
            function=fn.qname, method=method, method_param=method_param,
            n_args=n_args, kw_names=kw_names))

    # -- call resolution --------------------------------------------------
    def _resolve_call(self, node: ast.Call, cls: str | None,
                      env: dict[str, str],
                      local_defs: dict[str, str] | None = None) -> str | None:
        func = node.func
        project = self.project
        if isinstance(func, ast.Name):
            if local_defs and func.id in local_defs:
                return local_defs[func.id]
            if func.id in self.local_funcs:
                return self.local_funcs[func.id]
            if func.id in self.local_classes:
                return project.resolve_method_on(
                    self.local_classes[func.id], "__init__")
        name = self.ctx.imports.resolve(func)
        if name is not None:
            q = project.resolve_dotted(name)
            if q in project.functions:
                return q
            if q in project.classes:
                return project.resolve_method_on(q, "__init__")
        if not isinstance(func, ast.Attribute):
            return None
        if isinstance(func.value, ast.Name):
            recv = func.value.id
            if recv in ("self", "cls") and cls is not None:
                resolved = project.resolve_method_on(cls, func.attr)
                if resolved is not None:
                    return resolved
            if recv in env:
                return project.resolve_method_on(env[recv], func.attr)
            if recv in self.local_classes:
                return project.resolve_method_on(
                    self.local_classes[recv], func.attr)
        owners = project.method_index.get(func.attr, ())
        if len(owners) == 1:
            return project.resolve_method_on(owners[0], func.attr)
        return None

    # -- lock identity ----------------------------------------------------
    def _lock_id(self, expr: ast.expr, cls: str | None,
                 env: dict[str, str]) -> str | None:
        """Stable identity of a with-item if it acquires a lock.

        ``with self._lock:`` → ``Class._lock`` (declaring class, through
        bases); ``with MODULE_LOCK:`` → ``module:MODULE_LOCK``; a typed or
        unique lock attribute on another receiver → ``Owner.attr``.
        Anything else is not treated as a lock — a fabricated shared
        identity would invent lock-order edges that don't exist.
        """
        chain = _attr_chain(expr)
        if chain is None:
            return None
        project = self.project
        if len(chain) == 1:
            target = f"{self.modname}:{chain[0]}"
            return target if target in project.module_locks else None
        root, attr = chain[0], chain[-1]
        if root == "self" and cls is not None:
            resolved = project.lock_attr_of(cls, attr)
            if resolved is not None:
                return resolved
            if _looks_lockish(attr):
                return f"{project.classes[cls].name}.{attr}"
            return None
        if root in env:
            cinfo = project.classes.get(env[root])
            if cinfo is not None:
                resolved = project.lock_attr_of(env[root], attr)
                if resolved is not None:
                    return resolved
                if _looks_lockish(attr):
                    return f"{cinfo.name}.{attr}"
            return None
        owners = project.lock_attr_index.get(attr, ())
        if len(owners) == 1:
            return f"{project.classes[owners[0]].name}.{attr}"
        return None


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested def/class bodies."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def build_project(paths: Iterable[str | Path], *,
                  root: Path | None = None) -> Project:
    """Parse every .py under ``paths`` and assemble the program model."""
    project = Project(root)
    builders: list[_ModuleBuilder] = []
    for path in iter_python_files(paths):
        try:
            ctx = FileContext.parse(path, root=root)
        except SyntaxError:  # pragma: no cover - unparsable input skipped
            continue
        modname = module_name_for(ctx.relpath)
        if modname in project.modules:
            continue
        project.modules[modname] = ctx
        project.module_of_relpath[ctx.relpath] = modname
        builders.append(_ModuleBuilder(project, modname, ctx))
    for b in builders:
        b.declare()
    for b in builders:
        b.link()
    for modname, ctx in project.modules.items():
        deps = set()
        for target in ctx.imports.aliases.values():
            parts = target.split(".")
            for cut in range(len(parts), 0, -1):
                cand = ".".join(parts[:cut])
                if cand in project.modules and cand != modname:
                    deps.add(cand)
                    break
        project.imports[modname] = deps
    return project
