"""SARIF 2.1.0 export for ``cli analyze --sarif``.

The Static Analysis Results Interchange Format is what code-scanning
UIs (GitHub, VS Code SARIF viewers, ...) ingest; emitting it makes the
REP rule findings a first-class citizen next to commodity linters.  The
document shape follows the OASIS 2.1.0 schema: one ``run`` with the
``repro-analyze`` driver, the full rule catalog under
``tool.driver.rules`` (indexed by ``ruleIndex`` from each result), and
one ``result`` per violation with a ``physicalLocation`` whose region is
1-based (``startColumn = col + 1`` — :class:`~repro.analysis.lint.Violation`
columns are 0-based AST offsets).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.lint import Rule, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro-analyze"
TOOL_URI = "https://github.com/repro/repro/blob/main/docs/static-analysis.md"


def to_sarif(violations: Sequence[Violation],
             rules: Iterable[Rule]) -> dict:
    """Build the SARIF 2.1.0 document for one analyze run."""
    catalog = sorted({r.id: r for r in rules}.values(), key=lambda r: r.id)
    index = {r.id: i for i, r in enumerate(catalog)}
    results = []
    for v in sorted(violations):
        result = {
            "ruleId": v.rule,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": v.line,
                               "startColumn": v.col + 1},
                },
            }],
        }
        if v.rule in index:
            result["ruleIndex"] = index[v.rule]
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": [{
                        "id": r.id,
                        "name": type(r).__name__,
                        "shortDescription": {"text": r.title},
                        "defaultConfiguration": {"level": "error"},
                    } for r in catalog],
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"description": {
                    "text": "repository root the analyzer ran from"}},
            },
            "results": results,
        }],
    }
