"""Eraser-style lockset race detection for the thread runtime.

The classic lockset discipline: every shared location must be consistently
protected by at least one lock.  For each instrumented location the
detector intersects the set of locks held across all accesses; when the
candidate lockset goes empty while the location has been touched by more
than one thread with at least one write, a :class:`RaceViolation` is
recorded pairing the two conflicting accesses (thread, lockset, stack).
Unlike happens-before detection this flags the *discipline* violation even
when the racy interleaving did not occur on this run.

Instrumentation points:

* :class:`~repro.ppr.hashmap.ShardedMap` — ``lookup`` records a read,
  ``get_or_insert`` a write, keyed per map instance.  The hook is a class
  attribute (``_sanitizer``) that defaults to ``None``, so the off-path
  cost is one attribute check per *batched* call — zero overhead in
  practice.  :func:`install` / :func:`installed` flip it.
* :class:`~repro.rpc.thread_runtime.ThreadRuntime` — constructed with
  ``sanitize=True``, its cross-thread counters are recorded under
  detector-tracked locks (see :class:`TrackedLock`).

``RunRequest(sanitize=True)`` threads a detector through the engine →
cluster → obs bundle; violations surface on
``QueryRunResult.race_violations`` and the ``sanitizer.*`` metrics.
"""

from __future__ import annotations

import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass

#: stack frames retained per access record
STACK_DEPTH = 10


@dataclass(frozen=True)
class RaceAccess:
    """One instrumented access: who, what kind, under which locks.

    ``thread_id`` is a detector-assigned logical id, NOT the OS ident:
    ``threading.get_ident()`` is recycled as threads exit, so two
    short-lived threads can share an ident and mask a real race.
    """

    thread_id: int
    thread_name: str
    write: bool
    lockset: tuple[str, ...]
    stack: tuple[str, ...]

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        locks = ", ".join(self.lockset) if self.lockset else "no locks"
        site = self.stack[-1] if self.stack else "<unknown site>"
        return (f"{kind} by thread {self.thread_name!r} holding "
                f"[{locks}] at {site}")

    def as_dict(self) -> dict:
        return {"thread_id": self.thread_id,
                "thread_name": self.thread_name,
                "write": self.write,
                "lockset": list(self.lockset),
                "stack": list(self.stack)}


@dataclass(frozen=True)
class RaceViolation:
    """Two accesses to one location with an empty shared lockset."""

    location: str
    first: RaceAccess
    second: RaceAccess

    def describe(self) -> str:
        return (f"race on {self.location}: "
                f"{self.first.describe()} vs {self.second.describe()}")

    def as_dict(self) -> dict:
        return {"location": self.location,
                "first": self.first.as_dict(),
                "second": self.second.as_dict()}


class _LocationState:
    """Per-location lockset-algorithm state."""

    __slots__ = ("lockset", "threads", "write_seen", "last_by_thread",
                 "reported")

    def __init__(self, lockset: frozenset[str]) -> None:
        self.lockset = lockset
        self.threads: set[int] = set()
        self.write_seen = False
        self.last_by_thread: dict[int, RaceAccess] = {}
        self.reported = False


class RaceDetector:
    """Collects accesses and reports lockset-discipline violations."""

    def __init__(self, *, stack_depth: int = STACK_DEPTH) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._state: dict[str, _LocationState] = {}
        self._stack_depth = stack_depth
        self._next_uid = 0
        self.violations: list[RaceViolation] = []
        self.accesses = 0

    # -- lock tracking ---------------------------------------------------
    def _held(self) -> set[str]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = set()
        return held

    def on_acquire(self, name: str) -> None:
        self._held().add(name)

    def on_release(self, name: str) -> None:
        self._held().discard(name)

    def tracked_lock(self, name: str,
                     lock: threading.Lock | None = None) -> "TrackedLock":
        """A lock whose acquire/release updates this thread's lockset."""
        return TrackedLock(self, name, lock)

    # -- access recording ------------------------------------------------
    def _stack(self) -> tuple[str, ...]:
        frames = traceback.extract_stack(limit=self._stack_depth + 4)
        out = [f"{f.filename}:{f.lineno} in {f.name}" for f in frames
               if not f.filename.endswith("analysis/race.py")]
        return tuple(out[-self._stack_depth:])

    def record(self, location: str, *, write: bool) -> None:
        """Record one access to ``location`` from the current thread."""
        held = frozenset(self._held())
        stack = self._stack()
        thread_name = threading.current_thread().name
        with self._lock:
            uid = getattr(self._tls, "uid", None)
            if uid is None:
                uid = self._tls.uid = self._next_uid
                self._next_uid += 1
            access = RaceAccess(
                thread_id=uid,
                thread_name=thread_name,
                write=write,
                lockset=tuple(sorted(held)),
                stack=stack,
            )
            self.accesses += 1
            st = self._state.get(location)
            if st is None:
                st = self._state[location] = _LocationState(held)
            else:
                st.lockset = st.lockset & held
            st.threads.add(access.thread_id)
            st.write_seen = st.write_seen or write
            if (not st.reported and len(st.threads) > 1 and st.write_seen
                    and not st.lockset):
                other = self._conflicting(st, access)
                if other is not None:
                    st.reported = True
                    self.violations.append(
                        RaceViolation(location, other, access)
                    )
            st.last_by_thread[access.thread_id] = access

    @staticmethod
    def _conflicting(st: _LocationState,
                     access: RaceAccess) -> RaceAccess | None:
        """The best prior access to pair with: another thread, prefer writes."""
        others = [a for tid, a in sorted(st.last_by_thread.items())
                  if tid != access.thread_id]
        if not others:
            return None
        writes = [a for a in others if a.write]
        return (writes or others)[0]

    # -- reporting -------------------------------------------------------
    def report(self) -> tuple[RaceViolation, ...]:
        with self._lock:
            return tuple(self.violations)

    def summary(self) -> dict:
        """Structured record for obs / JSON surfaces."""
        with self._lock:
            return {
                "accesses": self.accesses,
                "locations": len(self._state),
                "violations": [v.as_dict() for v in self.violations],
            }


class TrackedLock:
    """A ``threading.Lock`` wrapper feeding the detector's lockset."""

    __slots__ = ("_detector", "name", "_inner")

    def __init__(self, detector: RaceDetector, name: str,
                 lock: threading.Lock | None = None) -> None:
        self._detector = detector
        self.name = name
        self._inner = lock if lock is not None else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._detector.on_acquire(self.name)
        return got

    def release(self) -> None:
        self._detector.on_release(self.name)
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


# ---------------------------------------------------------------------------
# global instrumentation hooks
# ---------------------------------------------------------------------------

def install(detector: RaceDetector) -> None:
    """Point the ShardedMap class-level hook at ``detector``."""
    from repro.ppr.hashmap import ShardedMap

    ShardedMap._sanitizer = detector


def uninstall(detector: RaceDetector | None = None) -> None:
    """Clear the ShardedMap hook (only if it is ``detector``, when given)."""
    from repro.ppr.hashmap import ShardedMap

    if detector is None or ShardedMap._sanitizer is detector:
        ShardedMap._sanitizer = None


@contextmanager
def installed(detector: RaceDetector):
    """Context manager: install for the block, restore the previous hook."""
    from repro.ppr.hashmap import ShardedMap

    previous = ShardedMap._sanitizer
    ShardedMap._sanitizer = detector
    try:
        yield detector
    finally:
        ShardedMap._sanitizer = previous
