"""The custom AST lint engine.

A deliberately small framework: one :class:`FileContext` per source file
(parsed tree, import-alias resolution, pragma comments), a :class:`Rule`
base class whose subclasses yield :class:`Violation` records, and
:func:`run_lint` tying discovery, scoping, and the two allowlist layers
together:

* **pragma comments** — ``# repro: allow=REP001`` (optionally a comma list,
  optionally followed by a free-text reason) suppresses the named rules on
  its own line and on the line directly below, so an own-line pragma can
  annotate the statement it precedes;
* **config allowlist** — the ``[tool.repro.analysis]`` table in
  ``pyproject.toml`` carries ``allow = ["REP001:src/repro/utils/timer.py"]``
  entries: ``<rule>:<repo-relative glob>`` pairs exempting whole files
  (``*`` matches every rule).

Rules are *scoped*: a rule with ``scope_dirs`` only fires in files whose
path contains one of those directory names (e.g. REP003 only inside
``simt``/``rpc``/``engine``/``partition``), mirroring where the hazard
class actually bites.  The concrete REP001–REP006 rules live in
:mod:`repro.analysis.rules`.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: the pragma marker recognized in comments: ``# repro: allow=REP001,REP005``
PRAGMA_MARKER = "repro: allow="


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit, pinned to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


class ImportMap:
    """Alias -> canonical dotted-name resolution for one module.

    Tracks ``import numpy as np`` (``np`` -> ``numpy``) and
    ``from time import perf_counter as pc`` (``pc`` -> ``time.perf_counter``)
    so rules can match call sites against canonical names regardless of how
    the module spelled its imports.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.aliases[name] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of a ``Name``/``Attribute`` chain, or None.

        ``None`` means the chain is rooted in a local variable (or is not a
        plain attribute chain) and cannot be resolved statically.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.aliases.get(node.id)
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))


def collect_pragmas(source: str) -> dict[int, set[str]]:
    """Map line number -> rule IDs allowed there by ``# repro: allow=`` pragmas.

    A pragma suppresses its own line and the line directly below it.
    """
    allowed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except tokenize.TokenError:  # pragma: no cover - malformed fixture input
        return allowed
    for line, text in comments:
        body = text.lstrip("#").strip()
        if not body.startswith(PRAGMA_MARKER):
            continue
        spec = body[len(PRAGMA_MARKER):].split()[0] if \
            body[len(PRAGMA_MARKER):].strip() else ""
        rules = {r.strip() for r in spec.split(",") if r.strip()}
        if not rules:
            continue
        for target in (line, line + 1):
            allowed.setdefault(target, set()).update(rules)
    return allowed


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    relpath: str                      # posix, repo-root-relative when possible
    source: str
    tree: ast.Module
    imports: ImportMap
    pragmas: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, root: Path | None = None) -> "FileContext":
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        relpath = path.as_posix()
        if root is not None:
            try:
                relpath = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                pass
        return cls(path=path, relpath=relpath, source=source, tree=tree,
                   imports=ImportMap(tree),
                   pragmas=collect_pragmas(source))

    @property
    def parts(self) -> tuple[str, ...]:
        return tuple(Path(self.relpath).parts)

    def allowed_by_pragma(self, rule_id: str, line: int) -> bool:
        rules = self.pragmas.get(line)
        return bool(rules) and (rule_id in rules or "*" in rules)


class Rule:
    """Base class: subclasses set ``id``/``title`` and implement ``check``."""

    id: str = "REP000"
    title: str = ""
    #: directory names this rule is scoped to; empty = the whole tree
    scope_dirs: tuple[str, ...] = ()
    #: set True on per-file rules that refine their verdicts through the
    #: whole-program model; :func:`run_lint` then builds a
    #: :class:`~repro.analysis.callgraph.Project` and assigns it to
    #: ``self.project`` before checking (None when linting a single file
    #: through :func:`lint_file` — rules must degrade gracefully)
    wants_project: bool = False
    #: the current whole-program model, managed by :func:`run_lint`
    project = None

    def applies_to(self, ctx: FileContext) -> bool:
        if not self.scope_dirs:
            return True
        return any(part in self.scope_dirs for part in ctx.parts)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(path=ctx.relpath, line=node.lineno,
                         col=node.col_offset, rule=self.id, message=message)


class ProjectRule(Rule):
    """A whole-program rule: checked once against the assembled project.

    ``check_project`` yields violations anywhere in the linted tree;
    :func:`run_lint` applies the same scope/pragma/config filters a
    per-file rule gets, resolved against the file each violation lands
    in.  The per-file ``check`` hook is a no-op.
    """

    wants_project = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project) -> Iterator[Violation]:
        raise NotImplementedError


@dataclass(frozen=True)
class AnalysisConfig:
    """The ``[tool.repro.analysis]`` table: file-level allowlist entries."""

    allow: tuple[str, ...] = ()

    def allows(self, rule_id: str, relpath: str) -> bool:
        for entry in self.allow:
            rid, _, pattern = entry.partition(":")
            if rid not in (rule_id, "*"):
                continue
            if fnmatch.fnmatch(relpath, pattern or "*"):
                return True
        return False


def load_config(pyproject: str | Path) -> AnalysisConfig:
    """Read ``[tool.repro.analysis]`` from a ``pyproject.toml``."""
    import tomllib

    path = Path(pyproject)
    if not path.exists():
        return AnalysisConfig()
    data = tomllib.loads(path.read_text())
    table = data.get("tool", {}).get("repro", {}).get("analysis", {})
    allow = table.get("allow", [])
    if not isinstance(allow, list) or \
            not all(isinstance(e, str) for e in allow):
        raise ValueError(
            "[tool.repro.analysis].allow must be a list of "
            "'<RULE>:<glob>' strings"
        )
    return AnalysisConfig(allow=tuple(allow))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic .py file sequence."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_file(path: Path, rules: Iterable[Rule], *,
              config: AnalysisConfig | None = None,
              root: Path | None = None) -> list[Violation]:
    """Run ``rules`` over one file, applying both allowlist layers."""
    ctx = FileContext.parse(path, root=root)
    return lint_ctx(ctx, rules, config=config)


def lint_ctx(ctx: FileContext, rules: Iterable[Rule], *,
             config: AnalysisConfig | None = None) -> list[Violation]:
    """Run per-file ``rules`` over one parsed context."""
    config = config if config is not None else AnalysisConfig()
    out: list[Violation] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        if config.allows(rule.id, ctx.relpath):
            continue
        for v in rule.check(ctx):
            if ctx.allowed_by_pragma(v.rule, v.line):
                continue
            out.append(v)
    return sorted(out)


def run_lint(paths: Iterable[str | Path], *,
             rules: Iterable[Rule] | None = None,
             config: AnalysisConfig | None = None,
             root: Path | None = None,
             only: Iterable[str] | None = None,
             project=None) -> list[Violation]:
    """Lint every .py file under ``paths``; returns sorted violations.

    When any rule ``wants_project`` (the interprocedural REP008–REP010,
    plus the project-refined REP004/REP006), the whole-program model is
    built once over ``paths`` and shared: per-file rules read it through
    ``self.project``, :class:`ProjectRule` subclasses are checked against
    it directly, with scope/pragma/config filters resolved per violation.

    ``only`` restricts the *reported* violations to the given repo-relative
    paths without shrinking the analyzed program — ``--changed-only``
    keeps whole-program precision (orphan handlers, lock cycles spanning
    unchanged files stay visible to the analysis, just unreported).
    ``project`` lets a caller that already built the model pass it in.
    """
    from repro.analysis.rules import ALL_RULES

    rules = list(ALL_RULES if rules is None else rules)
    config = config if config is not None else AnalysisConfig()
    if project is None and any(r.wants_project for r in rules):
        from repro.analysis.callgraph import build_project

        project = build_project(paths, root=root)
    for rule in rules:
        rule.project = project  # always (re)set: no stale cross-run state
    out: list[Violation] = []
    contexts: dict[str, FileContext] = {}
    by_path = {} if project is None else {
        ctx.path: ctx for ctx in project.modules.values()
    }
    for path in iter_python_files(paths):
        if project is not None:
            # reuse the project's parsed contexts (and skip files the
            # project skipped as unparsable)
            ctx = by_path.get(path)
            if ctx is None:
                continue
        else:
            try:
                ctx = FileContext.parse(path, root=root)
            except SyntaxError:
                continue
        if ctx.relpath in contexts:
            continue
        contexts[ctx.relpath] = ctx
        out.extend(lint_ctx(ctx, rules, config=config))
    for rule in rules:
        if not isinstance(rule, ProjectRule) or project is None:
            continue
        for v in rule.check_project(project):
            ctx = contexts.get(v.path) or project.ctx_for(v.path)
            if ctx is not None:
                if not rule.applies_to(ctx):
                    continue
                if ctx.allowed_by_pragma(v.rule, v.line):
                    continue
            if config.allows(v.rule, v.path):
                continue
            out.append(v)
    if only is not None:
        allowed_paths = set(only)
        out = [v for v in out if v.path in allowed_paths]
    return sorted(out)
