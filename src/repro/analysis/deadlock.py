"""Scheduler deadlock diagnosis: the wait-for graph.

When the virtual-time scheduler's event queue drains while spawned
coroutines are still unfinished, somebody is waiting on a future nobody
will resolve.  The bare fact ("deadlock: processes never finished") names
the victims but not the cause; :func:`diagnose` reconstructs the wait-for
graph from each blocked :class:`~repro.simt.process.SimProcess`'s recorded
``waiting_on`` futures:

* every blocked coroutine is listed with the tags of the unresolved
  futures it awaits (RPC futures carry ``rpc:<owner>.<method>`` tags,
  completion futures ``<name>.completion``);
* futures that are another process's completion become edges, and cycles
  over those edges — true circular waits — are reported explicitly;
* everything is deterministic: processes sorted by name, cycles
  canonicalized to start at their smallest node.

:meth:`~repro.simt.scheduler.Scheduler.run` calls this automatically and
embeds the rendered report in the :class:`~repro.errors.SimulationError`
it raises, so a stuck run names the blocked coroutine and the awaited
future instead of just dying.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BlockedCoroutine:
    """One unfinished process and the unresolved futures it awaits."""

    name: str
    pending: tuple[str, ...]      # labels of unresolved awaited futures
    waits_on: tuple[str, ...]     # process names among those futures

    def describe(self) -> str:
        what = ", ".join(self.pending) if self.pending else \
            "<no recorded future — never resumed>"
        suffix = ""
        if self.waits_on:
            suffix = " (waits on process " + ", ".join(self.waits_on) + ")"
        return f"{self.name} awaits {what}{suffix}"


@dataclass(frozen=True)
class DeadlockReport:
    """Wait-for graph snapshot of a drained-but-unfinished scheduler."""

    blocked: tuple[BlockedCoroutine, ...]
    cycles: tuple[tuple[str, ...], ...]

    def render(self) -> str:
        lines = [f"{len(self.blocked)} coroutine(s) blocked with an "
                 "empty event queue:"]
        lines.extend(f"  {b.describe()}" for b in self.blocked)
        for cycle in self.cycles:
            lines.append("  circular wait: " + " -> ".join(cycle + cycle[:1]))
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "blocked": [{"name": b.name, "pending": list(b.pending),
                         "waits_on": list(b.waits_on)}
                        for b in self.blocked],
            "cycles": [list(c) for c in self.cycles],
        }


def _future_label(fut) -> str:
    tag = getattr(fut, "tag", None)
    return tag if tag else f"<untagged {type(fut).__name__}>"


def diagnose(scheduler) -> DeadlockReport | None:
    """Build the wait-for graph of a drained scheduler; None if no one is stuck.

    Duck-typed over the scheduler's ``processes`` mapping so this module
    imports nothing from :mod:`repro.simt` (the scheduler imports *us*
    lazily when it detects the stall).
    """
    completion_owner = {
        id(proc.completion): name
        for name, proc in scheduler.processes.items()
        if getattr(proc, "completion", None) is not None
    }
    blocked: list[BlockedCoroutine] = []
    edges: dict[str, list[str]] = {}
    for name in sorted(scheduler.processes):
        proc = scheduler.processes[name]
        if getattr(proc, "_body", None) is None or proc.finished:
            continue
        pending = tuple(
            _future_label(f) for f in getattr(proc, "waiting_on", ())
            if not f.done
        )
        waits_on = tuple(
            completion_owner[id(f)] for f in getattr(proc, "waiting_on", ())
            if not f.done and id(f) in completion_owner
        )
        blocked.append(BlockedCoroutine(name=name, pending=pending,
                                        waits_on=waits_on))
        edges[name] = list(waits_on)
    if not blocked:
        return None
    return DeadlockReport(blocked=tuple(blocked),
                          cycles=_find_cycles(edges))


def _find_cycles(edges: dict[str, list[str]]) -> tuple[tuple[str, ...], ...]:
    """Distinct cycles over the wait-for edges, canonicalized and sorted."""
    seen: set[tuple[str, ...]] = set()
    for start in sorted(edges):
        path: list[str] = []
        index: dict[str, int] = {}
        node = start
        while True:
            if node in index:  # followed an edge back into the path
                cycle = tuple(path[index[node]:])
                pivot = cycle.index(min(cycle))
                seen.add(cycle[pivot:] + cycle[:pivot])
                break
            index[node] = len(path)
            path.append(node)
            nxt = [n for n in edges.get(node, ()) if n in edges]
            if not nxt:  # dead end — no cycle along this walk
                break
            node = nxt[0]
    return tuple(sorted(seen))
