"""Hot-path rules: the zero-copy read path must stay zero-copy.

REP011 guards the three modules on the local-fetch hot path —
``storage/shard.py``, ``storage/neighbor_batch.py``, ``storage/fetch.py``
— against allocation creep.  Any ``.copy()`` method call, ``np.repeat``
or ``np.concatenate`` in those files allocates and fills a fresh buffer
per request, which is exactly the cost the arena-view read path exists
to avoid.  Each call must either go away or carry an explicit
``# repro: allow=REP011 <reason>`` pragma naming why the copy is
sanctioned (copy-on-serialize, non-contiguous gather fallback, staged
mutation preimages).

The rule is a per-file AST scan: attribute calls named ``copy`` and
calls resolving through the import map to ``numpy.repeat`` /
``numpy.concatenate``.  Everything outside the three scoped files is
ignored — copies are fine where they are not per-request.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import FileContext, Rule, Violation

#: repo-relative path suffixes the rule is scoped to
HOT_PATH_FILES = (
    "storage/shard.py",
    "storage/neighbor_batch.py",
    "storage/fetch.py",
)

#: canonical numpy callables that gather/concatenate into fresh buffers
NUMPY_ALLOCATORS = ("numpy.repeat", "numpy.concatenate")


class Rep011HotPathCopy(Rule):
    """Flag per-request allocations on the zero-copy shard read path."""

    id = "REP011"
    title = "allocation on the zero-copy read path without a pragma"

    def applies_to(self, ctx: FileContext) -> bool:
        return any(ctx.relpath.endswith(suffix) for suffix in HOT_PATH_FILES)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "copy" \
                    and not node.args and not node.keywords:
                yield self.violation(
                    ctx, node,
                    "'.copy()' on the zero-copy read path allocates per "
                    "request; slice the arena instead, or annotate the "
                    "sanctioned copy with '# repro: allow=REP011 <reason>'",
                )
                continue
            resolved = ctx.imports.resolve(func)
            if resolved in NUMPY_ALLOCATORS:
                short = resolved.replace("numpy.", "np.")
                yield self.violation(
                    ctx, node,
                    f"'{short}' gathers into a fresh buffer on the "
                    f"zero-copy read path; prefer contiguous-run slicing, "
                    f"or annotate the fallback with "
                    f"'# repro: allow=REP011 <reason>'",
                )
