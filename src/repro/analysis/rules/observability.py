"""Observability rules: metric names must match the central catalog.

REP007 pins every ``MetricsRegistry.inc/set/observe`` call site whose
first argument is a string literal (or an f-string with a literal head)
to the namespaces declared in :mod:`repro.obs.metrics_catalog`.  The
catalog mirrors the counter tables in ``docs/observability.md``, so a
typo'd or undeclared namespace (``serv.completed``, ``cache.hits``)
fails ``python -m repro.cli analyze`` instead of silently forking the
metric surface that the cross-runtime differential tests and the bench
observatory read.

Dynamic names (variables, computed keys) are skipped — only literals
can drift silently.  F-strings are judged by their leading literal
fragment (``f"serve.tenant.{t}.admitted"`` passes through ``serve``);
an f-string that *starts* with a placeholder cannot be judged and is
skipped too.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import FileContext, Rule, Violation
from repro.obs.metrics_catalog import METRIC_NAMESPACES, is_catalogued

#: MetricsRegistry convenience methods that take an instrument name first
METRIC_METHODS = ("inc", "set", "observe")


def _literal_head(node: ast.expr) -> str | None:
    """The statically-known leading text of a name argument, if any."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


class Rep007MetricNamespace(Rule):
    """Flag metric-name literals outside the catalogued namespaces."""

    id = "REP007"
    title = "metric name outside the namespaces in obs/metrics_catalog.py"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) \
                    or func.attr not in METRIC_METHODS:
                continue
            name = _literal_head(node.args[0])
            if name is None or is_catalogued(name):
                continue
            yield self.violation(
                ctx, node,
                f"metric name {name!r} is outside the declared namespaces "
                f"({', '.join(sorted(METRIC_NAMESPACES))}); declare it in "
                f"repro/obs/metrics_catalog.py and document it in "
                f"docs/observability.md",
            )
