"""The repo-specific rule registry (REP001–REP011).

Determinism rules (:mod:`repro.analysis.rules.determinism`):

* **REP001** — wall-clock calls outside the sanctioned
  ``utils/timer.py`` shims;
* **REP002** — unseeded randomness outside ``utils/rng.py``;
* **REP003** — ordering-nondeterministic iteration (``set`` /
  ``dict.keys()``) in scheduling / RPC dispatch / partition paths.

Concurrency rules (:mod:`repro.analysis.rules.concurrency`):

* **REP004** — statically unsizeable payloads at ``rpc_async`` /
  ``rpc`` call sites (cross-checked against the
  :mod:`repro.rpc.serialization` cost model);
* **REP005** — blocking calls inside simt coroutines;
* **REP006** — broad ``except`` clauses that can swallow injected faults
  in retry paths.

Observability rules (:mod:`repro.analysis.rules.observability`):

* **REP007** — metric-name literals passed to
  ``MetricsRegistry.inc/set/observe`` outside the namespaces declared in
  :mod:`repro.obs.metrics_catalog` (drift against
  ``docs/observability.md``).

Whole-program rules (:mod:`repro.analysis.rules.interprocedural`),
checked against the :mod:`repro.analysis.callgraph` project model:

* **REP008** — lock-acquisition-order cycles across the call graph
  (static deadlock complement of ``analysis/deadlock.py``);
* **REP009** — module-level / class-variable containers mutated with no
  lock held on any call path (static complement of ``analysis/race.py``);
* **REP010** — RPC dispatch literals must bind a registered
  ``@rpc_handler`` with compatible arity; orphan handlers are flagged.

Hot-path rules (:mod:`repro.analysis.rules.hotpath`):

* **REP011** — ``.copy()`` / ``np.repeat`` / ``np.concatenate`` in the
  zero-copy read-path modules (``storage/shard.py``,
  ``storage/neighbor_batch.py``, ``storage/fetch.py``) without an
  explicit ``# repro: allow=REP011`` pragma naming the sanctioned copy.
"""

from __future__ import annotations

from repro.analysis.rules.concurrency import (
    Rep004UnsizeablePayload,
    Rep005BlockingCall,
    Rep006BroadExcept,
)
from repro.analysis.rules.determinism import (
    Rep001WallClock,
    Rep002UnseededRandomness,
    Rep003UnorderedIteration,
)
from repro.analysis.rules.hotpath import Rep011HotPathCopy
from repro.analysis.rules.interprocedural import (
    Rep008LockOrder,
    Rep009SharedMutableEscape,
    Rep010RpcContract,
)
from repro.analysis.rules.observability import Rep007MetricNamespace

#: every registered rule, in ID order
ALL_RULES = (
    Rep001WallClock(),
    Rep002UnseededRandomness(),
    Rep003UnorderedIteration(),
    Rep004UnsizeablePayload(),
    Rep005BlockingCall(),
    Rep006BroadExcept(),
    Rep007MetricNamespace(),
    Rep008LockOrder(),
    Rep009SharedMutableEscape(),
    Rep010RpcContract(),
    Rep011HotPathCopy(),
)

ALL_RULE_IDS = tuple(rule.id for rule in ALL_RULES)


def get_rules(ids=None):
    """Resolve rule IDs to rule instances (all rules when ``ids`` is None)."""
    if not ids:
        return list(ALL_RULES)
    by_id = {rule.id: rule for rule in ALL_RULES}
    unknown = [i for i in ids if i not in by_id]
    if unknown:
        raise KeyError(
            f"unknown rule id(s) {unknown}; known: {list(by_id)}"
        )
    return [by_id[i] for i in ids]


__all__ = [
    "ALL_RULES",
    "ALL_RULE_IDS",
    "Rep001WallClock",
    "Rep002UnseededRandomness",
    "Rep003UnorderedIteration",
    "Rep004UnsizeablePayload",
    "Rep005BlockingCall",
    "Rep006BroadExcept",
    "Rep007MetricNamespace",
    "Rep008LockOrder",
    "Rep009SharedMutableEscape",
    "Rep010RpcContract",
    "Rep011HotPathCopy",
    "get_rules",
]
