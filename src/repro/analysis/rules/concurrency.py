"""Concurrency rules: RPC payloads, blocking calls, swallowed faults.

These guard the runtime-equivalence contract between the virtual-time
scheduler and :class:`~repro.rpc.thread_runtime.ThreadRuntime`: payloads
must be sizeable by the RPC cost model on both runtimes, coroutines must
suspend only through simt effects (a real block stalls one runtime but not
the other), and injected faults must reach the retry layer instead of
dying in a broad ``except``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import FileContext, Rule, Violation

#: RRef dispatch surfaces whose arguments travel as RPC payloads
RPC_CALL_ATTRS = ("rpc_async", "rpc")

#: canonical names whose call blocks the OS thread
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
})

#: attribute names that are file I/O regardless of receiver
FILE_IO_ATTRS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

BROAD_EXCEPTION_NAMES = ("Exception", "BaseException")


class Rep004UnsizeablePayload(Rule):
    """Arguments at ``rpc_async``/``rpc`` call sites the cost model rejects.

    Every RPC argument is priced by
    :func:`repro.rpc.serialization.payload_sizes`; a payload it cannot size
    (lambdas, generators, arbitrary objects without ``rpc_payload()``)
    raises at dispatch on both runtimes.  Literal arguments are
    cross-checked against the cost model itself at lint time; lambdas and
    generator expressions are rejected outright.

    Light dataflow: a plain-name argument assigned exactly once in the
    enclosing scope is resolved to its assigned value and judged by the
    same rules, so ``handler = lambda ...; ref.rpc_async("m", handler)`` is
    caught too.  Names bound more than once, bound by loops/with/walrus
    targets, or declared global/nonlocal are left unjudged, and a value
    produced by ``.rpc_payload()`` is accepted as sizeable by
    construction.

    With the whole-program model available, the dataflow follows one
    call-graph hop: an argument (or single-assignment value) that is a
    call into a project function whose *every* return expression is
    statically unsizeable is flagged too — ``ref.rpc_async("m",
    make_handler())`` where ``make_handler`` returns a lambda.
    """

    id = "REP004"
    title = "statically unsizeable RPC payload"
    wants_project = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for scope in self._scopes(ctx.tree):
            env = self._scope_env(scope)
            for node in _own_nodes(scope):
                if not isinstance(node, ast.Call) or \
                        not isinstance(node.func, ast.Attribute) or \
                        node.func.attr not in RPC_CALL_ATTRS:
                    continue
                values = list(node.args) + [kw.value for kw in node.keywords]
                for arg in values:
                    if isinstance(arg, ast.Starred):
                        arg = arg.value
                    hit = self._check_arg(arg, env)
                    if hit is None:
                        hit = self._check_call_returns(ctx, arg, env)
                    if hit is not None:
                        yield self.violation(
                            ctx, arg,
                            f"{node.func.attr}() argument {hit} — the "
                            "rpc.serialization cost model cannot size it; "
                            "send arrays/scalars/containers or a type "
                            "implementing rpc_payload()",
                        )

    def _check_call_returns(self, ctx: FileContext, arg: ast.expr,
                            env: dict[str, ast.expr]) -> str | None:
        """One call-graph hop: judge the returns of a called project fn.

        Flags only when every return expression of the callee is judged
        unsizeable — a single sizeable (or unjudgeable) return path
        clears the argument, keeping the check conservative.
        """
        project = self.project
        if project is None:
            return None
        call = arg
        via = ""
        if isinstance(arg, ast.Name):
            value = env.get(arg.id)
            if value is not None and isinstance(value, ast.Call):
                call = value
                via = f" via local {arg.id!r}"
        if not isinstance(call, ast.Call):
            return None
        site = None
        for fq, fn in project.functions.items():
            if fn.relpath != ctx.relpath:
                continue
            for c in fn.calls:
                if (c.node.lineno, c.node.col_offset) == \
                        (call.lineno, call.col_offset):
                    site = c
                    break
            if site is not None:
                break
        if site is None or site.callee is None:
            return None
        callee = project.functions.get(site.callee)
        if callee is None:
            return None
        returns = [n.value for n in _own_nodes(callee.node)
                   if isinstance(n, ast.Return) and n.value is not None]
        if not returns:
            return None
        hits = [self._judge(r) for r in returns]
        if all(h is not None for h in hits):
            short = site.callee.split(":")[-1]
            return (f"{hits[0]} (returned by {short}(){via}; every return "
                    "path is unsizeable)")
        return None

    @staticmethod
    def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
        """The module plus every function and class body (however nested).

        ``_own_nodes`` stops at nested definitions, so together the scopes
        tile the file: every call site is judged exactly once, against the
        assignment environment of its innermost scope.
        """
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                yield node

    @staticmethod
    def _scope_env(scope: ast.AST) -> dict[str, ast.expr]:
        """Names assigned exactly once in ``scope``, mapped to their value.

        Only simple single-target assignments qualify; any other binding
        (re-assignment, loop/with/walrus targets, global/nonlocal) makes
        the name ambiguous and drops it from the environment.
        """
        stores: dict[str, int] = {}
        banned: set[str] = set()
        args = getattr(scope, "args", None)
        if args is not None:
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs,
                      *([args.vararg] if args.vararg else []),
                      *([args.kwarg] if args.kwarg else [])]:
                banned.add(a.arg)
        for node in _own_nodes(scope):
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, (ast.Store, ast.Del)):
                stores[node.id] = stores.get(node.id, 0) + 1
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                banned.update(node.names)
        env: dict[str, ast.expr] = {}
        for node in _own_nodes(scope):
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                target = node.targets[0].id
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name) and \
                    node.value is not None:
                target = node.target.id
            if target is not None and stores.get(target) == 1 and \
                    target not in banned:
                env[target] = node.value
        return env

    @classmethod
    def _check_arg(cls, arg: ast.expr,
                   env: dict[str, ast.expr]) -> str | None:
        hit = cls._judge(arg)
        if hit is not None:
            return hit
        if isinstance(arg, ast.Name):
            value = env.get(arg.id)
            if value is None or cls._is_sized_by_construction(value):
                return None
            hit = cls._judge(value)
            if hit is not None:
                return (f"{hit} (via local {arg.id!r} assigned at "
                        f"line {value.lineno})")
        return None

    @staticmethod
    def _is_sized_by_construction(value: ast.expr) -> bool:
        """``x = something.rpc_payload()`` results are sizeable tuples."""
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "rpc_payload")

    @staticmethod
    def _judge(arg: ast.expr) -> str | None:
        if isinstance(arg, ast.Lambda):
            return "is a lambda"
        if isinstance(arg, ast.GeneratorExp):
            return "is a generator expression"
        try:
            value = ast.literal_eval(arg)
        except (ValueError, SyntaxError):
            return None  # not a literal; cannot judge statically
        from repro.rpc.serialization import payload_sizes

        try:
            payload_sizes(value)
        except TypeError as exc:
            return f"is rejected by payload_sizes ({exc})"
        return None


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested def/class."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _own_nodes(func))


def _receiver_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class Rep005BlockingCall(Rule):
    """Blocking calls inside simt coroutine bodies.

    A driver coroutine suspends only by yielding :mod:`repro.simt.events`
    effects.  A real block — ``time.sleep``, file I/O, ``queue.get()``
    with no timeout — freezes the single-threaded virtual-time scheduler
    and desynchronizes the two runtimes.  Model delays with ``Sleep``/
    ``Charge`` effects instead; do I/O outside the driver.
    """

    id = "REP005"
    title = "blocking call inside a simt coroutine"
    scope_dirs = ("simt", "rpc", "engine", "ppr", "walk", "storage",
                  "serving", "stream")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_generator(func):
                continue
            for node in _own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                hit = self._describe_blocking(ctx, node)
                if hit is not None:
                    yield self.violation(
                        ctx, node,
                        f"{hit} blocks the coroutine {func.name!r} — "
                        "suspend via simt effects (Sleep/Charge/Wait) "
                        "and keep I/O out of driver bodies",
                    )

    @staticmethod
    def _describe_blocking(ctx: FileContext, node: ast.Call) -> str | None:
        name = ctx.imports.resolve(node.func)
        if name in BLOCKING_CALLS:
            return f"{name}()"
        if isinstance(node.func, ast.Name) and node.func.id in ("open",
                                                                "input"):
            return f"{node.func.id}()"
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in FILE_IO_ATTRS:
                return f".{attr}() file I/O"
            if attr in ("get", "join", "acquire"):
                receiver = _receiver_name(node.func.value) or ""
                looks_blocking = "queue" in receiver.lower() or \
                    "lock" in receiver.lower() or receiver == "q"
                has_timeout = any(kw.arg == "timeout"
                                  for kw in node.keywords)
                if looks_blocking and not has_timeout:
                    return f"{receiver}.{attr}() without a timeout"
        return None


#: bare-name calls that cannot raise injected fault types
_SAFE_BUILTINS = frozenset({
    "int", "float", "str", "bool", "bytes", "len", "repr", "format",
    "sorted", "list", "dict", "set", "tuple", "frozenset", "min", "max",
    "sum", "abs", "round", "isinstance", "issubclass", "getattr",
    "hasattr", "setattr", "enumerate", "zip", "range", "print", "id",
    "hash", "iter", "next", "type", "vars", "divmod",
})


class Rep006BroadExcept(Rule):
    """Broad ``except`` clauses that can swallow injected faults.

    The fault-injection layer raises typed errors
    (:class:`~repro.errors.RpcTimeoutError`,
    :class:`~repro.errors.WorkerCrashedError`) that must reach the retry /
    degradation logic.  A bare ``except`` or ``except Exception`` in an
    rpc/engine/ppr/simt path that does not re-raise eats those faults and
    turns a chaos test into a silent wrong answer.  Catch the specific
    error types, or re-raise (a ``raise`` anywhere in the handler counts).

    With the whole-program model available (``run_lint``), exception flow
    is traced through the call graph: the broad except is only a
    violation when its ``try`` body can actually *see* an injected fault
    — it dispatches RPC, yields (simt effects deliver faults by throwing
    at the yield point), raises one itself, calls a project function
    whose transitive callees can, or calls something unresolvable (a
    dynamic callable may wrap any of the above).  Faults originate only
    inside this codebase, so resolvable external calls (``np.argsort``,
    ``dict.get``) are provably safe and no longer flagged.
    """

    id = "REP006"
    title = "broad except can swallow injected faults"
    scope_dirs = ("rpc", "simt", "engine", "ppr")
    wants_project = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if not self._is_broad(handler.type):
                    continue
                if any(isinstance(n, ast.Raise) for child in handler.body
                       for n in ast.walk(child)):
                    continue
                if not self._try_sees_fault(ctx, node):
                    continue
                caught = "bare except" if handler.type is None else \
                    f"except {ast.unparse(handler.type)}"
                yield self.violation(
                    ctx, handler,
                    f"{caught} without re-raise can swallow injected "
                    "RpcTimeoutError/WorkerCrashedError — catch the typed "
                    "fault errors or re-raise",
                )

    def _try_sees_fault(self, ctx: FileContext, try_node: ast.Try) -> bool:
        """Whether the guarded body can deliver an injected fault.

        Without a project model every body is conservatively
        fault-capable (the pre-interprocedural behavior).
        """
        project = self.project
        if project is None or ctx.relpath not in project.module_of_relpath:
            return True
        from repro.analysis.callgraph import (
            RPC_CONTEXT_ATTR,
            RPC_DISPATCH_ATTRS,
        )

        # call sites catalogued for this file, keyed by position — shared
        # AST identity is not assumed, (line, col) is stable either way
        sites = {}
        for fq, fn in project.functions.items():
            if fn.relpath != ctx.relpath:
                continue
            for call in fn.calls:
                sites[(call.node.lineno, call.node.col_offset)] = call
        for stmt in try_node.body:
            for n in ast.walk(stmt):
                if isinstance(n, (ast.Yield, ast.YieldFrom)):
                    return True
                if isinstance(n, ast.Raise) and self._raises_fault_name(
                        ctx, n):
                    return True
                if not isinstance(n, ast.Call):
                    continue
                func = n.func
                if isinstance(func, ast.Attribute) and \
                        func.attr in (*RPC_DISPATCH_ATTRS, RPC_CONTEXT_ATTR):
                    return True
                site = sites.get((n.lineno, n.col_offset))
                if site is not None and site.callee is not None:
                    if project.raises_fault(site.callee):
                        return True
                    continue
                name = ctx.imports.resolve(func)
                if name is not None:
                    q = project.resolve_dotted(name)
                    if q is None:
                        continue  # resolvable external: provably fault-free
                    if q in project.functions and project.raises_fault(q):
                        return True
                    continue
                if isinstance(func, ast.Name) and \
                        func.id in _SAFE_BUILTINS:
                    continue
                return True  # dynamic/unknown callable: suspect
        return False

    @staticmethod
    def _raises_fault_name(ctx: FileContext, node: ast.Raise) -> bool:
        from repro.analysis.callgraph import FAULT_ERROR_NAMES

        if node.exc is None:
            return False
        target = node.exc.func if isinstance(node.exc, ast.Call) \
            else node.exc
        name = ctx.imports.resolve(target)
        if name is None and isinstance(target, ast.Name):
            name = target.id
        if name is None and isinstance(target, ast.Attribute):
            name = target.attr
        return name in FAULT_ERROR_NAMES

    @staticmethod
    def _is_broad(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        candidates = type_node.elts if isinstance(type_node, ast.Tuple) \
            else [type_node]
        return any(isinstance(t, ast.Name) and t.id in BROAD_EXCEPTION_NAMES
                   for t in candidates)
