"""Determinism rules: wall clocks, unseeded RNG, unordered iteration.

These guard the virtual-time runtime's core property: a run's results and
modeled timings are a pure function of (graph, seed, request).  Wall-clock
reads, global RNG state, and ``set`` iteration order each smuggle host
state into that function.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import FileContext, Rule, Violation

#: canonical names whose *call* reads the host clock
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
})

#: ``np.random`` attributes that are fine outside ``utils/rng.py`` —
#: constructors and types that take explicit seed material
SEEDABLE_NP_RANDOM = frozenset({
    "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})


class Rep001WallClock(Rule):
    """Wall-clock calls outside the sanctioned ``utils/timer.py`` shims.

    Virtual-time code paths must never read the host clock directly: a
    ``time.time()`` in a simt/ rpc/ engine path makes modeled timings (and
    potentially results) depend on the machine running the test.  Measured
    compute goes through :class:`repro.utils.timer.CategoryTimer`; report
    timestamps go through :func:`repro.utils.timer.wall_unix`.
    """

    id = "REP001"
    title = "wall-clock call outside the sanctioned timer shims"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.resolve(node.func)
            if name in WALL_CLOCK_CALLS:
                yield self.violation(
                    ctx, node,
                    f"wall-clock call {name}() — route through "
                    "repro.utils.timer (CategoryTimer / Stopwatch / "
                    "wall_unix) so virtual-time code stays deterministic",
                )


class Rep002UnseededRandomness(Rule):
    """Unseeded or global-state randomness outside ``utils/rng.py``.

    ``np.random.default_rng()`` with no arguments pulls OS entropy; the
    legacy ``np.random.*`` module functions and the stdlib ``random``
    module mutate hidden global state.  Either way a replay stops being a
    replay.  All randomness must flow from an explicit seed via
    :func:`repro.utils.rng.rng_from_seed` / :func:`repro.utils.rng.spawn_rngs`.
    """

    id = "REP002"
    title = "unseeded randomness outside utils/rng.py"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.violation(
                    ctx, node,
                    "import from the stdlib random module (global-state "
                    "RNG) — use repro.utils.rng helpers with an explicit "
                    "seed",
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.resolve(node.func)
            if name is None:
                continue
            if name in ("numpy.random.default_rng", "numpy.default_rng"):
                if not node.args and not node.keywords:
                    yield self.violation(
                        ctx, node,
                        "np.random.default_rng() with no seed draws OS "
                        "entropy — pass explicit seed material (see "
                        "repro.utils.rng.rng_from_seed)",
                    )
                continue
            if name.startswith("random."):
                yield self.violation(
                    ctx, node,
                    f"stdlib {name}() uses hidden global RNG state — "
                    "use a seeded numpy Generator via repro.utils.rng",
                )
                continue
            if name.startswith("numpy.random."):
                attr = name.removeprefix("numpy.random.")
                if attr == "default_rng" or attr in SEEDABLE_NP_RANDOM:
                    continue
                yield self.violation(
                    ctx, node,
                    f"legacy np.random.{attr}() mutates numpy's global "
                    "RNG state — use a seeded Generator via "
                    "repro.utils.rng",
                )


def _is_unordered_iterable(node: ast.expr) -> str | None:
    """Describe ``node`` if iterating it has nondeterministic order."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and \
                node.func.id in ("set", "frozenset"):
            return f"{node.func.id}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys" \
                and not node.args and not node.keywords:
            return ".keys()"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr,
                                                            ast.BitAnd,
                                                            ast.Sub)):
        # set algebra (a | b, a & b, a - b) feeding a loop
        left = _is_unordered_iterable(node.left)
        right = _is_unordered_iterable(node.right)
        if left or right:
            return left or right
    return None


class Rep003UnorderedIteration(Rule):
    """Unsorted ``set``/``dict.keys()`` iteration in dispatch-order paths.

    In scheduling, RPC dispatch, and partition assignment, the *order* of
    iteration becomes the order of side effects (spawn order, message
    order, shard assignment) — iterating a set there makes the
    interleaving hash-seed-dependent.  Wrap the iterable in ``sorted(...)``
    to pin the order, or iterate a list/dict (insertion-ordered) instead.
    Note ``.keys()`` on a plain dict is insertion-ordered but is flagged
    here anyway: in these paths an explicit ``sorted(...)`` documents that
    the order is load-bearing.
    """

    id = "REP003"
    title = "unordered set/keys iteration in a dispatch-order path"
    scope_dirs = ("simt", "rpc", "engine", "partition", "serving",
                  "stream")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                desc = _is_unordered_iterable(it)
                if desc is not None:
                    yield self.violation(
                        ctx, it,
                        f"iteration over {desc} has nondeterministic order "
                        "in a scheduling/dispatch path — wrap it in "
                        "sorted(...)",
                    )
