"""Whole-program rules: lock order, shared-state escape, RPC contracts.

These run against the :class:`~repro.analysis.callgraph.Project` model
(one build per :func:`~repro.analysis.lint.run_lint` call) rather than a
single file, so they see hazards no per-file rule can: a lock-order
inversion split across two modules, a module-level dict mutated from an
RPC handler three calls deep, a dispatch literal whose handler was
deleted last week.

* **REP008** — the static complement of the runtime deadlock detector
  (:mod:`repro.analysis.deadlock`): held-lock sets are propagated along
  resolved call-graph edges, and any cycle in the resulting
  acquired-while-holding order is a potential deadlock, reported at each
  witnessing acquisition.
* **REP009** — the static complement of the Eraser lockset detector
  (:mod:`repro.analysis.race`): a module-level or class-variable
  container mutated with no lock held (and not exclusively reached from
  locked callers) is shared state any thread/process interleaving can
  corrupt.
* **REP010** — RPC contract checking: every ``rpc_async`` /
  ``rpc_sync_effect`` / ``rref_call`` method-name literal must name an
  ``@rpc_handler``-decorated method (:mod:`repro.rpc.handlers`) whose
  signature accepts the payload; decorated handlers nothing dispatches
  to are flagged as orphans.  Literals forwarded through a helper
  parameter (``_phase(rrefs, caller, "stage_updates", ...)``) are
  resolved one call-graph hop out.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import Project, RpcCallSite
from repro.analysis.lint import ProjectRule, Violation


class Rep008LockOrder(ProjectRule):
    """Lock-acquisition-order cycles across the call graph.

    An edge ``A -> B`` is recorded when some path acquires lock B while
    holding lock A — a nested ``with`` in one function, or a call under
    A whose transitive callee acquires B.  Two threads traversing a
    cycle ``A -> B -> A`` from different entry points deadlock; the fix
    is a single global acquisition order (or merging the locks).  One
    violation is reported per edge of each cycle, at the acquisition
    site witnessing it.
    """

    id = "REP008"
    title = "lock-order cycle (potential static deadlock)"

    def check_project(self, project: Project) -> Iterator[Violation]:
        edges = project.lock_order_edges()
        for cycle in project.lock_cycles():
            ring = cycle + cycle[:1]
            arrow = " -> ".join(ring)
            for a, b in zip(ring, ring[1:]):
                witness = edges[(a, b)]
                fn = project.functions.get(witness.function)
                relpath = fn.relpath if fn is not None else witness.function
                yield Violation(
                    path=relpath, line=witness.lineno, col=witness.col,
                    rule=self.id,
                    message=(
                        f"acquires {b!r} while holding {a!r}, closing the "
                        f"lock-order cycle {arrow} — pick one global "
                        "acquisition order or merge the locks"
                    ),
                )


class Rep009SharedMutableEscape(ProjectRule):
    """Unsynchronized mutation of module-level / class-variable containers.

    The thread runtime executes handlers and drivers concurrently; any
    container shared wider than one instance (module global, class
    variable) mutated with an empty held-lock set is an Eraser-style
    race waiting for an unlucky interleaving.  A mutation is accepted
    when a lock is held at the site, or when every resolved project call
    path into the mutating function already holds one (lock-protected
    helper methods).
    """

    id = "REP009"
    title = "shared mutable state mutated without a lock"
    scope_dirs = ("simt", "rpc", "engine", "storage", "serving", "stream",
                  "obs", "ppr", "walk")

    def check_project(self, project: Project) -> Iterator[Violation]:
        for fq in sorted(project.functions):
            fn = project.functions[fq]
            for mut in fn.mutations:
                if mut.held:
                    continue
                if project.always_called_locked(fq):
                    continue
                sdef = project.shared_defs.get(mut.target)
                where = (f" (defined at {sdef.relpath}:{sdef.lineno})"
                         if sdef is not None else "")
                yield Violation(
                    path=fn.relpath, line=mut.lineno, col=mut.col,
                    rule=self.id,
                    message=(
                        f"mutates shared container {mut.target!r}{where} "
                        "with no lock held on any call path — guard it "
                        "with a TrackedLock/threading.Lock or confine it "
                        "to one logical process"
                    ),
                )


class Rep010RpcContract(ProjectRule):
    """Dispatch literals must bind to registered handlers; no orphans.

    Three sub-checks, each gated so partial lints stay quiet:

    * **unregistered method** — a dispatch literal naming no
      ``@rpc_handler`` method (only when the project declares at least
      one handler, so ad-hoc test doubles lint clean);
    * **arity mismatch** — the named handler cannot bind the payload's
      positional/keyword shape (skipped for starred payloads);
    * **orphan handler** — a decorated method no call site dispatches
      (only when the project has at least one resolvable dispatch site,
      so linting a server module alone doesn't flag its whole surface).
    """

    id = "REP010"
    title = "RPC dispatch contract violation"

    def check_project(self, project: Project) -> Iterator[Violation]:
        handlers = project.handlers_by_name()
        resolved: list[tuple[RpcCallSite, str, str, int, int]] = []
        for site in project.rpc_call_sites:
            if site.method is not None:
                resolved.append((site, site.method, site.relpath,
                                 site.node.lineno, site.node.col_offset))
            elif site.method_param is not None:
                resolved.extend(self._propagated(project, site))
        used: set[str] = set()
        if handlers:
            for site, method, relpath, line, col in resolved:
                named = handlers.get(method)
                if named is None:
                    yield Violation(
                        path=relpath, line=line, col=col, rule=self.id,
                        message=(
                            f"{site.attr}() dispatches {method!r} but no "
                            "@rpc_handler method with that name exists — "
                            "the call fails at runtime on both runtimes"
                        ),
                    )
                    continue
                used.add(method)
                if site.n_args is None:
                    continue
                reasons = [h.params.accepts(site.n_args, site.kw_names)
                           for h in named]
                if all(r is not None for r in reasons):
                    h = named[0]
                    yield Violation(
                        path=relpath, line=line, col=col, rule=self.id,
                        message=(
                            f"{site.attr}() payload does not bind "
                            f"{method!r}: handler "
                            f"{h.cls.split(':')[-1]}.{h.name} "
                            f"({h.params.describe()}) {reasons[0]}"
                        ),
                    )
        if resolved:
            for h in project.rpc_handlers:
                if h.name not in used:
                    yield Violation(
                        path=h.relpath, line=h.lineno, col=h.col,
                        rule=self.id,
                        message=(
                            f"@rpc_handler {h.cls.split(':')[-1]}."
                            f"{h.name} is never dispatched by any "
                            "rpc_async/rpc_sync_effect/rref_call site — "
                            "dead remote surface; remove the handler or "
                            "the decorator"
                        ),
                    )

    @staticmethod
    def _propagated(project: Project, site: RpcCallSite
                    ) -> list[tuple[RpcCallSite, str, str, int, int]]:
        """Resolve a forwarded method parameter one call-graph hop out.

        For a dispatch whose method argument is a parameter of the
        enclosing function, every project call into that function with a
        string literal at the parameter's position contributes one
        effective dispatch, located at the *outer* call (where the
        literal lives).  Payload arity is unknowable here, so these
        sites only feed the registration and orphan checks.
        """
        fn = project.functions.get(site.function)
        if fn is None:
            return []
        try:
            pos = fn.params.positional.index(site.method_param)
        except ValueError:
            pos = None
        out = []
        for caller_q in sorted(project.functions):
            caller = project.functions[caller_q]
            for call in caller.calls:
                if call.callee != site.function:
                    continue
                arg: ast.expr | None = None
                if pos is not None and pos < len(call.node.args):
                    candidate = call.node.args[pos]
                    if not isinstance(candidate, ast.Starred):
                        arg = candidate
                for kw in call.node.keywords:
                    if kw.arg == site.method_param:
                        arg = kw.value
                if isinstance(arg, ast.Constant) and \
                        isinstance(arg.value, str):
                    shadow = RpcCallSite(
                        relpath=caller.relpath, node=call.node,
                        attr=site.attr, function=caller.qname,
                        method=arg.value, method_param=None,
                        n_args=None, kw_names=(),
                    )
                    out.append((shadow, arg.value, caller.relpath,
                                call.node.lineno, call.node.col_offset))
        return out
