"""Connected-component utilities.

Real-world graph dumps often carry small disconnected fragments; PPR
queries from inside a fragment never leave it, which skews throughput
measurements.  The paper's datasets are used as-is, but downstream users
loading arbitrary graphs get these helpers to inspect and (optionally)
restrict to the largest connected component.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.csgraph as csgraph

from repro.graph.csr import CSRGraph


def connected_components(graph: CSRGraph) -> tuple[int, np.ndarray]:
    """``(n_components, labels)`` treating the graph as undirected."""
    n, labels = csgraph.connected_components(
        graph.to_scipy(), directed=False
    )
    return int(n), labels


def component_sizes(graph: CSRGraph) -> np.ndarray:
    """Sizes of all components, descending."""
    _, labels = connected_components(graph)
    sizes = np.bincount(labels)
    return np.sort(sizes)[::-1]


def largest_component(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph of the largest component.

    Returns ``(subgraph, node_map)`` where ``node_map[i]`` is the original
    global ID of the subgraph's node ``i``.
    """
    n_comp, labels = connected_components(graph)
    if n_comp <= 1:
        return graph, np.arange(graph.n_nodes)
    keep_label = int(np.argmax(np.bincount(labels)))
    keep = np.flatnonzero(labels == keep_label)
    return induced_subgraph(graph, keep), keep


def induced_subgraph(graph: CSRGraph, nodes: np.ndarray) -> CSRGraph:
    """Induced subgraph over ``nodes`` (sorted unique), relabeled 0..k-1."""
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if len(nodes) and (nodes[0] < 0 or nodes[-1] >= graph.n_nodes):
        raise ValueError("nodes out of range")
    counts = np.diff(graph.indptr)[nodes]
    starts = graph.indptr[nodes]
    offsets = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    idx = np.repeat(starts - offsets[:-1], counts) + np.arange(offsets[-1])
    rows = np.repeat(np.arange(len(nodes)), counts)
    nbrs = graph.indices[idx]
    keep = np.isin(nbrs, nodes)
    cols = np.searchsorted(nodes, nbrs[keep])
    import scipy.sparse as sp

    adj = sp.coo_matrix(
        (graph.weights[idx][keep], (rows[keep], cols)),
        shape=(len(nodes), len(nodes)),
    ).tocsr()
    return CSRGraph.from_scipy(adj)
