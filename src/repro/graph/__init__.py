"""``repro.graph`` — in-memory graphs, generators, and dataset stand-ins.

Provides the single-machine graph substrate everything else builds on:

* :class:`CSRGraph` — an edge-weighted graph in Compressed Sparse Row form
  (the storage format of Section 3.2.2);
* vectorized random-graph generators (power-law configuration model, R-MAT,
  Erdős–Rényi) plus small deterministic graphs for tests;
* :mod:`~repro.graph.datasets` — scaled synthetic stand-ins for the four
  evaluation datasets (Ogbn-products, Twitter, Friendster,
  Ogbn-papers100M), matching their average degree and skew character;
* stats utilities that regenerate Table 1 for the stand-ins.
"""

from repro.graph.components import (
    component_sizes,
    connected_components,
    induced_subgraph,
    largest_component,
)
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset
from repro.graph.generators import (
    cap_degrees,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    powerlaw_cluster,
    rmat,
    star_graph,
)
from repro.graph.io import load_npz, save_npz
from repro.graph.stats import GraphStats, compute_stats, table1_rows

__all__ = [
    "CSRGraph",
    "cap_degrees",
    "DATASETS",
    "DatasetSpec",
    "GraphStats",
    "complete_graph",
    "component_sizes",
    "connected_components",
    "compute_stats",
    "cycle_graph",
    "erdos_renyi",
    "induced_subgraph",
    "largest_component",
    "load_dataset",
    "load_npz",
    "path_graph",
    "powerlaw_cluster",
    "rmat",
    "save_npz",
    "star_graph",
    "table1_rows",
]
