"""Synthetic stand-ins for the paper's four evaluation datasets.

The paper evaluates on Ogbn-products (2.5M nodes), Twitter (41.7M),
Friendster (65.6M) and Ogbn-papers100M (111M) — all converted to undirected
graphs with random edge weights, node features stripped (Table 1).  Those
graphs (and the memory to host them) are unavailable here, so each dataset
is replaced by a generated graph ~1000x smaller that preserves the
properties Forward Push cares about:

* **relative size ordering** (products < twitter < friendster < papers in
  nodes; papers has the lowest average degree);
* **average degree** matched to Table 1;
* **skew character**: Twitter's max degree is ~3M (7% of its nodes!), i.e.
  extreme hubs -> generated with a heavy-tailed exponent and no degree cap;
  Friendster's max degree is only 5.2k -> bounded hubs; the OGB graphs sit
  in between.

Generated datasets are deterministic given the seed and are cached on disk
(``~/.cache/repro-graphs``) because generation of the larger stand-ins takes
a few seconds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.graph.csr import CSRGraph
from repro.graph.generators import powerlaw_cluster
from repro.graph.io import load_npz, save_npz


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in dataset.

    ``mixing`` is the planted-community mixing parameter (fraction of
    inter-community edges); it controls how well a min-cut partitioner can
    separate the graph, matching the paper's observed remote-traversal
    ratios (e.g. 3-13% on Ogbn-products vs 50-55% on Twitter).
    """

    name: str
    paper_name: str
    n_nodes: int
    avg_degree: float
    exponent: float
    max_degree: int | None
    mixing: float
    seed: int

    def generate(self, scale: float = 1.0) -> CSRGraph:
        """Generate the graph, optionally scaled down further (0 < scale <= 1)."""
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        n = max(64, int(round(self.n_nodes * scale)))
        return powerlaw_cluster(
            n,
            self.avg_degree,
            exponent=self.exponent,
            max_degree=self.max_degree,
            mixing=self.mixing,
            weighted=True,
            seed=self.seed,
        )


#: Stand-ins, ~1000x smaller than Table 1, same degree character.
#: Degree caps preserve the paper's *ordering* of hub extremity
#: (d_max/d_avg: Twitter >> Papers > Products > Friendster) while keeping
#: the scaled graphs well-formed (a proportional 1000x cap shrink would
#: push Friendster's cap below its average degree).
DATASETS: dict[str, DatasetSpec] = {
    "products": DatasetSpec(
        name="products", paper_name="Ogbn-products",
        n_nodes=25_000, avg_degree=50.5, exponent=2.4, max_degree=1_200,
        mixing=0.04, seed=101,
    ),
    "twitter": DatasetSpec(
        name="twitter", paper_name="Twitter",
        # cap = 7% of |V|, the paper's extreme d_max/|V| ratio
        n_nodes=41_700, avg_degree=57.7, exponent=1.9, max_degree=2_900,
        mixing=0.55, seed=102,
    ),
    "friendster": DatasetSpec(
        name="friendster", paper_name="Friendster",
        n_nodes=65_600, avg_degree=57.8, exponent=2.8, max_degree=350,
        mixing=0.08, seed=103,
    ),
    "papers": DatasetSpec(
        name="papers", paper_name="Ogbn-papers100M",
        n_nodes=111_000, avg_degree=29.1, exponent=2.2, max_degree=1_000,
        mixing=0.12, seed=104,
    ),
}


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro-graphs"


def load_dataset(name: str, *, scale: float = 1.0,
                 use_cache: bool = True) -> CSRGraph:
    """Load (generating + caching on first use) a stand-in dataset.

    ``scale`` shrinks the node count further for quick tests; benchmark
    scale policy lives in ``benchmarks/common.py``.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    if not use_cache:
        return spec.generate(scale)
    cache = _cache_dir() / f"{name}-s{scale:g}-seed{spec.seed}.npz"
    if cache.exists():
        return load_npz(cache)
    graph = spec.generate(scale)
    cache.parent.mkdir(parents=True, exist_ok=True)
    save_npz(cache, graph)
    return graph
