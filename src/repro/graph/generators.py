"""Vectorized random-graph generators and small deterministic graphs.

The evaluation datasets are social/web-scale power-law graphs; the two
generators that matter for reproducing their behaviour are:

* :func:`powerlaw_cluster` — a fast configuration-model-style generator:
  draw a Pareto expected-degree sequence with tunable exponent and cap,
  sample arc endpoints proportionally, and symmetrize.  The exponent and
  degree cap control the hub structure (Twitter-like graphs get an extreme
  hub tail; Friendster-like graphs get bounded hubs).
* :func:`rmat` — the classic recursive-matrix generator, included both as an
  alternative skew model and as a widely recognized HPC benchmark workload.

Everything is NumPy-vectorized: no Python-level per-edge loops.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_in_range, check_positive


def _attach_weights(n_edges: int, rng, weighted: bool) -> np.ndarray | None:
    """Random edge weights in (0.5, 1.5), or None for unit weights."""
    if not weighted:
        return None
    return rng.uniform(0.5, 1.5, size=n_edges)


def powerlaw_cluster(n_nodes: int, avg_degree: float, *, exponent: float = 2.5,
                     max_degree: int | None = None, mixing: float | None = None,
                     n_communities: int = 64, weighted: bool = True,
                     seed=None) -> CSRGraph:
    """Power-law graph via proportional endpoint sampling, with optional
    planted community structure.

    Draws expected degrees ``w_i ~ Pareto(exponent - 1)`` (shifted so the
    mean matches ``avg_degree``), optionally capped at ``max_degree``, then
    samples ``n_nodes * avg_degree / 2`` undirected edges with endpoint
    probabilities proportional to ``w``.  Duplicate arcs and self-loops are
    removed during CSR construction, so realized average degree runs
    slightly below the target — the same bias the configuration model has.

    ``mixing`` (the LFR-style mu parameter) plants ``n_communities``
    contiguous communities: a ``1 - mixing`` fraction of edges picks both
    endpoints inside one community (chosen proportionally to community
    degree mass), the rest sample endpoints globally.  Real social/web
    graphs are strongly clustered — this is what lets a min-cut partitioner
    achieve the single-digit remote-traversal ratios the paper reports; a
    pure configuration model is an expander with no good cuts.

    Parameter intuition against the paper's datasets: a low ``exponent``
    (~1.9) with a large cap yields Twitter-like extreme hubs, a high
    exponent (~2.8) with a small cap yields Friendster-like bounded hubs;
    low ``mixing`` (~0.05) yields Products-like clusterability, high
    ``mixing`` (~0.5) yields Twitter-like poor separability.
    """
    check_positive("n_nodes", n_nodes)
    check_positive("avg_degree", avg_degree)
    check_in_range("exponent", exponent, 1.0, 10.0)
    if mixing is not None:
        check_in_range("mixing", mixing, 0.0, 1.0, inclusive=True)
        check_positive("n_communities", n_communities)
    rng = rng_from_seed(seed)

    # Pareto(a) has mean a/(a-1) for a > 1; rescale to hit avg_degree, then
    # cap and re-rescale (twice) so both the mean and the cap hold.
    a = exponent - 1.0
    expected = rng.pareto(a, size=n_nodes) + 1.0
    for _ in range(2):
        expected *= avg_degree / expected.mean()
        if max_degree is not None:
            if max_degree <= avg_degree:
                raise ValueError(
                    f"max_degree={max_degree} must exceed avg_degree={avg_degree}"
                )
            np.minimum(expected, float(max_degree), out=expected)

    n_edges = max(1, int(round(n_nodes * avg_degree / 2.0)))
    cum = np.cumsum(expected)
    total = cum[-1]

    def sample_global(k: int) -> np.ndarray:
        return np.searchsorted(cum, rng.uniform(0.0, total, size=k))

    if mixing is None or mixing >= 1.0:
        src = sample_global(n_edges)
        dst = sample_global(n_edges)
    else:
        n_comm = min(n_communities, n_nodes)
        # Contiguous equal-size communities; boundaries in node-ID space.
        bounds = np.linspace(0, n_nodes, n_comm + 1).astype(np.int64)
        lo = np.concatenate([[0.0], cum])[bounds[:-1]]
        hi = np.concatenate([[0.0], cum])[bounds[1:]]
        comm_mass = hi - lo

        intra = rng.random(n_edges) >= mixing
        n_intra = int(np.count_nonzero(intra))
        src = np.empty(n_edges, dtype=np.int64)
        dst = np.empty(n_edges, dtype=np.int64)
        # Inter-community edges: both endpoints global.
        n_inter = n_edges - n_intra
        src[~intra] = sample_global(n_inter)
        dst[~intra] = sample_global(n_inter)
        # Intra-community edges: community ~ degree mass, endpoints within.
        comm = rng.choice(n_comm, size=n_intra, p=comm_mass / comm_mass.sum())
        src[intra] = np.searchsorted(
            cum, rng.uniform(lo[comm], hi[comm]))
        dst[intra] = np.searchsorted(
            cum, rng.uniform(lo[comm], hi[comm]))
    np.clip(src, 0, n_nodes - 1, out=src)
    np.clip(dst, 0, n_nodes - 1, out=dst)
    weights = _attach_weights(n_edges, rng, weighted)
    return CSRGraph.from_edges(n_nodes, src, dst, weights, symmetrize=True)


def rmat(scale: int, edge_factor: int = 16, *, a: float = 0.57, b: float = 0.19,
         c: float = 0.19, weighted: bool = True, seed=None) -> CSRGraph:
    """R-MAT generator (Graph500-style), fully vectorized.

    Generates ``2**scale`` nodes and ``edge_factor * 2**scale`` undirected
    edges by recursively descending a 2x2 probability matrix
    ``[[a, b], [c, d]]`` with ``d = 1 - a - b - c``.
    """
    check_positive("scale", scale)
    check_positive("edge_factor", edge_factor)
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError(f"invalid R-MAT probabilities: a={a} b={b} c={c} d={d}")
    rng = rng_from_seed(seed)

    n_nodes = 1 << scale
    n_edges = edge_factor * n_nodes
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(n_edges)
        # Quadrant choice: P(src bit set) = c + d, then dst bit conditional.
        src_bit = r >= a + b
        r2 = rng.random(n_edges)
        thresh = np.where(src_bit, c / (c + d) if c + d > 0 else 0.0,
                          a / (a + b) if a + b > 0 else 0.0)
        dst_bit = r2 >= thresh
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    weights = _attach_weights(n_edges, rng, weighted)
    return CSRGraph.from_edges(n_nodes, src, dst, weights, symmetrize=True)


def erdos_renyi(n_nodes: int, avg_degree: float, *, weighted: bool = True,
                seed=None) -> CSRGraph:
    """G(n, m) random graph with ``m = n * avg_degree / 2`` edges."""
    check_positive("n_nodes", n_nodes)
    check_positive("avg_degree", avg_degree)
    rng = rng_from_seed(seed)
    n_edges = max(1, int(round(n_nodes * avg_degree / 2.0)))
    src = rng.integers(0, n_nodes, size=n_edges)
    dst = rng.integers(0, n_nodes, size=n_edges)
    weights = _attach_weights(n_edges, rng, weighted)
    return CSRGraph.from_edges(n_nodes, src, dst, weights, symmetrize=True)


# -- small deterministic graphs (tests and examples) --------------------------

def path_graph(n_nodes: int, *, weighted: bool = False, seed=None) -> CSRGraph:
    """Undirected path ``0 - 1 - ... - (n-1)``."""
    check_positive("n_nodes", n_nodes)
    src = np.arange(n_nodes - 1)
    dst = src + 1
    rng = rng_from_seed(seed)
    weights = _attach_weights(len(src), rng, weighted)
    return CSRGraph.from_edges(n_nodes, src, dst, weights, symmetrize=True)


def cycle_graph(n_nodes: int) -> CSRGraph:
    """Undirected cycle on ``n_nodes`` (needs at least 3 nodes)."""
    if n_nodes < 3:
        raise ValueError(f"cycle needs >= 3 nodes, got {n_nodes}")
    src = np.arange(n_nodes)
    dst = (src + 1) % n_nodes
    return CSRGraph.from_edges(n_nodes, src, dst, symmetrize=True)


def star_graph(n_leaves: int) -> CSRGraph:
    """Star: node 0 connected to ``n_leaves`` leaves."""
    check_positive("n_leaves", n_leaves)
    src = np.zeros(n_leaves, dtype=np.int64)
    dst = np.arange(1, n_leaves + 1)
    return CSRGraph.from_edges(n_leaves + 1, src, dst, symmetrize=True)


def complete_graph(n_nodes: int) -> CSRGraph:
    """Complete undirected graph on ``n_nodes``."""
    check_positive("n_nodes", n_nodes)
    src, dst = np.triu_indices(n_nodes, k=1)
    return CSRGraph.from_edges(n_nodes, src, dst, symmetrize=True)


def cap_degrees(graph: CSRGraph, max_degree: int, *, seed=None) -> CSRGraph:
    """Super-node preprocessing: subsample rows above ``max_degree``.

    The paper notes that vertex-centric responses suffer under super-nodes
    but that "in the context of GNNs, super-nodes are not an issue, since
    the degree of each node is usually limited during preprocessing" — this
    is that preprocessing step.  Rows longer than ``max_degree`` keep a
    uniform sample of their arcs (directed: the row is capped; the mirror
    arc of a dropped edge survives only if the mirror row keeps it).
    """
    check_positive("max_degree", max_degree)
    rng = rng_from_seed(seed)
    degrees = np.diff(graph.indptr)
    over = np.flatnonzero(degrees > max_degree)
    if len(over) == 0:
        return graph
    keep = np.ones(graph.n_arcs, dtype=bool)
    for v in over:
        s, e = graph.indptr[v], graph.indptr[v + 1]
        drop = rng.choice(e - s, size=(e - s) - max_degree, replace=False)
        keep[s + drop] = False
    src = np.repeat(np.arange(graph.n_nodes), degrees)[keep]
    return CSRGraph.from_edges(
        graph.n_nodes, src, graph.indices[keep], graph.weights[keep],
        symmetrize=False,
    )
