"""Graph persistence as compressed ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

_FORMAT_VERSION = 1


def save_npz(path, graph: CSRGraph) -> None:
    """Write a :class:`CSRGraph` to ``path`` (npz, compressed)."""
    path = Path(path)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        n_nodes=np.int64(graph.n_nodes),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_npz(path) -> CSRGraph:
    """Read a :class:`CSRGraph` written by :func:`save_npz`."""
    path = Path(path)
    with np.load(path) as data:
        try:
            version = int(data["version"])
            if version != _FORMAT_VERSION:
                raise GraphFormatError(
                    f"unsupported graph file version {version} in {path}"
                )
            return CSRGraph(
                int(data["n_nodes"]), data["indptr"], data["indices"],
                data["weights"],
            )
        except KeyError as exc:
            raise GraphFormatError(f"malformed graph file {path}: {exc}") from None
