"""Edge-weighted graphs in Compressed Sparse Row form.

:class:`CSRGraph` is the canonical single-machine representation: for node
``v``, its out-neighbors are ``indices[indptr[v]:indptr[v+1]]`` with parallel
``weights``.  Graphs are stored *directed* internally; the evaluation
pipeline always symmetrizes on construction (the paper converts every
dataset to undirected with random edge weights).

The builder removes self-loops and merges duplicate arcs (keeping the first
weight), and precomputes **weighted degrees** — the Forward Push threshold
denominators the paper stores per shard so pushes never aggregate edge
weights on the fly.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphFormatError
from repro.utils.validation import check_same_length


class CSRGraph:
    """Immutable edge-weighted directed graph in CSR form."""

    __slots__ = ("n_nodes", "indptr", "indices", "weights", "weighted_degrees")

    def __init__(self, n_nodes: int, indptr: np.ndarray, indices: np.ndarray,
                 weights: np.ndarray) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if n_nodes < 0:
            raise GraphFormatError(f"n_nodes must be >= 0, got {n_nodes}")
        if indptr.shape != (n_nodes + 1,):
            raise GraphFormatError(
                f"indptr must have shape ({n_nodes + 1},), got {indptr.shape}"
            )
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must start at 0 and be nondecreasing")
        check_same_length(indices=indices, weights=weights)
        if indptr[-1] != len(indices):
            raise GraphFormatError(
                f"indptr[-1]={indptr[-1]} != len(indices)={len(indices)}"
            )
        if len(indices) and (indices.min() < 0 or indices.max() >= n_nodes):
            raise GraphFormatError("indices out of range")
        if np.any(weights < 0):
            raise GraphFormatError("negative edge weights are not supported")
        self.n_nodes = int(n_nodes)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        # Weighted out-degree: sum of outgoing edge weights per node,
        # via cumulative-sum segment differences (robust to empty rows).
        csum = np.concatenate([[0.0], np.cumsum(weights, dtype=np.float64)])
        self.weighted_degrees = csum[indptr[1:]] - csum[indptr[:-1]]

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_edges(cls, n_nodes: int, src, dst, weights=None, *,
                   symmetrize: bool = True) -> "CSRGraph":
        """Build from arc lists, deduplicating and dropping self-loops.

        With ``symmetrize=True`` (the evaluation default) every arc is
        mirrored, producing an undirected graph stored as two arcs.
        Duplicate arcs keep the largest weight.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        check_same_length(src=src, dst=dst)
        if weights is None:
            weights = np.ones(len(src), dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            check_same_length(src=src, weights=weights)
        if len(src) and (min(src.min(), dst.min()) < 0
                         or max(src.max(), dst.max()) >= n_nodes):
            raise GraphFormatError("edge endpoints out of range")

        if symmetrize:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            weights = np.concatenate([weights, weights])

        keep = src != dst
        src, dst, weights = src[keep], dst[keep], weights[keep]

        # Sort by (src, dst, weight) and drop duplicate arcs keeping the
        # largest weight — a symmetric rule, so mirrored duplicates resolve
        # identically in both directions and the graph stays undirected.
        order = np.lexsort((weights, dst, src))
        src, dst, weights = src[order], dst[order], weights[order]
        if len(src):
            uniq = np.empty(len(src), dtype=bool)
            uniq[-1] = True
            uniq[:-1] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            src, dst, weights = src[uniq], dst[uniq], weights[uniq]

        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(n_nodes, indptr, dst, weights)

    @classmethod
    def from_scipy(cls, matrix) -> "CSRGraph":
        """Build from any scipy sparse matrix (rows = sources)."""
        csr = sp.csr_matrix(matrix)
        if csr.shape[0] != csr.shape[1]:
            raise GraphFormatError(f"adjacency must be square, got {csr.shape}")
        csr.sum_duplicates()
        return cls(csr.shape[0], csr.indptr.astype(np.int64),
                   csr.indices.astype(np.int64), csr.data.astype(np.float64))

    # -- accessors -----------------------------------------------------------
    @property
    def n_arcs(self) -> int:
        """Number of stored directed arcs (2x edges for undirected graphs)."""
        return len(self.indices)

    def out_degree(self, v: int | None = None):
        """Out-degree of ``v``, or the full degree array if ``v`` is None."""
        if v is None:
            return np.diff(self.indptr)
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbor IDs of ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Outgoing edge weights of ``v`` (a view, do not mutate)."""
        return self.weights[self.indptr[v]:self.indptr[v + 1]]

    def has_arc(self, u: int, v: int) -> bool:
        """Whether the arc ``u -> v`` exists."""
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < len(row) and row[pos] == v)

    def to_scipy(self) -> sp.csr_matrix:
        """The weighted adjacency as ``scipy.sparse.csr_matrix``."""
        return sp.csr_matrix(
            (self.weights, self.indices, self.indptr),
            shape=(self.n_nodes, self.n_nodes),
        )

    def transition_matrix(self) -> sp.csr_matrix:
        """Row-stochastic transition matrix ``D_w^{-1} A`` (zero rows kept)."""
        inv = np.zeros(self.n_nodes)
        nz = self.weighted_degrees > 0
        inv[nz] = 1.0 / self.weighted_degrees[nz]
        return sp.diags(inv) @ self.to_scipy()

    def is_symmetric(self) -> bool:
        """Whether the stored arc structure is symmetric (undirected)."""
        a = self.to_scipy()
        diff = (a != a.T)
        return diff.nnz == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRGraph(n_nodes={self.n_nodes}, n_arcs={self.n_arcs})"
