"""Graph statistics — regenerates the shape of Table 1.

``table1_rows`` produces, for each stand-in dataset, the columns the paper
reports: |V|, |E| (undirected edge count), average degree, and max degree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics in the shape of the paper's Table 1."""

    name: str
    n_nodes: int
    n_edges: int          # undirected edges (arcs / 2)
    avg_degree: float     # arcs / nodes, matching the paper's d_avg
    max_degree: int
    isolated_nodes: int

    def as_row(self) -> dict:
        """Plain-dict row for table printing."""
        return {
            "Name": self.name,
            "|V|": self.n_nodes,
            "|E|": self.n_edges,
            "d_avg": round(self.avg_degree, 1),
            "d_max": self.max_degree,
        }


def compute_stats(name: str, graph: CSRGraph) -> GraphStats:
    """Compute Table-1-style statistics for one graph."""
    degrees = graph.out_degree()
    return GraphStats(
        name=name,
        n_nodes=graph.n_nodes,
        n_edges=graph.n_arcs // 2,
        avg_degree=float(graph.n_arcs / graph.n_nodes) if graph.n_nodes else 0.0,
        max_degree=int(degrees.max()) if graph.n_nodes else 0,
        isolated_nodes=int(np.count_nonzero(degrees == 0)),
    )


def table1_rows(graphs: dict[str, CSRGraph]) -> list[dict]:
    """Table 1 rows for a mapping of dataset name -> graph."""
    return [compute_stats(name, g).as_row() for name, g in graphs.items()]


def format_table(rows: list[dict]) -> str:
    """Render rows as an aligned text table (used by benches/examples)."""
    if not rows:
        return "(empty table)"
    headers = list(rows[0].keys())
    cols = {h: [str(r.get(h, "")) for r in rows] for h in headers}
    widths = {h: max(len(h), *(len(v) for v in cols[h])) for h in headers}
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for r in rows:
        lines.append("  ".join(str(r.get(h, "")).ljust(widths[h]) for h in headers))
    return "\n".join(lines)
