"""Per-process query drivers and batch scheduling.

The paper's throughput protocol (Section 2.1.2): a batch of SSPPR queries
whose root nodes are spread across machines; each query runs on a computing
process of the machine owning its source (owner-compute rule); throughput is
``n_queries / makespan`` including synchronization.

:func:`assign_queries` reproduces that dispatch; :func:`multi_query_driver`
is the coroutine body of one computing process, looping its assigned queries
through :func:`~repro.ppr.distributed.distributed_sppr_query` (or the tensor
baseline driver).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.ppr.distributed import (
    DegradationMode,
    OptLevel,
    distributed_sppr_query,
    distributed_tensor_query,
)
from repro.ppr.params import PPRParams
from repro.storage.build import ShardedGraph
from repro.storage.dist_storage import DistGraphStorage
from repro.utils.rng import rng_from_seed


def sample_sources(sharded: ShardedGraph, n_queries: int, *,
                   seed=0) -> np.ndarray:
    """Root nodes spread evenly across machines (the paper's query sets).

    Draws ``n_queries / K`` core nodes per shard (remainder round-robin),
    preferring nodes with at least one edge.
    """
    if n_queries <= 0:
        raise ValueError(f"n_queries must be > 0, got {n_queries}")
    rng = rng_from_seed(seed)
    k = sharded.n_shards
    per_shard = np.full(k, n_queries // k)
    per_shard[: n_queries % k] += 1
    picks = []
    degrees = np.diff(sharded.graph.indptr)
    for p, shard in enumerate(sharded.shards):
        candidates = shard.core_global[degrees[shard.core_global] > 0]
        if len(candidates) == 0:
            candidates = shard.core_global
        if len(candidates) == 0:
            raise SimulationError(f"shard {p} has no core nodes to query")
        picks.append(rng.choice(candidates, size=per_shard[p],
                                replace=per_shard[p] > len(candidates)))
    return np.concatenate(picks)


def assign_queries(sharded: ShardedGraph, sources_global: np.ndarray,
                   procs_per_machine: int) -> dict[tuple[int, int], np.ndarray]:
    """Owner-compute dispatch: ``(machine, proc) -> source globals``."""
    if procs_per_machine <= 0:
        raise ValueError("procs_per_machine must be > 0")
    owner = sharded.owner_shard[sources_global]
    assignment: dict[tuple[int, int], np.ndarray] = {}
    for m in range(sharded.n_shards):
        mine = sources_global[owner == m]
        for p in range(procs_per_machine):
            chunk = mine[p::procs_per_machine]
            if len(chunk):
                assignment[(m, p)] = chunk
    return assignment


def multi_query_driver(g: DistGraphStorage, proc, sources_global: np.ndarray,
                       sharded: ShardedGraph, params: PPRParams, *,
                       opt: OptLevel, collect: dict | None = None,
                       latencies: dict | None = None,
                       degradation: DegradationMode = DegradationMode.FAIL_FAST,
                       fault_stats: dict | None = None):
    """Coroutine: run each assigned query to completion, in order.

    ``latencies`` (optional) receives per-query virtual durations keyed by
    source global ID — the engine's latency-percentile reporting.

    ``fault_stats`` (optional, shared across the batch's drivers) aggregates
    ``skip_remote`` degradation: queries that lost at least one remote fetch
    and the total residual mass written off.
    """
    local_ids, shard_ids = sharded.address_of(sources_global)
    if np.any(shard_ids != g.shard_id):
        raise SimulationError(
            "owner-compute violation: driver received foreign sources"
        )
    for gid, lid in zip(sources_global.tolist(), local_ids.tolist()):
        started = proc.clock
        with proc.span("query", source=gid):
            state = yield from distributed_sppr_query(
                g, proc, lid, params, opt=opt, degradation=degradation
            )
        if latencies is not None:
            latencies[gid] = proc.clock - started
        if fault_stats is not None and state.skipped_fetches > 0:
            fault_stats["degraded_queries"] += 1
            fault_stats["abandoned_mass"] += state.abandoned_mass
        if collect is not None:
            collect[gid] = state
    return len(sources_global)


def multi_query_batched_driver(g: DistGraphStorage, proc,
                               sources_global: np.ndarray,
                               sharded: ShardedGraph, params: PPRParams, *,
                               collect: dict | None = None):
    """Coroutine: one process's whole chunk as a lockstep MultiSSPPR.

    On completion, per-query views are extracted and stored into
    ``collect`` as lightweight result adapters compatible with the
    single-query state's ``results_global``/``dense_result`` surface.
    """
    from repro.ppr.distributed import distributed_multi_query

    local_ids, shard_ids = sharded.address_of(sources_global)
    if np.any(shard_ids != g.shard_id):
        raise SimulationError(
            "owner-compute violation: driver received foreign sources"
        )
    with proc.span("query_batch", n_queries=len(sources_global)):
        multi = yield from distributed_multi_query(g, proc, local_ids, params)
    if collect is not None:
        for qid, gid in enumerate(sources_global.tolist()):
            collect[gid] = MultiQueryResultView(multi, qid)
    return len(sources_global)


class MultiQueryResultView:
    """Single-query adapter over a finished MultiSSPPR."""

    __slots__ = ("multi", "qid")

    def __init__(self, multi, qid: int) -> None:
        self.multi = multi
        self.qid = qid

    @property
    def n_touched(self) -> int:
        keys = self.multi.map.keys()
        return int(np.count_nonzero(keys % self.multi.n_queries == self.qid))

    @property
    def n_iterations(self) -> int:
        return self.multi.n_iterations

    def total_mass(self) -> float:
        node_keys, values = self.multi.results_for(self.qid)
        # residual part of this query's mass
        keys = self.multi.map.keys()
        mine = keys % self.multi.n_queries == self.qid
        n = len(self.multi.map)
        return float(values.sum() + self.multi.residual[:n][mine].sum())

    def results_global(self, sharded) -> tuple[np.ndarray, np.ndarray]:
        node_keys, values = self.multi.results_for(self.qid)
        gids = sharded.global_of(node_keys // self.multi.n_shards,
                                 node_keys % self.multi.n_shards)
        return gids, values

    def dense_result(self, sharded, n_nodes: int) -> np.ndarray:
        return self.multi.dense_result_for(self.qid, sharded, n_nodes)


def multi_query_tensor_driver(g: DistGraphStorage, proc,
                              sources_global: np.ndarray,
                              sharded: ShardedGraph, params: PPRParams, *,
                              collect: dict | None = None):
    """Coroutine: tensor-baseline counterpart of :func:`multi_query_driver`."""
    owner = sharded.owner_shard[sources_global]
    if np.any(owner != g.shard_id):
        raise SimulationError(
            "owner-compute violation: driver received foreign sources"
        )
    for gid in sources_global.tolist():
        with proc.span("query", source=gid, mode="tensor"):
            state = yield from distributed_tensor_query(
                g, proc, gid, params, sharded.owner_local, sharded.owner_shard
            )
        if collect is not None:
            collect[gid] = state
    return len(sources_global)
