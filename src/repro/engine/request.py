"""The engine's run-request API.

A :class:`RunRequest` bundles everything that parameterizes one batched
query run — the query set, PPR parameters, RPC optimization level, tracing,
seeding, and the fault-tolerance knobs (fault plan, retry policy,
degradation mode) — into a single validated value passed to
:meth:`~repro.engine.engine.GraphEngine.run`::

    from repro import FaultPlan, GraphEngine, RunRequest

    run = engine.run(RunRequest(
        n_queries=64,
        fault_plan=FaultPlan(seed=7, drop_prob=0.01),
    ))
    print(run.throughput, run.retries, run.degraded_queries)

This replaced the sprawling ``run_queries(...)`` keyword surface (the
deprecated shim is gone).  Requests are frozen: one request can be
replayed against several engines or configurations and means the same thing
every time.  For long-lived multi-tenant serving, sessions build these
requests internally — see :mod:`repro.serving` and docs/serving.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ppr.distributed import DegradationMode, OptLevel
from repro.ppr.params import PPRParams
from repro.rpc.retry import RetryPolicy
from repro.simt.faults import FaultPlan

#: execution modes: the PPR Engine, the dense tensor baseline, and the
#: inter-query batched MultiSSPPR engine
RUN_MODES = ("engine", "tensor", "batched")


@dataclass(frozen=True)
class RunRequest:
    """One batched SSPPR run, fully specified.

    Parameters
    ----------
    n_queries / sources:
        Either a query count (sources sampled with ``seed``) or an explicit
        array of source global IDs.  Exactly one must be provided.
    params:
        PPR parameters; engine defaults when ``None``.
    mode:
        ``"engine"`` (hashmap PPR engine, the default), ``"tensor"`` (dense
        baseline), or ``"batched"`` (inter-query MultiSSPPR batching).
    opt:
        RPC optimization level override; the config's level when ``None``.
        Only meaningful for ``mode="engine"``.
    keep_states:
        Collect per-query result states into ``QueryRunResult.states``
        (``mode="batched"`` always collects).
    seed:
        Source-sampling seed override; the config's seed when ``None``.
    trace_rpc:
        Attach an :class:`~repro.rpc.tracing.RpcTracer` override; the
        config's flag when ``None``.
    trace:
        Attach a :class:`~repro.obs.SpanTracer` recording nested per-process
        spans (queries, pop/push/serve, linked RPC client/server pairs) on
        the virtual timeline; the config's ``trace_spans`` when ``None``.
        Export with :func:`repro.obs.write_chrome_trace` or
        ``repro.cli profile``.
    max_spans:
        Cap on retained spans for a traced run (the earliest spans are
        kept; overflow is counted in the ``obs.spans_dropped`` metric);
        ``None`` = the tracer default
        (:data:`repro.obs.DEFAULT_MAX_SPANS`).
    fault_plan:
        Injected faults for this run (chaos testing); ``None`` = healthy.
    retry_policy:
        Timeout/retry/backoff for remote calls.  ``None`` with a non-empty
        ``fault_plan`` gets the default policy so drops resolve as timeouts.
    degradation:
        What a query does when a remote fetch exhausts its retries
        (``mode="engine"`` only; the tensor and batched drivers always
        fail fast).
    sanitize:
        Attach the lockset race detector
        (:class:`repro.analysis.race.RaceDetector`) to the run: shared
        :class:`~repro.ppr.hashmap.ShardedMap` accesses are recorded and
        lock-discipline violations surface in
        ``QueryRunResult.race_violations`` plus the ``sanitizer.*``
        metrics.  Zero-overhead when off (the default).
    fetch_split / fetch_cache_bytes / fetch_coalesce:
        Per-run overrides for the adaptive fetch layer
        (docs/fetch-layer.md); the config's knobs when ``None``.
        ``fetch_split=False, fetch_cache_bytes=0`` reproduces the
        pre-fetch-layer wire behavior exactly (ablation off-switch).
    timeline:
        Sampling interval in virtual seconds for a
        :class:`~repro.obs.analysis.Timeline` of selected counters and
        gauges, returned on ``QueryRunResult.timeline``.  On the
        virtual-time scheduler a grid of mid-run samples is taken every
        ``timeline`` seconds; the thread runtime records the
        deterministic edges (t=0 and the final counters).  ``None``
        (the default) disables sampling.
    """

    n_queries: int | None = None
    sources: np.ndarray | None = None
    params: PPRParams | None = None
    mode: str = "engine"
    opt: OptLevel | None = None
    keep_states: bool = False
    seed: int | None = None
    trace_rpc: bool | None = None
    trace: bool | None = None
    max_spans: int | None = None
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None
    degradation: DegradationMode = DegradationMode.FAIL_FAST
    sanitize: bool = False
    fetch_split: bool | None = None
    fetch_cache_bytes: int | None = None
    fetch_coalesce: bool | None = None
    timeline: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in RUN_MODES:
            raise ValueError(
                f"mode must be one of {RUN_MODES}, got {self.mode!r}"
            )
        if self.sources is None and self.n_queries is None:
            raise ValueError("pass n_queries or sources")
        if self.sources is not None and self.n_queries is not None:
            raise ValueError("pass n_queries or sources, not both")
        if self.n_queries is not None and self.n_queries <= 0:
            raise ValueError(
                f"n_queries must be > 0, got {self.n_queries}"
            )
        if not isinstance(self.degradation, DegradationMode):
            raise TypeError(
                f"degradation must be a DegradationMode, "
                f"got {type(self.degradation).__name__}"
            )
        if self.sources is not None:
            object.__setattr__(
                self, "sources", np.asarray(self.sources, dtype=np.int64)
            )
        if self.fetch_cache_bytes is not None and self.fetch_cache_bytes < 0:
            raise ValueError(
                f"fetch_cache_bytes must be >= 0, "
                f"got {self.fetch_cache_bytes}"
            )
        if self.timeline is not None and self.timeline <= 0:
            raise ValueError(
                f"timeline interval must be > 0, got {self.timeline}"
            )

    def resolved_retry_policy(self) -> RetryPolicy | None:
        """The retry policy this request runs with.

        A non-empty fault plan without an explicit policy gets the default
        :class:`RetryPolicy` — otherwise a dropped message would leave its
        caller waiting on a future nobody resolves (a virtual deadlock).
        """
        if self.retry_policy is not None:
            return self.retry_policy
        if self.fault_plan is not None and not self.fault_plan.is_empty():
            return RetryPolicy()
        return None
