"""``repro.engine`` — the distributed PPR engine facade.

Ties the substrates together into the system of Figure 1:

* :class:`EngineConfig` — machines, computing processes per machine,
  partitioner, network model, RPC optimization level;
* :class:`GraphEngine` — partition the input graph, build shards, and run
  batches of SSPPR queries / random walks / tensor-baseline queries on a
  simulated cluster, returning throughput, virtual makespan, and the
  per-phase runtime breakdowns used by Figure 6 and Table 3;
* :class:`RunRequest` — one validated, frozen description of a batched
  query run (query set, parameters, opt level, fault plan, retry policy,
  degradation mode), passed to :meth:`GraphEngine.run`.

The cluster layout matches the paper's simulation: ``K`` machines, each
hosting one Graph Storage server process (its shard in shared memory) and
``P`` SSPPR computing processes; queries are dispatched to the machine
owning their source node (the owner-compute rule).
"""

from repro.engine.breakdown import PHASES, aggregate_breakdowns, phase_seconds
from repro.engine.config import EngineConfig
from repro.engine.engine import GraphEngine, QueryRunResult, WalkRunResult
from repro.engine.request import RUN_MODES, RunRequest

__all__ = [
    "EngineConfig",
    "GraphEngine",
    "PHASES",
    "QueryRunResult",
    "RUN_MODES",
    "RunRequest",
    "WalkRunResult",
    "aggregate_breakdowns",
    "phase_seconds",
]
