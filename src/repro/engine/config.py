"""Engine configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.partition.base import Partitioner
from repro.partition.metis_lite import MetisLitePartitioner
from repro.ppr.distributed import OptLevel
from repro.rpc.retry import RetryPolicy
from repro.simt.network import NetworkModel
from repro.utils.validation import check_positive


@dataclass
class EngineConfig:
    """Knobs for one engine deployment.

    Defaults mirror the paper's main setting: min-cut partitioning, all RPC
    optimizations on, a separate storage-server process per machine.
    """

    n_machines: int = 4
    procs_per_machine: int = 1
    partitioner: Partitioner = field(default_factory=MetisLitePartitioner)
    network: NetworkModel = field(default_factory=NetworkModel)
    opt: OptLevel = OptLevel.OVERLAP
    #: colocate the storage server with the first computing process —
    #: reproduces the GIL-contention pathology the paper engineered away
    colocate_server: bool = False
    #: halo caching depth: 1 = metadata only (the paper's scheme),
    #: 2 = cache full adjacency rows of 1-hop halo nodes (Section 3.2.1's
    #: memory-for-communication trade)
    halo_hops: int = 1
    #: attach an RpcTracer to the cluster (per-call communication records,
    #: exposed on QueryRunResult.trace)
    trace_rpc: bool = False
    #: attach a SpanTracer (nested per-process spans + linked RPC
    #: client/server pairs, exportable as a Chrome trace); per-run override
    #: via ``RunRequest(trace=...)``
    trace_spans: bool = False
    #: deployment-wide timeout/retry/backoff default for remote calls;
    #: ``None`` keeps the zero-overhead dispatch path.  Per-run overrides
    #: travel on :class:`~repro.engine.request.RunRequest`.
    retry_policy: RetryPolicy | None = None
    #: adaptive fetch layer (docs/fetch-layer.md): split per-shard requests
    #: into halo-cache hits (served locally) and misses (only misses cross
    #: the wire).  Turn off together with ``fetch_cache_bytes=0`` to get the
    #: pre-fetch-layer wire behavior (Table 3 ablation rows).
    fetch_split: bool = True
    #: hot-vertex cache budget in bytes (0 disables); adjacency rows from
    #: remote responses are cached with deterministic frequency+recency
    #: eviction so hub vertices are fetched once per run
    fetch_cache_bytes: int = 1 << 22
    #: dedup concurrent in-flight fetches for overlapping (shard, node)
    #: sets against a per-machine pending-futures table
    fetch_coalesce: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_machines", self.n_machines)
        check_positive("procs_per_machine", self.procs_per_machine)
        if self.halo_hops not in (1, 2):
            raise ValueError(f"halo_hops must be 1 or 2, got {self.halo_hops}")
        if self.fetch_cache_bytes < 0:
            raise ValueError(
                f"fetch_cache_bytes must be >= 0, got {self.fetch_cache_bytes}"
            )

    @property
    def n_shards(self) -> int:
        """One shard per machine (the paper's layout)."""
        return self.n_machines

    def server_name(self, machine: int) -> str:
        return f"server:{machine}"

    def worker_name(self, machine: int, proc: int) -> str:
        return f"compute:{machine}.{proc}"
