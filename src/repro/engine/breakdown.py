"""Mapping raw timing categories onto the paper's breakdown phases.

Processes accumulate low-level categories while running (``local_call``,
``local_exec``, ``rpc_issue``, ``wait``, ``pop``, ``push``); Figure 6 and
Table 3 report four phases:

* **local_fetch**  = binding-layer overhead + local handler execution;
* **remote_fetch** = request issue overhead + time blocked on remote
  futures (with overlap on, the blocked time shrinks because local work
  happens while requests are in flight);
* **push**         = the PPR operators' update time;
* **pop**          = activated-set retrieval (negligible for the hashmap
  engine, |V|-proportional for the tensor baseline).

Runs against a faulty deployment add a fifth phase, **crashed** — time a
computing process spent blocked on a call that ultimately failed with
:class:`~repro.errors.WorkerCrashedError`.  Before this category existed,
that time was silently folded into ``wait`` (inflating ``remote_fetch``
with outage time); the total is conserved either way, which
``tests/test_obs.py`` asserts.
"""

from __future__ import annotations

from repro.utils.timer import TimeBreakdown

#: phase -> contributing low-level categories
PHASES: dict[str, tuple[str, ...]] = {
    "local_fetch": ("local_call", "local_exec"),
    "remote_fetch": ("rpc_issue", "wait"),
    "push": ("push",),
    "pop": ("pop",),
    "crashed": ("crashed",),
}


def phase_seconds(breakdown: TimeBreakdown) -> dict[str, float]:
    """Collapse a raw breakdown into the paper's four phases."""
    out = {}
    for phase, categories in PHASES.items():
        out[phase] = sum(breakdown.get(c) for c in categories)
    accounted = {c for cats in PHASES.values() for c in cats}
    out["other"] = sum(
        dt for cat, dt in breakdown.seconds.items() if cat not in accounted
    )
    return out


def aggregate_breakdowns(breakdowns: list[TimeBreakdown]) -> dict[str, float]:
    """Sum phase seconds across processes (the per-run totals the paper plots)."""
    total = TimeBreakdown()
    for bd in breakdowns:
        total.merge(bd)
    return phase_seconds(total)
