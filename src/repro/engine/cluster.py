"""Cluster bring-up: one RPC group per query run.

Builds a fresh scheduler + RPC context, registers one storage server per
machine hosting that machine's :class:`~repro.storage.shard.GraphShard`, and
hands back the RRef list every computing process receives (Section 3.1).
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.errors import SimulationError
from repro.obs import DEFAULT_MAX_SPANS, Obs
from repro.rpc.api import RpcContext
from repro.rpc.rref import RRef
from repro.simt.scheduler import Scheduler
from repro.storage.build import ShardedGraph


class SimCluster:
    """A simulated K-machine deployment of one sharded graph.

    ``trace_rpc`` / ``fault_plan`` / ``retry_policy`` override the config's
    deployment defaults for this cluster (one cluster is built per query
    run, so these are per-run knobs carried by a
    :class:`~repro.engine.request.RunRequest`).
    """

    def __init__(self, sharded: ShardedGraph, config: EngineConfig, *,
                 trace_rpc: bool | None = None, fault_plan=None,
                 retry_policy=None, trace: bool | None = None,
                 max_spans: int | None = None, sanitizer=None) -> None:
        if sharded.n_shards != config.n_shards:
            raise SimulationError(
                f"graph has {sharded.n_shards} shards but config expects "
                f"{config.n_shards} machines"
            )
        self.sharded = sharded
        self.config = config
        self.scheduler = Scheduler()
        tracer = None
        if config.trace_rpc if trace_rpc is None else trace_rpc:
            from repro.rpc.tracing import RpcTracer

            tracer = RpcTracer()
        if retry_policy is None:
            retry_policy = config.retry_policy
        #: observability bundle shared by this deployment's RPC layer and
        #: every process spawned into it
        self.obs = Obs.create(
            trace=config.trace_spans if trace is None else trace,
            max_spans=DEFAULT_MAX_SPANS if max_spans is None else max_spans,
        )
        #: optional race detector (repro.analysis.race.RaceDetector); the
        #: engine installs it around the run so ShardedMap accesses are
        #: recorded — on the single-threaded virtual-time runtime a clean
        #: run reports zero violations
        self.sanitizer = sanitizer
        self.obs.sanitizer = sanitizer
        self.ctx = RpcContext(self.scheduler, config.network, tracer=tracer,
                              fault_plan=fault_plan,
                              retry_policy=retry_policy, obs=self.obs)
        self.rrefs: list[RRef] = []
        self._compute_names: list[str] = []
        self._bring_up()

    def _bring_up(self) -> None:
        cfg = self.config
        for m in range(cfg.n_machines):
            self.ctx.register_server(cfg.server_name(m), m)
            rref = self.ctx.create_remote(
                cfg.server_name(m), "storage",
                lambda shard=self.sharded.shards[m]: shard,
            )
            self.rrefs.append(rref)

    def spawn_compute(self, machine: int, proc_index: int, body) -> str:
        """Spawn one computing process coroutine; returns its worker name.

        With ``colocate_server`` on, each machine's server shares the
        interpreter of its first computing process (the GIL-contention
        ablation): the server's service time is also charged to that
        process's clock.
        """
        name = self.config.worker_name(machine, proc_index)
        proc = self.scheduler.spawn(name, body)
        proc.tracer = self.obs.tracer
        self.ctx.register_worker(name, machine, proc)
        self._compute_names.append(name)
        if self.config.colocate_server and proc_index == 0:
            self.ctx.server_of(self.config.server_name(machine)).host_process = proc
        return name

    def run(self) -> float:
        """Drain the event loop; return the compute makespan (virtual s)."""
        self.scheduler.run()
        if not self._compute_names:
            return 0.0
        return self.scheduler.makespan(self._compute_names)

    def compute_processes(self):
        return [self.scheduler.processes[n] for n in self._compute_names]

    def results(self) -> dict[str, object]:
        return {n: self.scheduler.result_of(n) for n in self._compute_names}
