"""The public engine facade.

Typical use::

    from repro.engine import EngineConfig, GraphEngine, RunRequest
    from repro.graph import load_dataset

    graph = load_dataset("products", scale=0.1)
    engine = GraphEngine(graph, EngineConfig(n_machines=4))
    run = engine.run(RunRequest(n_queries=64))
    print(run.throughput, run.phases)

``GraphEngine`` partitions once (preprocessing, amortized across runs) and
deploys a fresh simulated cluster per query batch so virtual clocks start
at zero — matching the paper's repeated-run measurement protocol.

:meth:`GraphEngine.run` takes a :class:`~repro.engine.request.RunRequest`
bundling the query set, PPR parameters, optimization level, tracing, and
the fault-tolerance knobs (``FaultPlan`` / ``RetryPolicy`` / degradation
mode).  It is a thin wrapper over the serving layer's
:class:`~repro.serving.Session` — ``engine.run(request)`` opens a
throwaway session and executes through the same code path that
``session.drain()`` uses, so batch and serving runs are byte-for-byte
identical by construction.  Long-lived multi-tenant serving goes through
:meth:`GraphEngine.open_session` (docs/serving.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.cluster import SimCluster
from repro.engine.config import EngineConfig
from repro.engine.query import assign_queries, sample_sources
from repro.engine.request import RunRequest
from repro.graph.csr import CSRGraph
from repro.ppr.params import PPRParams
from repro.storage.build import ShardedGraph, build_shards
from repro.storage.dist_storage import DistGraphStorage
from repro.walk.random_walk import distributed_random_walk


@dataclass
class QueryRunResult:
    """Outcome of one batched query run — THE stable result schema.

    Every execution path (``engine.run``, ``session.drain``, the thread
    runtime mirror) returns this exact shape; tools and benchmarks may
    rely on these typed fields rather than digging through the
    ``metrics`` snapshot.  Fields group as:

    * batch outcome — ``n_queries``, ``makespan``, ``throughput``,
      ``phases``, ``per_proc_clocks``, ``states``, ``latencies``;
    * transport accounting — ``remote_requests``, ``local_calls``;
    * fault tolerance — ``retries``, ``timeouts``, ``dropped_messages``,
      ``degraded_queries``, ``abandoned_mass``;
    * serving-mode counters (zero outside a session) — ``admitted``,
      ``rejected``, ``deadline_missed``;
    * diagnostics — ``trace``, ``metrics``, ``obs``, ``race_violations``.
    """

    n_queries: int
    makespan: float               # virtual seconds, max over compute procs
    throughput: float             # queries / virtual second
    phases: dict[str, float]      # aggregated Figure 6 / Table 3 phases
    per_proc_clocks: dict[str, float]
    remote_requests: int
    local_calls: int
    #: source global id -> finished SSPPR / DenseSSPPR state
    states: dict[int, object] = field(repr=False, default_factory=dict)
    #: RpcTracer when the config asked for tracing, else None
    trace: object = field(repr=False, default=None)
    #: per-query virtual latency keyed by source global ID (engine runs)
    latencies: dict[int, float] = field(repr=False, default_factory=dict)
    #: fault-tolerance counters — all zero on a healthy run
    retries: int = 0              # re-sent attempts (attempt > 1)
    timeouts: int = 0             # attempts that hit their deadline
    dropped_messages: int = 0     # requests lost on the injected network
    degraded_queries: int = 0     # queries that abandoned >= 1 remote fetch
    abandoned_mass: float = 0.0   # total residual written off by skip_remote
    #: serving-mode counters, first-class (zero for plain batch runs):
    #: queries executed in this drained batch / admission rejections since
    #: the previous drain / this batch's SLO deadline misses
    admitted: int = 0
    rejected: int = 0
    deadline_missed: int = 0
    #: flat MetricsRegistry snapshot (rpc.* counters, rpc.latency
    #: percentiles, engine.* gauges) — identical counter values on the
    #: virtual-time scheduler and the thread runtime
    metrics: dict = field(repr=False, default_factory=dict)
    #: the run's Obs bundle; ``obs.tracer`` holds the spans when
    #: ``RunRequest(trace=True)`` (export with repro.obs.write_chrome_trace)
    obs: object = field(repr=False, default=None)
    #: per-machine remote-row demand: machine -> {packed owner key ->
    #: request count}, gathered by the fetch layer; feeds the
    #: telemetry-driven shard rebalancer (``repro.stream.rebalance``)
    heat: dict = field(repr=False, default_factory=dict)
    #: lockset violations found by the race sanitizer
    #: (``RunRequest(sanitize=True)``); always empty when sanitize is off,
    #: and empty on any clean run — the virtual-time runtime is
    #: single-threaded, so a non-empty list here means instrumentation
    #: recorded accesses from multiple OS threads without a common lock
    race_violations: list = field(repr=False, default_factory=list)
    #: telemetry Timeline (repro.obs.analysis) when the request asked for
    #: one with ``RunRequest(timeline=interval)``, else None
    timeline: object = field(repr=False, default=None)

    def latency_percentiles(self, q=(50, 90, 99)) -> dict[float, float]:
        """Virtual per-query latency percentiles in seconds.

        Keys are the requested percentiles as floats (``{50.0: ...}``),
        regardless of how ``q`` was spelled.
        """
        qs = [float(p) for p in q]
        if not self.latencies:
            return {p: 0.0 for p in qs}
        arr = np.asarray(list(self.latencies.values()), dtype=np.float64)
        if arr.size == 1:
            # a percentile of one sample is that sample; skip np.percentile,
            # which warns on some NumPy versions for degenerate inputs
            return {p: float(arr[0]) for p in qs}
        return {p: float(np.percentile(arr, p)) for p in qs}

    def phase_ratios(self) -> dict[str, float]:
        """Phases normalized by their sum (Figure 6's stacked ratios)."""
        total = sum(self.phases.values())
        if total <= 0:
            return {k: 0.0 for k in self.phases}
        return {k: v / total for k, v in self.phases.items()}


class GraphEngine:
    """Partition, deploy, and query a graph on a simulated cluster."""

    def __init__(self, graph: CSRGraph, config: EngineConfig | None = None,
                 *, sharded: ShardedGraph | None = None) -> None:
        self.config = config if config is not None else EngineConfig()
        self.graph = graph
        if sharded is not None:
            if sharded.n_shards != self.config.n_shards:
                raise ValueError(
                    f"prebuilt shards ({sharded.n_shards}) != config "
                    f"machines ({self.config.n_shards})"
                )
            self.sharded = sharded
        else:
            result = self.config.partitioner.partition(
                graph, self.config.n_shards
            )
            self.sharded = build_shards(graph, result,
                                        seed=self.config.seed,
                                        halo_hops=self.config.halo_hops)

    # -- serving -----------------------------------------------------------
    def open_session(self, config=None):
        """Open a long-lived serving session over this engine.

        ``config`` is a :class:`~repro.serving.SessionConfig` (tenancy,
        SLO, batching cadence, runtime).  The returned
        :class:`~repro.serving.Session` exposes
        ``submit(Query, tenant=...) -> QueryHandle`` and ``drain()``;
        see docs/serving.md.
        """
        from repro.serving.session import Session

        return Session(self, config)

    # -- SSPPR -------------------------------------------------------------
    def run(self, request: RunRequest) -> QueryRunResult:
        """Run one batched SSPPR request — the engine's query entry point.

        Dispatches on ``request.mode`` (PPR Engine / tensor baseline /
        inter-query batching), deploys a fresh cluster with the request's
        tracing, fault-plan, and retry-policy overrides, and reports the
        fault-tolerance counters alongside the usual throughput numbers.
        Thin wrapper over a throwaway serving session — the body lives in
        :meth:`repro.serving.Session._execute`, the single execution path
        shared with ``session.drain()``.

        Under ``degradation=fail_fast`` (the default), the first remote
        fetch that exhausts its retries propagates as
        :class:`~repro.errors.RpcTimeoutError` /
        :class:`~repro.errors.WorkerCrashedError` out of this call; under
        ``skip_remote`` the batch completes and the accuracy loss is
        accounted in ``degraded_queries`` / ``abandoned_mass``.
        """
        from repro.serving.session import Session

        return Session(self)._execute(request)

    def run_queries_batched(self, n_queries: int | None = None, *,
                            sources: np.ndarray | None = None,
                            params: PPRParams | None = None,
                            seed: int | None = None) -> QueryRunResult:
        """Run SSPPR with inter-query batching (one MultiSSPPR per process).

        Each computing process advances its whole query chunk in lockstep,
        sharing every iteration's per-shard RPC across queries — trading a
        little extra state for far fewer, larger messages.  Results land in
        ``states`` keyed by source global ID.  Convenience wrapper over
        :meth:`run` with ``mode="batched"``.
        """
        return self.run(RunRequest(
            n_queries=n_queries if sources is None else None,
            sources=sources, params=params, seed=seed, mode="batched",
        ))

    def run_tensor_queries(self, n_queries: int | None = None, *,
                           sources: np.ndarray | None = None,
                           params: PPRParams | None = None,
                           keep_states: bool = False,
                           seed: int | None = None) -> QueryRunResult:
        """Run the same batch on the dense tensor baseline.

        Convenience wrapper over :meth:`run` with ``mode="tensor"``.
        """
        return self.run(RunRequest(
            n_queries=n_queries if sources is None else None,
            sources=sources, params=params, keep_states=keep_states,
            seed=seed, mode="tensor",
        ))

    # -- random walks ---------------------------------------------------------
    def run_random_walks(self, n_roots: int, walk_length: int, *,
                         seed: int | None = None) -> "WalkRunResult":
        """Distributed random walks (Figure 4 right)."""
        cfg = self.config
        seed = cfg.seed if seed is None else seed
        roots = sample_sources(self.sharded, n_roots, seed=seed)
        cluster = SimCluster(self.sharded, cfg)
        assignment = assign_queries(self.sharded, roots,
                                    cfg.procs_per_machine)
        walks: dict[str, np.ndarray] = {}
        roots_by_proc: dict[str, np.ndarray] = {}
        for (machine, proc_index), chunk in assignment.items():
            name = cfg.worker_name(machine, proc_index)
            g = DistGraphStorage(cluster.rrefs, machine, name, compress=True)
            body = distributed_random_walk(
                g, _late_proc(cluster, name), chunk, self.sharded,
                walk_length,
            )
            cluster.spawn_compute(machine, proc_index, body)
            roots_by_proc[name] = chunk
        makespan = cluster.run()
        for name in roots_by_proc:
            walks[name] = cluster.scheduler.result_of(name)
        summary = np.concatenate([walks[n] for n in sorted(walks)], axis=0)
        all_roots = np.concatenate(
            [roots_by_proc[n] for n in sorted(roots_by_proc)]
        )
        return WalkRunResult(
            roots=all_roots,
            walks=summary,
            makespan=makespan,
            throughput=len(all_roots) / makespan if makespan > 0 else float("inf"),
        )

    # -- other graph algorithms (engine generality) ---------------------------
    def run_bfs(self, source_global: int) -> tuple[np.ndarray, float]:
        """Distributed BFS from ``source_global``.

        Returns ``(hop_distances, makespan)`` — distances are a dense |V|
        vector with -1 for unreached nodes.  Runs on the machine owning the
        source (owner-compute rule).
        """
        from repro.walk.bfs import distributed_bfs

        cfg = self.config
        machine = int(self.sharded.owner_shard[source_global])
        source_local = int(self.sharded.owner_local[source_global])
        cluster = SimCluster(self.sharded, cfg)
        name = cfg.worker_name(machine, 0)
        g = DistGraphStorage(cluster.rrefs, machine, name, compress=True)
        proxy = _late_proc(cluster, name)

        def body():
            state = yield from distributed_bfs(g, proxy, source_local)
            return state

        cluster.spawn_compute(machine, 0, body())
        makespan = cluster.run()
        state = cluster.scheduler.result_of(name)
        return state.dense_depths(self.sharded, self.graph.n_nodes), makespan

    def run_wcc(self) -> tuple[np.ndarray, float]:
        """Distributed weakly-connected components (all machines).

        Returns ``(labels, makespan)`` — labels are canonical per-component
        minimum global IDs.
        """
        from repro.walk.wcc import distributed_wcc

        cfg = self.config
        cluster = SimCluster(self.sharded, cfg)
        names = []
        for m in range(cfg.n_machines):
            name = cfg.worker_name(m, 0)
            g = DistGraphStorage(cluster.rrefs, m, name, compress=True)
            seeds = np.arange(self.sharded.shards[m].n_core)
            proxy = _late_proc(cluster, name)

            def body(g=g, seeds=seeds, proxy=proxy):
                state = yield from distributed_wcc(g, proxy, seeds)
                return state

            cluster.spawn_compute(m, 0, body())
            names.append(name)
        makespan = cluster.run()
        labels = np.full(self.graph.n_nodes, np.iinfo(np.int64).max,
                         dtype=np.int64)
        for name in names:
            state = cluster.scheduler.result_of(name)
            keys, labs = state.results()
            gids = self.sharded.global_of(keys // self.sharded.n_shards,
                                          keys % self.sharded.n_shards)
            np.minimum.at(labels, gids, labs)
        # Canonicalize: label = min global ID within each class.  Every
        # core node is seeded, so all nodes are touched.
        out = np.empty(self.graph.n_nodes, dtype=np.int64)
        for lab in np.unique(labels):
            members = np.flatnonzero(labels == lab)
            out[members] = members.min()
        return out, makespan


@dataclass
class WalkRunResult:
    """Outcome of one distributed random-walk batch."""

    roots: np.ndarray
    walks: np.ndarray     # (n_roots, walk_length) global IDs
    makespan: float
    throughput: float


class _late_proc:
    """Proxy handing the driver its own SimProcess once spawned.

    Driver generators need their process handle for ``measured()``, but the
    process object only exists after ``spawn``.  Generators are lazy — by
    the time the body first executes, the process is registered, and this
    proxy resolves it on first attribute access.
    """

    __slots__ = ("_cluster", "_name", "_proc")

    def __init__(self, cluster: SimCluster, name: str) -> None:
        self._cluster = cluster
        self._name = name
        self._proc = None

    def _resolve(self):
        if self._proc is None:
            self._proc = self._cluster.scheduler.processes[self._name]
        return self._proc

    def measured(self, category: str):
        return self._resolve().measured(category)

    def span(self, name: str, **attrs):
        return self._resolve().span(name, **attrs)

    def charge_seconds(self, dt: float, category: str = "other") -> None:
        self._resolve().charge_seconds(dt, category)

    @property
    def breakdown(self):
        return self._resolve().breakdown

    @property
    def clock(self) -> float:
        return self._resolve().clock

    @property
    def name(self) -> str:
        return self._name

    @property
    def tracer(self):
        return self._resolve().tracer
