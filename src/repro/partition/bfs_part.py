"""Balanced BFS region-growing partitioner.

Grows ``n_parts`` regions breadth-first from spread-out seeds, capping each
region at the ideal size.  Used standalone as a mid-quality baseline and as
the initial-partition step of the multilevel scheme on the coarsest graph
(where it also honours node weights).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.base import PartitionResult, Partitioner
from repro.utils.rng import rng_from_seed

UNASSIGNED = -1


def grow_regions(graph: CSRGraph, n_parts: int, node_weights: np.ndarray,
                 rng) -> np.ndarray:
    """Core region-growing routine over weighted nodes.

    Returns an assignment array.  Seeds are chosen greedily far apart
    (first random, then the unassigned node most distant from existing
    regions in BFS rounds).  Each region stops absorbing once it reaches the
    ideal weight; leftover nodes go to the lightest neighboring region.
    """
    n = graph.n_nodes
    assignment = np.full(n, UNASSIGNED, dtype=np.int64)
    total_weight = float(node_weights.sum())
    budget = total_weight / n_parts
    part_weight = np.zeros(n_parts)

    # Seed selection: node 0's component first; subsequent seeds are random
    # unassigned nodes (cheap, good enough at coarse level).
    frontiers: list[deque] = []
    order = rng.permutation(n)
    seed_iter = iter(order)

    def next_seed() -> int | None:
        for cand in seed_iter:
            if assignment[cand] == UNASSIGNED:
                return int(cand)
        return None

    for p in range(n_parts):
        seed = next_seed()
        if seed is None:
            break
        assignment[seed] = p
        part_weight[p] += node_weights[seed]
        frontiers.append(deque([seed]))

    # Round-robin BFS expansion under the weight budget.
    active = True
    while active:
        active = False
        for p, frontier in enumerate(frontiers):
            if not frontier or part_weight[p] >= budget:
                continue
            v = frontier.popleft()
            for u in graph.neighbors(v):
                if assignment[u] == UNASSIGNED and part_weight[p] < budget:
                    assignment[u] = p
                    part_weight[p] += node_weights[u]
                    frontier.append(int(u))
            if frontier:
                active = True

    # Stragglers (disconnected or budget-capped): lightest part wins.
    for v in np.flatnonzero(assignment == UNASSIGNED):
        nbr_parts = assignment[graph.neighbors(v)]
        nbr_parts = nbr_parts[nbr_parts != UNASSIGNED]
        if len(nbr_parts):
            # lightest among neighboring parts keeps locality
            candidates = np.unique(nbr_parts)
            p = candidates[np.argmin(part_weight[candidates])]
        else:
            p = int(np.argmin(part_weight))
        assignment[v] = p
        part_weight[p] += node_weights[v]
    return assignment


class BfsPartitioner(Partitioner):
    """Region-growing partitioner without multilevel refinement."""

    def __init__(self, seed=None) -> None:
        self.seed = seed

    def partition(self, graph: CSRGraph, n_parts: int) -> PartitionResult:
        self._check_args(graph, n_parts)
        rng = rng_from_seed(self.seed)
        weights = np.ones(graph.n_nodes)
        assignment = grow_regions(graph, n_parts, weights, rng)
        return PartitionResult(assignment, n_parts)
