"""Trivial baseline partitioners: random and hash (modulo)."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.base import PartitionResult, Partitioner
from repro.utils.rng import rng_from_seed


class RandomPartitioner(Partitioner):
    """Uniform random assignment — the worst-case communication baseline.

    Expected edge cut is ``1 - 1/k``; the partition-quality ablation uses it
    to show how much min-cut partitioning reduces remote traffic.
    """

    def __init__(self, seed=None) -> None:
        self.seed = seed

    def partition(self, graph: CSRGraph, n_parts: int) -> PartitionResult:
        self._check_args(graph, n_parts)
        rng = rng_from_seed(self.seed)
        # Balanced random: shuffle a round-robin assignment.
        assignment = np.arange(graph.n_nodes) % n_parts
        rng.shuffle(assignment)
        return PartitionResult(assignment, n_parts)


class HashPartitioner(Partitioner):
    """Deterministic modulo assignment (the common default in GNN systems)."""

    def partition(self, graph: CSRGraph, n_parts: int) -> PartitionResult:
        self._check_args(graph, n_parts)
        return PartitionResult(np.arange(graph.n_nodes) % n_parts, n_parts)
