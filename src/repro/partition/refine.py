"""Fiduccia-Mattheyses-style k-way boundary refinement.

Given an assignment, repeatedly move boundary nodes to the neighboring part
with the highest *gain* (external connectivity minus internal connectivity),
subject to a balance constraint on part weight.  Gains are computed for all
nodes at once via the sparse product ``A @ X`` (n x k connectivity matrix),
then applied greedily in gain order with incremental part-weight
bookkeeping — the standard vectorized FM approximation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def connectivity_matrix(graph: CSRGraph, assignment: np.ndarray,
                        n_parts: int) -> np.ndarray:
    """Dense ``(n, k)``: total edge weight from each node into each part."""
    adj = graph.to_scipy()
    x = np.zeros((graph.n_nodes, n_parts))
    x[np.arange(graph.n_nodes), assignment] = 1.0
    return np.asarray(adj @ x)


def refine(graph: CSRGraph, assignment: np.ndarray, node_weights: np.ndarray,
           n_parts: int, *, imbalance: float = 0.05,
           max_passes: int = 6) -> np.ndarray:
    """Refine ``assignment`` in place-sized passes; returns the new array.

    ``imbalance`` is the allowed overshoot of any part's weight over the
    ideal ``total / n_parts`` (METIS's default ubfactor is ~3-5%).
    """
    assignment = assignment.copy()
    node_weights = np.asarray(node_weights, dtype=np.float64)
    total = float(node_weights.sum())
    ideal = total / n_parts
    # At least one node of slack above the ideal, so perfectly-full parts
    # can still exchange nodes (otherwise interleaved assignments are stuck).
    cap = max((1.0 + imbalance) * ideal,
              ideal + (node_weights.max() if len(node_weights) else 0.0))
    part_weight = np.zeros(n_parts)
    np.add.at(part_weight, assignment, node_weights)

    for _ in range(max_passes):
        conn = connectivity_matrix(graph, assignment, n_parts)
        internal = conn[np.arange(graph.n_nodes), assignment]
        # Best alternative part per node.
        conn_masked = conn.copy()
        conn_masked[np.arange(graph.n_nodes), assignment] = -np.inf
        best_part = np.argmax(conn_masked, axis=1)
        best_external = conn_masked[np.arange(graph.n_nodes), best_part]
        gain = best_external - internal

        candidates = np.flatnonzero(gain > 1e-12)
        if len(candidates) == 0:
            break
        order = candidates[np.argsort(-gain[candidates])]
        moved = 0
        for v in order:
            target = best_part[v]
            source = assignment[v]
            if target == source:
                continue
            wv = node_weights[v]
            if part_weight[target] + wv > cap:
                continue
            # Keep parts nonempty.
            if part_weight[source] - wv <= 0:
                continue
            assignment[v] = target
            part_weight[source] -= wv
            part_weight[target] += wv
            moved += 1
        if moved == 0:
            break
    return assignment
