"""Partitioner interface and partition-assignment container."""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph


class PartitionResult:
    """A validated assignment of every node to one of ``n_parts`` shards."""

    __slots__ = ("assignment", "n_parts")

    def __init__(self, assignment: np.ndarray, n_parts: int) -> None:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.ndim != 1:
            raise PartitionError(f"assignment must be 1-D, got {assignment.shape}")
        if n_parts <= 0:
            raise PartitionError(f"n_parts must be > 0, got {n_parts}")
        if len(assignment) and (assignment.min() < 0
                                or assignment.max() >= n_parts):
            raise PartitionError(
                f"assignment values must be in [0, {n_parts}), got "
                f"[{assignment.min()}, {assignment.max()}]"
            )
        self.assignment = assignment
        self.n_parts = int(n_parts)

    @property
    def n_nodes(self) -> int:
        return len(self.assignment)

    def part_sizes(self) -> np.ndarray:
        """Node count per part (length ``n_parts``)."""
        return np.bincount(self.assignment, minlength=self.n_parts)

    def nodes_of(self, part: int) -> np.ndarray:
        """Global node IDs assigned to ``part``, ascending."""
        if not 0 <= part < self.n_parts:
            raise PartitionError(f"part {part} out of range [0, {self.n_parts})")
        return np.flatnonzero(self.assignment == part)

    def nonempty(self) -> bool:
        """Whether every part received at least one node."""
        return bool(np.all(self.part_sizes() > 0))

    def with_moves(self, moves: dict[int, int]) -> "PartitionResult":
        """A new result with the given ``{global id: new part}`` applied.

        Validation re-runs in full, so an out-of-range destination or a
        move that empties a part is rejected before any shard rebuild
        starts.  Used by the telemetry-driven rebalancer
        (:mod:`repro.stream.rebalance`).
        """
        if not moves:
            return self
        assignment = self.assignment.copy()
        for gid, part in sorted(moves.items()):
            if not 0 <= gid < len(assignment):
                raise PartitionError(
                    f"move of node {gid} outside graph of "
                    f"{len(assignment)} nodes")
            assignment[gid] = part
        out = PartitionResult(assignment, self.n_parts)
        if not out.nonempty():
            raise PartitionError("moves would leave an empty part")
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartitionResult(n_nodes={self.n_nodes}, n_parts={self.n_parts}, "
            f"sizes={self.part_sizes().tolist()})"
        )


class Partitioner(abc.ABC):
    """Strategy interface: map a graph to a :class:`PartitionResult`."""

    @abc.abstractmethod
    def partition(self, graph: CSRGraph, n_parts: int) -> PartitionResult:
        """Partition ``graph`` into ``n_parts`` shards."""

    @staticmethod
    def _check_args(graph: CSRGraph, n_parts: int) -> None:
        if n_parts <= 0:
            raise PartitionError(f"n_parts must be > 0, got {n_parts}")
        if n_parts > max(graph.n_nodes, 1):
            raise PartitionError(
                f"cannot split {graph.n_nodes} nodes into {n_parts} parts"
            )
