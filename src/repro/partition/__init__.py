"""``repro.partition`` — min-cut graph partitioning (the METIS substitute).

The paper partitions each input graph with METIS before distributing shards
(Section 3.2.1): minimize cut edges subject to balanced part sizes, so that
most Forward Push traversal stays inside the local shard.  METIS is not
available here, so :class:`MetisLitePartitioner` reimplements the same
multilevel scheme from scratch:

1. **Coarsening** — repeated heavy-edge mutual matching contracts the graph
   by ~35-50% per level while preserving cut structure;
2. **Initial partitioning** — greedy balanced BFS region growing on the
   coarsest graph;
3. **Uncoarsening + refinement** — project the assignment back level by
   level, running Fiduccia–Mattheyses-style boundary passes (vectorized
   gain computation via sparse connectivity matrices) under a balance
   constraint.

Baselines used by the partition-quality ablation: :class:`RandomPartitioner`
(uniform), :class:`HashPartitioner` (modulo), :class:`BfsPartitioner`
(region growing on the full graph without refinement).
"""

from repro.partition.base import PartitionResult, Partitioner
from repro.partition.bfs_part import BfsPartitioner
from repro.partition.metis_lite import MetisLitePartitioner
from repro.partition.quality import balance, edge_cut_fraction, partition_quality
from repro.partition.random_part import HashPartitioner, RandomPartitioner

__all__ = [
    "BfsPartitioner",
    "HashPartitioner",
    "MetisLitePartitioner",
    "PartitionResult",
    "Partitioner",
    "RandomPartitioner",
    "balance",
    "edge_cut_fraction",
    "partition_quality",
]
