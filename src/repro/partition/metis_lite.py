"""Multilevel min-cut partitioner (coarsen -> initial -> refine).

``MetisLitePartitioner`` reproduces METIS's three-phase scheme with the
building blocks in :mod:`~repro.partition.coarsen`,
:mod:`~repro.partition.bfs_part` and :mod:`~repro.partition.refine`.
Quality is below real METIS but dramatically above random/hash assignment,
which is what the engine needs: a small edge-cut fraction so most Forward
Push traversal is local (the effect evaluated in the paper's Figure 5a
discussion and our partition-quality ablation bench).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.base import PartitionResult, Partitioner
from repro.partition.bfs_part import grow_regions
from repro.partition.coarsen import coarsen_to
from repro.partition.refine import refine
from repro.utils.rng import rng_from_seed


class MetisLitePartitioner(Partitioner):
    """Multilevel k-way partitioner with FM refinement.

    Parameters
    ----------
    imbalance:
        Allowed part-weight overshoot (default 5%, METIS-like).
    coarsest_factor:
        Coarsening stops around ``coarsest_factor * n_parts`` nodes.
    refine_passes:
        FM passes per level during uncoarsening.
    seed:
        Controls seed selection of the initial partition.
    """

    def __init__(self, *, imbalance: float = 0.05, coarsest_factor: int = 60,
                 refine_passes: int = 6, seed=0) -> None:
        if imbalance < 0:
            raise ValueError(f"imbalance must be >= 0, got {imbalance}")
        if coarsest_factor < 1:
            raise ValueError(f"coarsest_factor must be >= 1, got {coarsest_factor}")
        self.imbalance = imbalance
        self.coarsest_factor = coarsest_factor
        self.refine_passes = refine_passes
        self.seed = seed

    def partition(self, graph: CSRGraph, n_parts: int) -> PartitionResult:
        self._check_args(graph, n_parts)
        if n_parts == 1:
            return PartitionResult(np.zeros(graph.n_nodes, dtype=np.int64), 1)

        rng = rng_from_seed(self.seed)
        target = max(self.coarsest_factor * n_parts, 128)
        levels = coarsen_to(graph, target)

        # Initial partition on the coarsest level.
        coarsest = levels[-1]
        assignment = grow_regions(
            coarsest.graph, n_parts, coarsest.node_weights, rng
        )
        assignment = refine(
            coarsest.graph, assignment, coarsest.node_weights, n_parts,
            imbalance=self.imbalance, max_passes=self.refine_passes,
        )

        # Uncoarsen: project the labels back through each finer level
        # (the coarser entry holds the finer->coarser map) and refine there.
        for finer_idx in range(len(levels) - 2, -1, -1):
            coarser = levels[finer_idx + 1]
            finer = levels[finer_idx]
            assignment = assignment[coarser.fine_to_coarse]
            assignment = refine(
                finer.graph, assignment, finer.node_weights, n_parts,
                imbalance=self.imbalance, max_passes=self.refine_passes,
            )

        result = PartitionResult(assignment, n_parts)
        if not result.nonempty():
            # Degenerate graphs (e.g. fewer connected nodes than parts):
            # backfill empty parts with nodes stolen from the largest part.
            assignment = result.assignment.copy()
            sizes = result.part_sizes()
            for p in np.flatnonzero(sizes == 0):
                donor = int(np.argmax(np.bincount(assignment,
                                                  minlength=n_parts)))
                victims = np.flatnonzero(assignment == donor)
                assignment[victims[0]] = p
            result = PartitionResult(assignment, n_parts)
        return result
