"""Graph coarsening by heavy-edge mutual matching.

Each coarsening level contracts a matching of the current graph: every node
proposes its heaviest-weight unmatched neighbor, and mutual proposals are
contracted into one coarse node.  Mutual matching is fully vectorizable and
removes 30-50% of nodes per level on typical graphs — the same mechanism
(and rationale: heavy edges should not be cut, so hide them inside coarse
nodes) as METIS's HEM phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRGraph


@dataclass
class CoarseLevel:
    """One level of the multilevel hierarchy."""

    graph: CSRGraph
    node_weights: np.ndarray      # original nodes folded into each coarse node
    fine_to_coarse: np.ndarray    # maps finer-level IDs -> this level's IDs


def heaviest_neighbor(graph: CSRGraph, eligible: np.ndarray) -> np.ndarray:
    """For each node, its heaviest eligible neighbor (-1 if none).

    ``eligible`` is a boolean mask over nodes; arcs to ineligible nodes are
    ignored.  Ties break toward the larger neighbor ID (lexsort order),
    deterministically.
    """
    n = graph.n_nodes
    proposal = np.full(n, -1, dtype=np.int64)
    if graph.n_arcs == 0:
        return proposal
    row = np.repeat(np.arange(n), np.diff(graph.indptr))
    col = graph.indices
    w = graph.weights
    mask = eligible[row] & eligible[col]
    if not mask.any():
        return proposal
    row, col, w = row[mask], col[mask], w[mask]
    # Sort by (row, weight, col); the last entry per row is the proposal.
    order = np.lexsort((col, w, row))
    row, col = row[order], col[order]
    last = np.empty(len(row), dtype=bool)
    last[-1] = True
    last[:-1] = row[1:] != row[:-1]
    proposal[row[last]] = col[last]
    return proposal


def match_mutual(graph: CSRGraph, *, rounds: int = 3) -> np.ndarray:
    """Heavy-edge mutual matching; returns ``mate`` array (-1 = unmatched)."""
    n = graph.n_nodes
    mate = np.full(n, -1, dtype=np.int64)
    for _ in range(rounds):
        eligible = mate == -1
        if not eligible.any():
            break
        proposal = heaviest_neighbor(graph, eligible)
        has = proposal >= 0
        ids = np.flatnonzero(has)
        # mutual: proposal[proposal[i]] == i, count each pair once (i < mate)
        mutual = ids[proposal[proposal[ids]] == ids]
        mutual = mutual[mutual < proposal[mutual]]
        mate[mutual] = proposal[mutual]
        mate[proposal[mutual]] = mutual
    return mate


def contract(graph: CSRGraph, node_weights: np.ndarray,
             mate: np.ndarray) -> CoarseLevel:
    """Contract matched pairs into coarse nodes, summing parallel edges."""
    n = graph.n_nodes
    # Cluster representative: min(i, mate[i]) for matched, i for unmatched.
    rep = np.arange(n)
    matched = mate >= 0
    rep[matched] = np.minimum(rep[matched], mate[matched])
    reps, fine_to_coarse = np.unique(rep, return_inverse=True)
    n_coarse = len(reps)

    coarse_weights = np.zeros(n_coarse)
    np.add.at(coarse_weights, fine_to_coarse, node_weights)

    if graph.n_arcs:
        row = fine_to_coarse[np.repeat(np.arange(n), np.diff(graph.indptr))]
        col = fine_to_coarse[graph.indices]
        keep = row != col  # intra-cluster arcs disappear
        adj = sp.coo_matrix(
            (graph.weights[keep], (row[keep], col[keep])),
            shape=(n_coarse, n_coarse),
        ).tocsr()
        adj.sum_duplicates()
        coarse = CSRGraph.from_scipy(adj)
    else:
        coarse = CSRGraph.from_edges(n_coarse, [], [])
    return CoarseLevel(coarse, coarse_weights, fine_to_coarse)


def coarsen_to(graph: CSRGraph, target_nodes: int,
               *, max_levels: int = 30) -> list[CoarseLevel]:
    """Build the multilevel hierarchy down to ~``target_nodes``.

    Returns levels ordered fine -> coarse; level 0 is the input graph with
    unit node weights and an identity map.  Stops early when matching can no
    longer shrink the graph by at least 5%.
    """
    levels = [CoarseLevel(graph, np.ones(graph.n_nodes),
                          np.arange(graph.n_nodes))]
    while levels[-1].graph.n_nodes > target_nodes and len(levels) < max_levels:
        current = levels[-1]
        mate = match_mutual(current.graph)
        nxt = contract(current.graph, current.node_weights, mate)
        if nxt.graph.n_nodes > 0.95 * current.graph.n_nodes:
            break
        levels.append(nxt)
    return levels
