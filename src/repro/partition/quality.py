"""Partition quality metrics: edge cut, balance, summary."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.base import PartitionResult


def edge_cut_fraction(graph: CSRGraph, result: PartitionResult) -> float:
    """Fraction of arcs whose endpoints live in different parts.

    This is the quantity min-cut partitioning minimizes; in the engine it
    directly determines the share of Forward Push traversal that must leave
    the local shard (the paper's "remote graph traversal ratio").
    """
    if result.n_nodes != graph.n_nodes:
        raise ValueError(
            f"assignment covers {result.n_nodes} nodes, graph has {graph.n_nodes}"
        )
    if graph.n_arcs == 0:
        return 0.0
    src_part = np.repeat(result.assignment, np.diff(graph.indptr))
    dst_part = result.assignment[graph.indices]
    return float(np.count_nonzero(src_part != dst_part) / graph.n_arcs)


def balance(result: PartitionResult) -> float:
    """Max part size over ideal size (1.0 = perfectly balanced)."""
    sizes = result.part_sizes()
    ideal = result.n_nodes / result.n_parts
    if ideal == 0:
        return 1.0
    return float(sizes.max() / ideal)


@dataclass(frozen=True)
class PartitionQuality:
    """Summary of one partitioning run."""

    n_parts: int
    edge_cut: float
    balance: float
    min_part: int
    max_part: int


def partition_quality(graph: CSRGraph, result: PartitionResult) -> PartitionQuality:
    """Compute all quality metrics at once."""
    sizes = result.part_sizes()
    return PartitionQuality(
        n_parts=result.n_parts,
        edge_cut=edge_cut_fraction(graph, result),
        balance=balance(result),
        min_part=int(sizes.min()),
        max_part=int(sizes.max()),
    )
