"""Wall-clock timing primitives used for virtual-time charging.

The discrete-event runtime (:mod:`repro.simt`) executes *real* compute (NumPy
work on real shard data) and charges the measured duration to the owning
simulated process's virtual clock.  These helpers provide the measurement
side: a context-manager stopwatch and a per-category accumulator used for the
runtime breakdowns of Figure 6 and Table 3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def wall_unix() -> float:
    """Current Unix time — the sanctioned wall-clock read.

    Deterministic code charges virtual seconds instead of reading clocks;
    the few places that legitimately need wall time (bench report
    timestamps, CLI progress timing) go through this shim so the REP001
    lint rule can allowlist one module rather than scattered call sites.
    """
    return time.time()


class Stopwatch:
    """Context-manager measuring a wall-clock interval via ``perf_counter``.

    Example
    -------
    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the start point; the next :meth:`lap` measures from here."""
        self._start = time.perf_counter()

    def lap(self) -> float:
        """Return seconds since construction/:meth:`restart` and restart."""
        now = time.perf_counter()
        out = now - self._start
        self._start = now
        return out


@dataclass
class TimeBreakdown:
    """Accumulated seconds per named category (e.g. ``local_fetch``).

    Used to regenerate the paper's runtime breakdowns.  Categories are
    created lazily on first charge.
    """

    seconds: dict[str, float] = field(default_factory=dict)

    def charge(self, category: str, dt: float) -> None:
        """Add ``dt`` seconds to ``category`` (negative charges rejected)."""
        if dt < 0.0:
            raise ValueError(f"negative charge {dt!r} for category {category!r}")
        self.seconds[category] = self.seconds.get(category, 0.0) + dt

    def total(self) -> float:
        """Total seconds across all categories."""
        return sum(self.seconds.values())

    def get(self, category: str) -> float:
        """Seconds charged to ``category`` (0.0 if never charged)."""
        return self.seconds.get(category, 0.0)

    def merge(self, other: "TimeBreakdown") -> None:
        """Add every category of ``other`` into this breakdown."""
        for cat, dt in other.seconds.items():
            self.charge(cat, dt)

    def as_dict(self) -> dict[str, float]:
        """A plain-dict copy, for reporting."""
        return dict(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{k}={v:.4g}s" for k, v in sorted(self.seconds.items()))
        return f"TimeBreakdown({parts})"


class CategoryTimer:
    """Measure real compute and charge it to a :class:`TimeBreakdown`.

    The ``charge(category)`` context manager measures the enclosed block with
    ``perf_counter`` and accumulates it.  An optional ``on_charge`` callback
    receives ``(category, dt)`` — the simt runtime uses it to advance virtual
    clocks.
    """

    def __init__(self, breakdown: TimeBreakdown | None = None, on_charge=None) -> None:
        self.breakdown = breakdown if breakdown is not None else TimeBreakdown()
        self._on_charge = on_charge

    def charge(self, category: str) -> "_ChargeContext":
        """Context manager: measure the block, charge it to ``category``."""
        return _ChargeContext(self, category)

    def charge_seconds(self, category: str, dt: float) -> None:
        """Charge a pre-measured or modeled duration directly."""
        self.breakdown.charge(category, dt)
        if self._on_charge is not None:
            self._on_charge(category, dt)


class _ChargeContext:
    __slots__ = ("_timer", "_category", "_start")

    def __init__(self, timer: CategoryTimer, category: str) -> None:
        self._timer = timer
        self._category = category
        self._start = 0.0

    def __enter__(self) -> "_ChargeContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        dt = time.perf_counter() - self._start
        self._timer.charge_seconds(self._category, dt)
