"""Seeded randomness helpers.

Every stochastic component in the library (graph generators, random walks,
query sampling, GNN init) takes an explicit seed or `numpy.random.Generator`
so that experiments are reproducible run-to-run.  These helpers normalize
between the two and derive independent child streams.
"""

from __future__ import annotations

import numpy as np


def rng_from_seed(seed) -> np.random.Generator:
    """Return a ``Generator``: pass through if already one, else seed a new one.

    ``seed`` may be ``None`` (OS entropy), an int, a ``SeedSequence``, or an
    existing ``Generator``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Used to give each simulated machine/process its own stream so results do
    not depend on scheduling order.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children by jumping the parent's bit generator state.
        ss = np.random.SeedSequence(seed.integers(0, 2**63 - 1))
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
