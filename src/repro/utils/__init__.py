"""Small shared utilities: timing, validation, and seeded randomness.

These helpers are deliberately dependency-free (NumPy only) and are used by
every other subpackage.
"""

from repro.utils.rng import rng_from_seed, spawn_rngs
from repro.utils.timer import CategoryTimer, Stopwatch, TimeBreakdown
from repro.utils.validation import (
    check_dtype,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_same_length,
    ensure_int_array,
)

__all__ = [
    "CategoryTimer",
    "Stopwatch",
    "TimeBreakdown",
    "check_dtype",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_same_length",
    "ensure_int_array",
    "rng_from_seed",
    "spawn_rngs",
]
