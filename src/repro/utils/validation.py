"""Argument-validation helpers with consistent error messages.

All public entry points of the library validate their inputs through these
helpers so that misuse fails fast with a clear message instead of deep inside
a NumPy kernel.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float,
                   *, inclusive: bool = False) -> None:
    """Raise ``ValueError`` unless ``lo < value < hi`` (or ``<=`` if inclusive)."""
    ok = (lo <= value <= hi) if inclusive else (lo < value < hi)
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{lo}, {hi}{bracket[1]}, got {value!r}"
        )


def check_same_length(**arrays) -> None:
    """Raise ``ValueError`` unless all named arrays have equal length."""
    lengths = {name: len(arr) for name, arr in arrays.items()}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"length mismatch: {lengths}")


def check_dtype(name: str, array: np.ndarray, kind: str) -> None:
    """Raise ``TypeError`` unless ``array.dtype.kind`` matches ``kind``.

    ``kind`` follows NumPy's convention: ``'i'`` signed integer, ``'u'``
    unsigned, ``'f'`` float, ``'iu'`` any integer.
    """
    if array.dtype.kind not in kind:
        raise TypeError(
            f"{name} must have dtype kind in {kind!r}, got {array.dtype} "
            f"(kind {array.dtype.kind!r})"
        )


def ensure_int_array(values, *, name: str = "values", dtype=np.int64) -> np.ndarray:
    """Convert ``values`` to a 1-D integer array, validating convertibility."""
    arr = np.asarray(values)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.dtype.kind == "f":
        if not np.all(arr == np.floor(arr)):
            raise TypeError(f"{name} contains non-integral floats")
        arr = arr.astype(dtype)
    elif arr.dtype.kind in "iu":
        arr = arr.astype(dtype, copy=False)
    elif arr.size == 0:
        arr = arr.astype(dtype)
    else:
        raise TypeError(f"{name} must be integer-like, got dtype {arr.dtype}")
    return arr
