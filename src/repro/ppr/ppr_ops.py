"""Local PPR operators (paper Section 3.3): hashmap-backed ``pop`` / ``push``.

:class:`SSPPR` holds the state of one in-flight SSPPR query: a
:class:`~repro.ppr.hashmap.ShardedMap` from packed ``(local ID, shard ID)``
keys to dense slots, and dense value arrays (residual, PPR score, weighted
degree, queued flag) indexed by slot.  Work per iteration is proportional to
the *touched frontier*, never to |V| — the property that separates the PPR
Engine from the tensor baseline.

Semantics follow the parallel Forward Push of Shun et al. [22] as adapted by
the paper: ``pop`` drains the activated set; ``push`` consumes a batch of
sources *with their neighbor information* (local VertexProp or remote
NeighborBatch/NeighborLists), converts ``alpha * r`` into PPR mass, spreads
``(1 - alpha) * r`` over out-neighbors weighted by ``W(v,u)/d_w(v)``, and
re-activates any node whose residual crosses ``epsilon * d_w``.

Dangling nodes (weighted degree 0) absorb their entire residual into their
PPR score — the limit behaviour of a restart-only walk stuck at the node —
keeping total mass conserved: ``sum(ppr) + sum(residual) == 1`` at every
step (a property the test suite checks with hypothesis).
"""

from __future__ import annotations

import numpy as np

from repro.ppr.hashmap import ShardedMap
from repro.ppr.params import PPRParams


def pack_keys(local_ids: np.ndarray, shard_ids: np.ndarray,
              n_shards: int) -> np.ndarray:
    """Pack ``(local, shard)`` into flat int64 keys: ``local * K + shard``."""
    return local_ids.astype(np.int64) * n_shards + shard_ids


def unpack_keys(keys: np.ndarray, n_shards: int) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_keys`."""
    return keys // n_shards, keys % n_shards


class SSPPR:
    """State and operators for one SSPPR query."""

    def __init__(self, source_local: int, source_shard: int,
                 params: PPRParams, source_wdeg: float, n_shards: int, *,
                 n_submaps: int = 16) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be > 0, got {n_shards}")
        if source_wdeg < 0:
            raise ValueError(f"source_wdeg must be >= 0, got {source_wdeg}")
        self.params = params
        self.n_shards = int(n_shards)
        self.map = ShardedMap(n_submaps=n_submaps)
        cap = 1024
        self.residual = np.zeros(cap)
        self.ppr = np.zeros(cap)
        self.wdeg = np.zeros(cap)
        self.queued = np.zeros(cap, dtype=bool)
        self._frontier_chunks: list[np.ndarray] = []
        # Operator statistics (push-count ablation, workload accounting).
        self.n_pushes = 0
        self.n_entries_processed = 0
        self.n_iterations = 0
        # Degradation accounting (skip_remote fault handling): residual mass
        # written off because its shard could not be fetched.  Invariantly
        # sum(ppr) + sum(residual) + abandoned_mass == 1.
        self.abandoned_mass = 0.0
        self.skipped_fetches = 0

        source_key = np.array(
            [int(source_local) * self.n_shards + int(source_shard)],
            dtype=np.int64,
        )
        idx, _ = self.map.get_or_insert(source_key)
        self.residual[idx[0]] = 1.0
        self.wdeg[idx[0]] = float(source_wdeg)
        self.queued[idx[0]] = True
        self._frontier_chunks.append(source_key)

    # -- capacity -----------------------------------------------------------
    def _ensure_capacity(self, needed: int) -> None:
        cap = len(self.residual)
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        for name in ("residual", "ppr", "wdeg"):
            old = getattr(self, name)
            grown = np.zeros(cap)
            grown[: len(old)] = old
            setattr(self, name, grown)
        grown_q = np.zeros(cap, dtype=bool)
        grown_q[: len(self.queued)] = self.queued
        self.queued = grown_q

    # -- operators -----------------------------------------------------------
    def pop(self) -> tuple[np.ndarray, np.ndarray]:
        """Drain the activated set -> ``(local_ids, shard_ids)`` and clear it.

        The paper: "the pop operator first returns the local ID tensor and
        the shard ID tensor from the current activated vertex set and then
        clears the set" — O(frontier), since the activated keys are stored
        explicitly rather than found by scanning.  Chunks appended by push
        may contain duplicates (cheaper there); this is the single dedup
        point per iteration.
        """
        if not self._frontier_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        raw = (self._frontier_chunks[0] if len(self._frontier_chunks) == 1
               else np.concatenate(self._frontier_chunks))
        self._frontier_chunks = []
        keys = np.unique(raw)
        idx = self.map.lookup(keys)
        self.queued[idx] = False
        self.n_iterations += 1
        return unpack_keys(keys, self.n_shards)

    def push(self, infos, local_ids: np.ndarray, shard_ids: np.ndarray) -> None:
        """Apply one batch of pushes given fetched neighbor information.

        ``infos`` is any response exposing ``to_arrays()`` (VertexProp,
        NeighborBatch, NeighborLists); ``local_ids``/``shard_ids`` are the
        popped sources this response answers, in request order.
        """
        (indptr, nbr_local, nbr_shard, _nbr_global, weights, nbr_wdeg,
         src_wdeg) = infos.to_arrays()
        if len(indptr) - 1 != len(local_ids):
            raise ValueError(
                f"infos cover {len(indptr) - 1} sources, got "
                f"{len(local_ids)} popped ids"
            )
        if len(local_ids) == 0:
            return
        src_keys = pack_keys(np.asarray(local_ids, dtype=np.int64),
                             np.asarray(shard_ids, dtype=np.int64),
                             self.n_shards)
        idx_v = self.map.lookup(src_keys)
        if np.any(idx_v < 0):
            raise ValueError("push received sources that were never touched")

        alpha = self.params.alpha
        r_v = self.residual[idx_v].copy()
        self.residual[idx_v] = 0.0
        dangling = src_wdeg <= 0.0
        # Dangling sources absorb everything; others convert an alpha share.
        gained = np.where(dangling, r_v, alpha * r_v)
        self.ppr[idx_v] += gained
        self.n_pushes += len(src_keys)

        # Per-entry contribution: w(v,u) / d_w(v) * (1 - alpha) * r(v).
        scale = np.where(dangling, 0.0,
                         (1.0 - alpha) * r_v / np.where(dangling, 1.0, src_wdeg))
        counts = np.diff(indptr)
        contrib = weights * np.repeat(scale, counts)
        self.n_entries_processed += len(contrib)
        if len(contrib) == 0:
            return

        # Resolve neighbor slots in one vectorized pass (duplicates fine).
        nbr_keys = pack_keys(nbr_local, nbr_shard, self.n_shards)
        slots, new = self.map.get_or_insert(nbr_keys)
        if new.any():
            self._ensure_capacity(len(self.map))
            # Record the newcomers' weighted degrees (duplicates write the
            # same global value, so no per-key dedup is needed).
            self.wdeg[slots[new]] = nbr_wdeg[new]
        # Scatter-add over the *dense slot domain*: O(touched), never O(|V|).
        # This aggregation confined to touched nodes is the hashmap's win.
        m_len = len(self.map)
        self.residual[:m_len] += np.bincount(slots, weights=contrib,
                                             minlength=m_len)

        threshold = self.params.epsilon * self.wdeg[slots]
        above = self.residual[slots] > threshold
        newly = above & ~self.queued[slots]
        if newly.any():
            hot = slots[newly]
            self.queued[hot] = True
            # may contain duplicate keys; pop() dedups once per iteration
            self._frontier_chunks.append(nbr_keys[newly])

    def abandon(self, local_ids: np.ndarray, shard_ids: np.ndarray) -> float:
        """Write off popped sources whose neighbor fetch failed for good.

        The ``skip_remote`` degradation mode calls this instead of ``push``
        when a shard's batch could not be fetched within the retry budget:
        the sources' residual mass is dropped (they were already dequeued by
        ``pop``), bounding the query's accuracy loss by the returned mass —
        the same quantity the forward-push L1 error bound is built on.
        """
        if len(local_ids) == 0:
            return 0.0
        keys = pack_keys(np.asarray(local_ids, dtype=np.int64),
                         np.asarray(shard_ids, dtype=np.int64),
                         self.n_shards)
        idx = self.map.lookup(keys)
        idx = idx[idx >= 0]
        lost = float(self.residual[idx].sum())
        self.residual[idx] = 0.0
        self.abandoned_mass += lost
        self.skipped_fetches += 1
        return lost

    # -- results ------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Operator statistics, named for the ``ppr.*`` metrics namespace.

        The engine sums these across collected query states into its
        :class:`~repro.obs.MetricsRegistry`; they are pure counts of operator
        work, so the totals are runtime-independent.
        """
        return {
            "ppr.pushes": self.n_pushes,
            "ppr.entries": self.n_entries_processed,
            "ppr.iterations": self.n_iterations,
            "ppr.touched": self.n_touched,
            "ppr.skipped_fetches": self.skipped_fetches,
        }

    @property
    def n_touched(self) -> int:
        """Number of distinct nodes that ever received mass."""
        return len(self.map)

    def frontier_size(self) -> int:
        """Nodes currently queued for the next iteration."""
        return int(sum(len(c) for c in self._frontier_chunks))

    def total_mass(self) -> float:
        """``sum(ppr) + sum(residual)`` — invariantly 1.0."""
        n = len(self.map)
        return float(self.ppr[:n].sum() + self.residual[:n].sum())

    def results(self) -> tuple[np.ndarray, np.ndarray]:
        """``(keys, ppr_values)`` for every node with positive PPR mass."""
        n = len(self.map)
        ppr = self.ppr[:n]
        mask = ppr > 0.0
        return self.map.keys()[mask], ppr[mask]

    def results_global(self, sharded) -> tuple[np.ndarray, np.ndarray]:
        """``(global_ids, ppr_values)`` via a ShardedGraph's address book."""
        keys, values = self.results()
        return sharded.globals_from_keys(keys), values

    def dense_result(self, sharded, n_nodes: int) -> np.ndarray:
        """PPR scores scattered into a dense |V| vector (for comparisons)."""
        out = np.zeros(n_nodes)
        gids, values = self.results_global(sharded)
        out[gids] = values
        return out
