"""Distributed SSPPR drivers — the iteration loops of Figure 4.

Both drivers are generator coroutines runnable on either runtime (the
virtual-time scheduler for benchmarks, real threads for concurrency tests).
They yield :class:`~repro.simt.events.Wait` effects on remote futures and
wrap real compute in ``proc.measured(category)`` blocks, which is where the
Figure 6 / Table 3 breakdowns come from.

:func:`distributed_sppr_query` is the PPR Engine (hashmap ops) with the
cumulative optimization levels of Table 3:

* ``SINGLE``   — one activated vertex per RPC, uncompressed;
* ``BATCH``    — per-shard batched RPCs, list-of-lists responses;
* ``COMPRESS`` — batched + CSR-compressed responses + zero-copy local path;
* ``OVERLAP``  — compress + remote calls issued before local work.

:func:`distributed_tensor_query` is the "PyTorch Tensor" baseline: the same
storage and batched/compressed RPCs, but dense |V|-length state with
full-vector activation scans.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import RpcTimeoutError, WorkerCrashedError
from repro.ppr.params import PPRParams
from repro.ppr.ppr_ops import SSPPR
from repro.ppr.tensor_ops import DenseSSPPR
from repro.simt.events import Wait
from repro.storage.dist_storage import DistGraphStorage

#: transport-level failures the degradation modes may absorb.  Handler
#: errors (ShardError etc.) always propagate: they are bugs, not faults.
TRANSPORT_ERRORS = (RpcTimeoutError, WorkerCrashedError)


class DegradationMode(enum.Enum):
    """What a query does when a remote fetch exhausts its retries.

    * ``FAIL_FAST``   — re-raise; the whole batch run fails loudly.
    * ``SKIP_REMOTE`` — write off the unreachable sources' residual mass
      (:meth:`~repro.ppr.ppr_ops.SSPPR.abandon`) and keep going, mirroring
      the halo-cache fallback's serve-what-you-have philosophy.  The query
      completes with bounded accuracy loss, accounted in
      ``abandoned_mass`` / ``skipped_fetches`` on the state and surfaced as
      ``degraded_queries`` on the run result.
    """

    FAIL_FAST = "fail_fast"
    SKIP_REMOTE = "skip_remote"


class OptLevel(enum.Enum):
    """Cumulative RPC optimization levels (Table 3 rows)."""

    SINGLE = "single"
    BATCH = "batch"
    COMPRESS = "compress"
    OVERLAP = "overlap"

    @property
    def batched(self) -> bool:
        return self is not OptLevel.SINGLE

    @property
    def compressed(self) -> bool:
        return self in (OptLevel.COMPRESS, OptLevel.OVERLAP)

    @property
    def overlapped(self) -> bool:
        return self is OptLevel.OVERLAP


def distributed_sppr_query(g: DistGraphStorage, proc, source_local: int,
                           params: PPRParams, *,
                           opt: OptLevel = OptLevel.OVERLAP,
                           degradation: DegradationMode = DegradationMode.FAIL_FAST):
    """Coroutine computing one SSPPR query on the PPR Engine.

    The query's source must be a core node of the caller's shard (the
    owner-compute rule dispatches each query to the machine hosting its
    source).  Returns the finished :class:`~repro.ppr.ppr_ops.SSPPR` state.

    ``degradation`` selects the response to a remote fetch that fails at
    the transport level (retry budget exhausted against a lossy network or
    crashed server): fail fast, or skip the unreachable batch with bounded,
    accounted accuracy loss.
    """
    if g.compress != opt.compressed:
        raise ValueError(
            f"storage compress={g.compress} inconsistent with opt={opt}"
        )
    skip = degradation is DegradationMode.SKIP_REMOTE
    shard = g.shard_id
    wfut = g.source_weighted_degrees(
        shard, np.array([source_local], dtype=np.int64)
    )
    src_wdeg = (yield Wait(wfut))[0]
    m = SSPPR(source_local, shard, params, float(src_wdeg), g.n_shards)

    while True:
        with proc.measured("pop"):
            node_ids, shard_ids = m.pop()
        if len(node_ids) == 0:
            break

        if not opt.batched:
            # Single mode: sequential per-vertex fetch + push.  Convert
            # once per frontier instead of one int() pair per vertex.
            node_list = node_ids.tolist()
            shard_list = shard_ids.tolist()
            for i in range(len(node_list)):
                fut = g.get_neighbor_infos_single(shard_list[i], node_list[i])
                try:
                    with proc.span("fetch", shard=shard_list[i]):
                        infos = yield Wait(fut)
                except TRANSPORT_ERRORS:
                    if not skip:
                        raise
                    m.abandon(node_ids[i:i + 1], shard_ids[i:i + 1])
                    continue
                with proc.measured("push"):
                    m.push(infos, node_ids[i:i + 1], shard_ids[i:i + 1])
            continue

        with proc.measured("pop"):
            masks = g.shard_masks(shard_ids)

        # Issue remote batches first (they are asynchronous either way; the
        # overlap flag decides whether we wait before or after local work).
        # shard_masks entries are non-empty index arrays by construction.
        futs = {}
        for j, mask in masks.items():
            if j != shard:
                futs[j] = g.get_neighbor_infos(j, node_ids[mask])

        remote_infos = {}
        if not opt.overlapped:
            for j, fut in futs.items():
                try:
                    with proc.span("fetch", shard=j):
                        remote_infos[j] = yield Wait(fut)
                except TRANSPORT_ERRORS:
                    if not skip:
                        raise
                    remote_infos[j] = None

        local_mask = masks.get(shard)
        if local_mask is not None:
            lfut = g.get_neighbor_infos(shard, node_ids[local_mask])
            infos = yield Wait(lfut)  # local calls resolve synchronously
            with proc.measured("push"):
                m.push(infos, node_ids[local_mask], shard_ids[local_mask])

        for j in futs:
            jm = masks[j]
            if opt.overlapped:
                try:
                    with proc.span("fetch", shard=j):
                        infos = yield Wait(futs[j])
                except TRANSPORT_ERRORS:
                    if not skip:
                        raise
                    infos = None
            else:
                infos = remote_infos[j]
            if infos is None:  # skip_remote: write off this shard's batch
                m.abandon(node_ids[jm], shard_ids[jm])
                continue
            with proc.measured("push"):
                m.push(infos, node_ids[jm], shard_ids[jm])
    return m


def distributed_multi_query(g: DistGraphStorage, proc,
                            source_locals: np.ndarray, params: PPRParams):
    """Coroutine: a batch of SSPPR queries advanced in lockstep.

    Extension of the paper's batching to the inter-query level: each
    iteration fetches the union of all queries' activated vertices — one
    RPC per destination shard for the whole batch.  Requires compressed
    storage (the batched responses are CSR).  Returns the finished
    :class:`~repro.ppr.multi_query.MultiSSPPR`.
    """
    from repro.ppr.multi_query import MultiSSPPR

    if not g.compress:
        raise ValueError("multi-query batching requires compressed storage")
    shard = g.shard_id
    source_locals = np.asarray(source_locals, dtype=np.int64)
    wfut = g.source_weighted_degrees(shard, source_locals)
    src_wdegs = yield Wait(wfut)
    m = MultiSSPPR(source_locals, shard, params, src_wdegs, g.n_shards)

    while True:
        with proc.measured("pop"):
            node_ids, shard_ids = m.pop()
        if len(node_ids) == 0:
            break
        with proc.measured("pop"):
            masks = g.shard_masks(shard_ids)
        futs = {}
        for j, mask in masks.items():
            if j != shard:
                futs[j] = g.get_neighbor_infos(j, node_ids[mask])
        local_mask = masks.get(shard)
        if local_mask is not None:
            infos = yield Wait(g.get_neighbor_infos(shard,
                                                    node_ids[local_mask]))
            with proc.measured("push"):
                m.push(infos, node_ids[local_mask], shard_ids[local_mask])
        for j in futs:
            infos = yield Wait(futs[j])
            jm = masks[j]
            with proc.measured("push"):
                m.push(infos, node_ids[jm], shard_ids[jm])
    return m


def distributed_tensor_query(g: DistGraphStorage, proc, source_global: int,
                             params: PPRParams, owner_local: np.ndarray,
                             owner_shard: np.ndarray):
    """Coroutine computing one SSPPR query with the dense tensor baseline.

    Uses the same distributed storage (batched + compressed RPCs — the
    baseline's best configuration) but dense |V| state; every iteration pays
    the full activation scan in ``pop``.
    """
    shard = g.shard_id
    n_nodes = len(owner_local)
    src_local = int(owner_local[source_global])
    wfut = g.source_weighted_degrees(
        shard, np.array([src_local], dtype=np.int64)
    )
    src_wdeg = (yield Wait(wfut))[0]
    m = DenseSSPPR(source_global, params, n_nodes, owner_local, owner_shard)
    m.seed_source_degree(float(src_wdeg))

    while True:
        with proc.measured("pop"):
            gids, node_ids, shard_ids = m.pop()
        if len(gids) == 0:
            break
        with proc.measured("pop"):
            masks = g.shard_masks(shard_ids)

        futs = {}
        for j, mask in masks.items():
            if j != shard:
                futs[j] = g.get_neighbor_infos(j, node_ids[mask])
        # Figure 6 configuration: no overlap — wait before local work.
        remote_infos = {}
        for j, fut in futs.items():
            remote_infos[j] = yield Wait(fut)

        local_mask = masks.get(shard)
        if local_mask is not None:
            lfut = g.get_neighbor_infos(shard, node_ids[local_mask])
            infos = yield Wait(lfut)
            with proc.measured("push"):
                m.push(infos, gids[local_mask])
        for j, infos in remote_infos.items():
            with proc.measured("push"):
                m.push(infos, gids[masks[j]])
    return m
