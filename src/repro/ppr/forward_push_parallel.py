"""Single-machine parallel (frontier-batched) Forward Push [Shun et al.].

Processes the whole activated set per iteration with vectorized gathers and
scatter-adds.  This is the algorithmic base the paper adopts because "there
are no dependencies within a set of activated vertices", making it
"naturally suitable for request batching" — the distributed engine in
:mod:`repro.ppr.distributed` runs exactly this schedule over sharded
storage.  The single-machine version here is used for correctness
cross-checks and the push-count ablation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.ppr.forward_push_seq import PushStats
from repro.ppr.params import PPRParams


def forward_push_parallel(graph: CSRGraph, source: int, params: PPRParams,
                          *, max_iterations: int = 100_000
                          ) -> tuple[np.ndarray, np.ndarray, PushStats]:
    """Frontier-batched Forward Push; returns ``(ppr, residual, stats)``."""
    n = graph.n_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    ppr = np.zeros(n)
    residual = np.zeros(n)
    residual[source] = 1.0
    wdeg = graph.weighted_degrees
    alpha, eps = params.alpha, params.epsilon

    frontier = np.array([source], dtype=np.int64)
    touched = np.zeros(n, dtype=bool)
    touched[source] = True
    n_pushes = 0
    n_iterations = 0

    while len(frontier):
        n_iterations += 1
        if n_iterations > max_iterations:
            raise ConvergenceError(
                f"parallel forward push exceeded {max_iterations} iterations"
            )
        r_f = residual[frontier].copy()
        d_f = wdeg[frontier]
        dangling = d_f <= 0.0
        ppr[frontier] += np.where(dangling, r_f, alpha * r_f)
        residual[frontier] = 0.0
        n_pushes += len(frontier)

        spreaders = frontier[~dangling]
        if len(spreaders):
            scale = (1.0 - alpha) * r_f[~dangling] / d_f[~dangling]
            counts = graph.indptr[spreaders + 1] - graph.indptr[spreaders]
            starts = graph.indptr[spreaders]
            offsets = np.zeros(len(spreaders) + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            idx = np.repeat(starts - offsets[:-1], counts) \
                + np.arange(offsets[-1])
            nbrs = graph.indices[idx]
            contrib = graph.weights[idx] * np.repeat(scale, counts)
            np.add.at(residual, nbrs, contrib)
            touched[nbrs] = True

        # New frontier: every node above threshold (including frontier
        # members that received mass from peers in this same round).
        active = residual > eps * wdeg
        active |= (residual > 0.0) & (wdeg <= 0.0)
        frontier = np.flatnonzero(active)

    stats = PushStats(n_pushes=n_pushes, n_iterations=n_iterations,
                      n_touched=int(touched.sum()))
    return ppr, residual, stats
