"""Monte-Carlo SSPPR — the third method family of Section 2.2.1.

The paper's related work contrasts three approaches to PPR: matrix-based
(power iteration — :mod:`~repro.ppr.power_iteration`), local-update based
(Forward Push — the engine), and Monte-Carlo based (random walk with
restart [Tong et al. 2006]) which "suffer[s] from high variance and
require[s] many iterations to achieve accurate results".  This module
implements the Monte-Carlo estimator so the trade-off is measurable:
simulate ``n_walks`` alpha-terminated random walks from the source and
estimate ``pi(s, v)`` as the fraction of walks terminating at ``v``.

Walks are simulated in vectorized generations (all live walkers advance
one step per NumPy round), so cost is O(total steps), independent of |V|.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_in_range, check_positive


def monte_carlo_ssppr(graph: CSRGraph, source: int, *, alpha: float = 0.462,
                      n_walks: int = 10_000, max_steps: int = 1_000,
                      seed=None) -> np.ndarray:
    """Estimate the SSPPR vector by random walks with restart.

    Each walk terminates at its current node with probability ``alpha``
    per step (matching the Forward Push / power-iteration semantics where
    "terminates at v" means the restart fires while at ``v``); dangling
    nodes terminate walks immediately.  Returns a dense estimate summing
    to 1.

    The estimator is unbiased with per-entry standard error
    ``sqrt(pi_v (1 - pi_v) / n_walks)`` — the high-variance behaviour the
    paper cites.
    """
    check_in_range("alpha", alpha, 0.0, 1.0)
    check_positive("n_walks", n_walks)
    check_positive("max_steps", max_steps)
    n = graph.n_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    rng = rng_from_seed(seed)

    counts = np.zeros(n, dtype=np.int64)
    current = np.full(n_walks, source, dtype=np.int64)
    alive = np.ones(n_walks, dtype=bool)
    degrees = np.diff(graph.indptr)

    for _ in range(max_steps):
        if not alive.any():
            break
        live_idx = np.flatnonzero(alive)
        live_nodes = current[live_idx]
        # Terminate: restart fires, or the walker is stuck on a dangling node.
        fire = rng.random(len(live_idx)) < alpha
        dangling = degrees[live_nodes] == 0
        stop = fire | dangling
        stopped_nodes = live_nodes[stop]
        if len(stopped_nodes):
            np.add.at(counts, stopped_nodes, 1)
        alive[live_idx[stop]] = False
        # Advance the survivors one weighted step.
        move_idx = live_idx[~stop]
        if len(move_idx) == 0:
            continue
        nodes = current[move_idx]
        starts = graph.indptr[nodes]
        spans = degrees[nodes]
        # weighted neighbor choice via per-walker inverse-CDF on edge weights
        r = rng.random(len(move_idx)) * graph.weighted_degrees[nodes]
        next_nodes = np.empty(len(move_idx), dtype=np.int64)
        # Vectorized per-row searchsorted: cumulative weights are not stored
        # per row, so walk rows in groups of equal spans is overkill; a
        # single pass with np.add.reduceat-style cumsum windows:
        for i, (s, span, target) in enumerate(zip(starts, spans, r)):
            w = graph.weights[s:s + span]
            next_nodes[i] = graph.indices[s + np.searchsorted(
                np.cumsum(w), target, side="right"
            ).clip(0, span - 1)]
        current[move_idx] = next_nodes

    # Walks still alive after max_steps terminate where they stand.
    if alive.any():
        np.add.at(counts, current[alive], 1)
    return counts / n_walks


def monte_carlo_ssppr_unweighted(graph: CSRGraph, source: int, *,
                                 alpha: float = 0.462,
                                 n_walks: int = 10_000,
                                 max_steps: int = 1_000,
                                 seed=None) -> np.ndarray:
    """Fast path ignoring edge weights (uniform neighbor choice).

    Fully vectorized (no per-walker Python loop); used by benchmarks where
    the graphs carry near-uniform weights and by tests as a structural
    check.
    """
    check_in_range("alpha", alpha, 0.0, 1.0)
    check_positive("n_walks", n_walks)
    n = graph.n_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    rng = rng_from_seed(seed)

    counts = np.zeros(n, dtype=np.int64)
    current = np.full(n_walks, source, dtype=np.int64)
    alive = np.ones(n_walks, dtype=bool)
    degrees = np.diff(graph.indptr)

    for _ in range(max_steps):
        if not alive.any():
            break
        live_idx = np.flatnonzero(alive)
        live_nodes = current[live_idx]
        fire = rng.random(len(live_idx)) < alpha
        dangling = degrees[live_nodes] == 0
        stop = fire | dangling
        if stop.any():
            np.add.at(counts, live_nodes[stop], 1)
            alive[live_idx[stop]] = False
        move_idx = live_idx[~stop]
        if len(move_idx) == 0:
            continue
        nodes = current[move_idx]
        offsets = rng.integers(0, np.maximum(degrees[nodes], 1))
        pick = np.minimum(graph.indptr[nodes] + offsets,
                          max(graph.n_arcs - 1, 0))
        current[move_idx] = graph.indices[pick]
    if alive.any():
        np.add.at(counts, current[alive], 1)
    return counts / n_walks
