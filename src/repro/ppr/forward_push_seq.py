"""Sequential Forward Push — a faithful Algorithm 1 reference.

Processes one activated vertex at a time with a work queue, exactly as the
paper's Algorithm 1 writes it.  Used as the correctness reference for the
batched engines and as the baseline of the push-count ablation (the parallel
version "requires slightly more pushes than the sequential version").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.ppr.params import PPRParams


@dataclass
class PushStats:
    """Work counters for one Forward Push run."""

    n_pushes: int
    n_iterations: int
    n_touched: int


def forward_push_sequential(graph: CSRGraph, source: int, params: PPRParams,
                            *, max_pushes: int | None = None
                            ) -> tuple[np.ndarray, np.ndarray, PushStats]:
    """Algorithm 1: returns ``(ppr, residual, stats)`` dense vectors.

    ``max_pushes`` guards against runaway parameter choices (default
    ``500 * n_nodes / epsilon`` is effectively unbounded for sane inputs).
    """
    n = graph.n_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    ppr = np.zeros(n)
    residual = np.zeros(n)
    residual[source] = 1.0
    wdeg = graph.weighted_degrees
    alpha, eps = params.alpha, params.epsilon
    if max_pushes is None:
        max_pushes = int(min(5e8, 500 * n / eps))

    queue = deque([source])
    queued = np.zeros(n, dtype=bool)
    queued[source] = True
    n_pushes = 0
    touched = np.zeros(n, dtype=bool)
    touched[source] = True

    while queue:
        v = queue.popleft()
        queued[v] = False
        r_v = residual[v]
        d_v = wdeg[v]
        # Residual may have fallen back below threshold since queueing
        # (only possible at queue insertion time here, but keep the guard
        # so semantics match the while-exists loop of Algorithm 1).
        if d_v > 0 and r_v <= eps * d_v:
            continue
        if r_v <= 0.0:
            continue
        n_pushes += 1
        if n_pushes > max_pushes:
            raise ConvergenceError(
                f"forward push exceeded {max_pushes} pushes "
                f"(alpha={alpha}, eps={eps})"
            )
        if d_v <= 0.0:
            # Dangling node: walk can only restart here; absorb everything.
            ppr[v] += r_v
            residual[v] = 0.0
            continue
        ppr[v] += alpha * r_v
        m = (1.0 - alpha) * r_v
        residual[v] = 0.0
        s, e = graph.indptr[v], graph.indptr[v + 1]
        nbrs = graph.indices[s:e]
        residual[nbrs] += graph.weights[s:e] * (m / d_v)
        touched[nbrs] = True
        # Activate neighbors crossing their threshold.
        above = residual[nbrs] > eps * np.where(wdeg[nbrs] > 0, wdeg[nbrs], 0.0)
        for u in nbrs[above & ~queued[nbrs]]:
            queue.append(int(u))
            queued[u] = True

    stats = PushStats(n_pushes=n_pushes, n_iterations=n_pushes,
                      n_touched=int(np.count_nonzero(touched)))
    return ppr, residual, stats
