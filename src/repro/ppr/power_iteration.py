"""Power iteration SSPPR — the high-precision "DGL SpMM" baseline.

Iterates ``pi_{t+1} = alpha * e_s + (1 - alpha) * pi_t P`` with the
row-stochastic transition matrix ``P = D_w^{-1} W`` (dangling rows replaced
by self-loops, matching the absorb semantics of the Forward Push engines)
until the L-infinity change drops below ``tol`` — the paper uses
``tol = 1e-10`` and treats the result as ground truth.

Each iteration is one sparse matrix-vector product over the *entire* graph,
which is why this method cannot exploit locality: the same reason the paper
finds Forward Push up to 7.2x faster even in the tensor world.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_in_range, check_positive

#: the paper's ground-truth precision
PAPER_TOL = 1e-10


def build_transition(graph: CSRGraph) -> sp.csr_matrix:
    """Column-oriented operator ``P^T`` with dangling self-loops.

    Returned transposed so each iteration is a CSR matvec
    (``pi P == P^T @ pi``).
    """
    p = graph.transition_matrix().tolil()
    dangling = np.flatnonzero(graph.weighted_degrees <= 0.0)
    for d in dangling:
        p[d, d] = 1.0
    return sp.csr_matrix(p.T)


def power_iteration_ssppr(graph: CSRGraph, source: int, *,
                          alpha: float = 0.462, tol: float = PAPER_TOL,
                          max_iterations: int = 10_000,
                          pt: sp.csr_matrix | None = None) -> np.ndarray:
    """High-precision SSPPR vector for ``source``.

    ``pt`` lets callers reuse a prebuilt transition operator across queries
    (the realistic amortized setting for batched workloads).
    """
    check_in_range("alpha", alpha, 0.0, 1.0)
    check_positive("tol", tol)
    n = graph.n_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    if pt is None:
        pt = build_transition(graph)

    restart = np.zeros(n)
    restart[source] = alpha
    pi = restart.copy()
    for _ in range(max_iterations):
        nxt = restart + (1.0 - alpha) * (pt @ pi)
        delta = float(np.max(np.abs(nxt - pi)))
        pi = nxt
        if delta <= tol:
            return pi
    raise ConvergenceError(
        f"power iteration did not reach tol={tol} in {max_iterations} iterations"
    )
