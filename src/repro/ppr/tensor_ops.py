"""Dense tensor-based SSPPR state — the "PyTorch Tensor" baseline.

Re-creates the paper's pure-tensor distributed Forward Push: the PPR and
residual vectors are dense |V|-length arrays indexed by *global* node ID,
and — crucially — retrieving the activated set each iteration requires a
threshold test plus nonzero scan over the **entire** vector ("the overhead
of SSPPR calculation increases in proportion to the total number of
nodes").  Pushes use scatter-add over the dense arrays, exactly the
``index_select`` / ``scatter_add_`` op mix a PyTorch implementation uses.

The address-translation arrays (global -> local/shard) are part of the
baseline's state: a tensor implementation carries them as tensors.
"""

from __future__ import annotations

import numpy as np

from repro.ppr.params import PPRParams


class DenseSSPPR:
    """Dense-array state for one tensor-based SSPPR query."""

    def __init__(self, source_global: int, params: PPRParams,
                 n_nodes: int, owner_local: np.ndarray,
                 owner_shard: np.ndarray) -> None:
        if not 0 <= source_global < n_nodes:
            raise ValueError(
                f"source {source_global} out of range [0, {n_nodes})"
            )
        if len(owner_local) != n_nodes or len(owner_shard) != n_nodes:
            raise ValueError("address arrays must have length n_nodes")
        self.params = params
        self.n_nodes = int(n_nodes)
        self.owner_local = owner_local
        self.owner_shard = owner_shard
        self.residual = np.zeros(n_nodes)
        self.ppr = np.zeros(n_nodes)
        # Weighted degrees learned from responses; NaN = unknown.  Unknown
        # entries can only carry residual if mass reached them, and mass
        # only arrives together with their weighted degree, so the first
        # pop never misses an activation.
        self.wdeg = np.full(n_nodes, np.nan)
        self.residual[source_global] = 1.0
        self._first_pop_done = False
        self._source = int(source_global)
        self.n_pushes = 0
        self.n_iterations = 0

    def seed_source_degree(self, source_wdeg: float) -> None:
        """Record the source's weighted degree (fetched at query start)."""
        self.wdeg[self._source] = float(source_wdeg)

    def pop(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Activated nodes -> ``(global_ids, local_ids, shard_ids)``.

        Performs the full-vector threshold scan the paper identifies as the
        dominant tensor-side cost.
        """
        known = ~np.isnan(self.wdeg)
        active = known & (
            (self.residual > self.params.epsilon * self.wdeg)
            | ((self.residual > 0.0) & (self.wdeg <= 0.0))
        )
        gids = np.flatnonzero(active)
        self.n_iterations += 1
        return gids, self.owner_local[gids], self.owner_shard[gids]

    def push(self, infos, global_ids: np.ndarray) -> None:
        """Dense scatter-add push for one fetched batch."""
        (indptr, _nbr_local, _nbr_shard, nbr_global, weights, nbr_wdeg,
         src_wdeg) = infos.to_arrays()
        if len(indptr) - 1 != len(global_ids):
            raise ValueError(
                f"infos cover {len(indptr) - 1} sources, got "
                f"{len(global_ids)} ids"
            )
        if len(global_ids) == 0:
            return
        alpha = self.params.alpha
        gids = np.asarray(global_ids, dtype=np.int64)
        self.wdeg[gids] = src_wdeg
        r_v = self.residual[gids].copy()
        self.residual[gids] = 0.0
        dangling = src_wdeg <= 0.0
        self.ppr[gids] += np.where(dangling, r_v, alpha * r_v)
        self.n_pushes += len(gids)

        scale = np.where(dangling, 0.0,
                         (1.0 - alpha) * r_v / np.where(dangling, 1.0, src_wdeg))
        counts = np.diff(indptr)
        contrib = weights * np.repeat(scale, counts)
        if len(contrib) == 0:
            return
        # Dense scatter-add: the best a pure-tensor implementation can do is
        # index_add over the full |V|-length vector — same primitive as the
        # hashmap engine's aggregation, but over the global domain.
        self.residual += np.bincount(nbr_global, weights=contrib,
                                     minlength=self.n_nodes)
        self.wdeg[nbr_global] = nbr_wdeg

    def total_mass(self) -> float:
        """``sum(ppr) + sum(residual)`` — invariantly 1.0."""
        return float(self.ppr.sum() + self.residual.sum())

    def dense_result(self) -> np.ndarray:
        """The PPR vector (already dense)."""
        return self.ppr
