"""``repro.ppr`` — SSPPR computation: Forward Push engines and baselines.

Implements every PPR method the paper evaluates:

* :class:`ShardedMap` (:mod:`~repro.ppr.hashmap`) — a vectorized
  open-addressing hash map partitioned into submaps, emulating the
  lock-free parallel-hashmap the paper's C++ operators build on;
* :class:`SSPPR` (:mod:`~repro.ppr.ppr_ops`) — the hashmap-backed local PPR
  operators ``pop`` / ``push`` of Section 3.3 ("PPR Ops");
* :class:`DenseSSPPR` (:mod:`~repro.ppr.tensor_ops`) — the dense
  tensor-based state used by the "PyTorch Tensor" baseline, whose per-
  iteration cost is proportional to |V|;
* :func:`power_iteration_ssppr` — the high-precision "DGL SpMM" baseline
  (ground truth at eps' = 1e-10);
* sequential (Algorithm 1) and single-machine parallel Forward Push
  references for correctness cross-checks and the push-count ablation;
* the distributed drivers of Figure 4 (:mod:`~repro.ppr.distributed`) with
  the Single / +Batch / +Compress / +Overlap optimization levels of
  Table 3;
* accuracy utilities (top-k precision vs ground truth).
"""

from repro.ppr.accuracy import l1_error, topk_nodes, topk_precision
from repro.ppr.distributed import (
    DegradationMode,
    OptLevel,
    distributed_multi_query,
    distributed_sppr_query,
    distributed_tensor_query,
)
from repro.ppr.fora import fora_ssppr
from repro.ppr.forward_push_parallel import forward_push_parallel
from repro.ppr.forward_push_seq import forward_push_sequential
from repro.ppr.hashmap import ShardedMap
from repro.ppr.monte_carlo import monte_carlo_ssppr, monte_carlo_ssppr_unweighted
from repro.ppr.multi_query import MultiSSPPR
from repro.ppr.params import PPRParams
from repro.ppr.power_iteration import power_iteration_ssppr
from repro.ppr.ppr_ops import SSPPR
from repro.ppr.tensor_ops import DenseSSPPR

__all__ = [
    "DegradationMode",
    "DenseSSPPR",
    "MultiSSPPR",
    "OptLevel",
    "PPRParams",
    "SSPPR",
    "ShardedMap",
    "distributed_multi_query",
    "fora_ssppr",
    "distributed_sppr_query",
    "distributed_tensor_query",
    "forward_push_parallel",
    "forward_push_sequential",
    "l1_error",
    "monte_carlo_ssppr",
    "monte_carlo_ssppr_unweighted",
    "power_iteration_ssppr",
    "topk_nodes",
    "topk_precision",
]
