"""Vectorized sharded hash map — the parallel-hashmap emulation.

The paper's C++ PPR operators store ``<local ID, shard ID> -> value`` pairs
in greg7mdp/parallel-hashmap: a table split into submaps, with updates
partitioned across threads *by submap index* so no locks are needed.  This
module provides the same structure in NumPy:

* keys are non-negative ``int64`` (the engine packs ``local * K + shard``);
* the table is ``n_submaps`` contiguous open-addressed regions; a key's
  submap is chosen by the low bits of its hash, mirroring phmap;
* **all operations are batch-vectorized**: lookups and inserts process a
  whole key array per probe round (a masked compare + claim/verify cycle
  that emulates CAS), so a push over 100k neighbor entries costs a handful
  of NumPy kernels rather than 100k interpreter iterations — this is the
  "C++ speed" stand-in;
* duplicate keys are allowed in every call: duplicates of one key compute
  identical probe sequences, so they move through the rounds in lockstep
  and resolve to the same slot; dense-index claiming dedups by slot;
* the map stores only key -> *dense index* (insertion order).  Values live
  in caller-owned dense arrays that never move on rehash, exactly like the
  slot/value split in the paper's operators.
"""

from __future__ import annotations

import numpy as np

_EMPTY = np.int64(-1)


def _mix(keys: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer — avalanche the bits of each key (vectorized)."""
    with np.errstate(over="ignore"):
        z = keys.astype(np.uint64, copy=True)
        z += np.uint64(0x9E3779B97F4A7C15)
        z ^= z >> np.uint64(30)
        z *= np.uint64(0xBF58476D1CE4E5B9)
        z ^= z >> np.uint64(27)
        z *= np.uint64(0x94D049BB133111EB)
        z ^= z >> np.uint64(31)
    return z


class ShardedMap:
    """Open-addressed int64 -> dense-index map with submap partitioning."""

    #: race-sanitizer hook (repro.analysis.race.install).  Class-level and
    #: None by default: the off path costs one attribute check per *batched*
    #: call, so instrumentation is zero-overhead when disabled.
    _sanitizer = None

    def __init__(self, *, initial_submap_capacity: int = 2048,
                 n_submaps: int = 16, max_load: float = 0.35) -> None:
        if n_submaps < 1 or n_submaps & (n_submaps - 1):
            raise ValueError(f"n_submaps must be a power of two, got {n_submaps}")
        if initial_submap_capacity < 4:
            raise ValueError("initial_submap_capacity must be >= 4")
        if not 0.1 <= max_load <= 0.9:
            raise ValueError(f"max_load must be in [0.1, 0.9], got {max_load}")
        self.n_submaps = n_submaps
        self.max_load = max_load
        self._submap_cap = 1 << int(np.ceil(np.log2(initial_submap_capacity)))
        self._submap_bits = int(np.log2(n_submaps))
        self._alloc_table()
        # Dense side: insertion-ordered keys.
        self._dense_keys = np.empty(1024, dtype=np.int64)
        self._n = 0
        #: total probe rounds executed (diagnostics / collision stats)
        self.probe_rounds = 0
        self.rehashes = 0

    def _alloc_table(self) -> None:
        total = self.n_submaps * self._submap_cap
        self._keys = np.full(total, _EMPTY, dtype=np.int64)
        self._index = np.empty(total, dtype=np.int64)

    # -- public surface --------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        return self.n_submaps * self._submap_cap

    def keys(self) -> np.ndarray:
        """All keys in insertion (dense-index) order."""
        return self._dense_keys[: self._n]

    def submap_of(self, keys) -> np.ndarray:
        """Which submap each key lives in (the thread-partitioning index)."""
        h = _mix(np.asarray(keys, dtype=np.int64))
        return (h & np.uint64(self.n_submaps - 1)).astype(np.int64)

    def submap_sizes(self) -> np.ndarray:
        """Occupied entries per submap (for load-balance diagnostics)."""
        occ = self._keys != _EMPTY
        return occ.reshape(self.n_submaps, self._submap_cap).sum(axis=1)

    def _start_slots(self, keys: np.ndarray) -> np.ndarray:
        """Initial probe slot per key (submap base + in-submap offset)."""
        h = _mix(keys)
        base = (h & np.uint64(self.n_submaps - 1)).astype(np.int64) \
            * self._submap_cap
        offset = ((h >> np.uint64(self._submap_bits))
                  & np.uint64(self._submap_cap - 1)).astype(np.int64)
        return base + offset

    def _advance(self, slot: np.ndarray) -> np.ndarray:
        """Next linear-probe slot, wrapping within each submap."""
        cap = self._submap_cap
        base = slot & ~np.int64(cap - 1)
        return base + ((slot + 1) & (cap - 1))

    def lookup(self, keys) -> np.ndarray:
        """Dense indices of ``keys`` (-1 where missing).  Duplicates OK."""
        if self._sanitizer is not None:
            self._sanitizer.record(f"ShardedMap@{id(self):#x}", write=False)
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        self._check_keys(keys)
        n = len(keys)
        out = np.full(n, -1, dtype=np.int64)
        if n == 0 or self._n == 0:
            return out
        slot = self._start_slots(keys)
        # Fast first round on the full array.
        cur = self._keys[slot]
        hit = cur == keys
        out[hit] = self._index[slot[hit]]
        pending = np.flatnonzero(~hit & (cur != _EMPTY))
        self.probe_rounds += 1
        # Straggler rounds on shrinking subsets.
        pslot = slot[pending]
        pkeys = keys[pending]
        rounds = 1
        while len(pending):
            # After submap_cap probes a key has inspected its entire
            # submap: anything still pending is definitively absent (a
            # completely full submap has no empty slot to terminate on).
            if rounds >= self._submap_cap:
                break
            pslot = self._advance(pslot)
            cur = self._keys[pslot]
            hit = cur == pkeys
            out[pending[hit]] = self._index[pslot[hit]]
            alive = ~hit & (cur != _EMPTY)
            pending, pslot, pkeys = pending[alive], pslot[alive], pkeys[alive]
            self.probe_rounds += 1
            rounds += 1
        return out

    def get_or_insert(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """Dense indices for ``keys``, inserting missing ones.  Duplicates OK.

        Returns ``(indices, new_mask)`` — ``new_mask`` is True for every
        occurrence of a key first inserted by this call.
        """
        if self._sanitizer is not None:
            self._sanitizer.record(f"ShardedMap@{id(self):#x}", write=True)
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        self._check_keys(keys)
        n = len(keys)
        if n == 0:
            return (np.empty(0, dtype=np.int64), np.zeros(0, dtype=bool))
        # Conservative growth trigger: duplicates make len(keys) an upper
        # bound on insertions, so this may grow slightly early — harmless.
        while (self._n + n) > self.max_load * self.capacity:
            self._grow()

        out = np.empty(n, dtype=np.int64)
        new_mask = np.zeros(n, dtype=bool)
        pending = np.arange(n)
        pslot = self._start_slots(keys)
        pkeys = keys
        safety = 0
        while len(pending):
            cur = self._keys[pslot]
            hit = cur == pkeys
            out[pending[hit]] = self._index[pslot[hit]]

            empty = cur == _EMPTY
            if empty.any():
                cand = pending[empty]
                cand_slots = pslot[empty]
                cand_keys = pkeys[empty]
                # Emulated CAS: all contenders write, re-read decides who
                # won.  Duplicates of one key share the same slot and all
                # "win" it together; distinct keys racing for one slot
                # leave exactly one winner.
                self._keys[cand_slots] = cand_keys
                won = self._keys[cand_slots] == cand_keys
                if won.any():
                    win_slots = cand_slots[won]
                    # Dedup slots (duplicate keys win together) without a
                    # sort: scatter positions, last-write-wins per slot,
                    # keep the surviving occurrence of each slot.
                    pos = np.arange(len(win_slots))
                    self._index[win_slots] = pos
                    rep = self._index[win_slots] == pos
                    uniq_slots = win_slots[rep]
                    idx = self._claim_dense(self._keys[uniq_slots])
                    self._index[uniq_slots] = idx
                    winners = cand[won]
                    out[winners] = self._index[win_slots]
                    new_mask[winners] = True
                resolved = hit.copy()
                resolved[np.flatnonzero(empty)[won]] = True
            else:
                resolved = hit
            alive = ~resolved
            pending, pkeys = pending[alive], pkeys[alive]
            pslot = self._advance(pslot[alive])
            self.probe_rounds += 1
            safety += 1
            if safety >= self._submap_cap and len(pending):
                # A key probed its whole submap without a hit or an empty
                # slot: the submap is full even though *global* load is
                # under max_load (skewed hashing).  Grow and re-probe the
                # stragglers — placements survive rehash (dense indices
                # never move), so already-resolved outputs stay valid.
                self._grow()
                pslot = self._start_slots(pkeys)
                safety = 0
        return out, new_mask

    # -- internals ----------------------------------------------------------
    def _check_keys(self, keys: np.ndarray) -> None:
        if keys.ndim != 1:
            raise ValueError(f"keys must be 1-D, got shape {keys.shape}")
        if len(keys) and keys.min() < 0:
            raise ValueError("keys must be non-negative int64")

    def _claim_dense(self, keys: np.ndarray) -> np.ndarray:
        n_new = len(keys)
        while self._n + n_new > len(self._dense_keys):
            grown = np.empty(2 * len(self._dense_keys), dtype=np.int64)
            grown[: self._n] = self._dense_keys[: self._n]
            self._dense_keys = grown
        idx = np.arange(self._n, self._n + n_new, dtype=np.int64)
        self._dense_keys[idx] = keys
        self._n += n_new
        return idx

    def _grow(self) -> None:
        """Quadruple submap capacity and re-place all keys (dense side fixed).

        The aggressive factor keeps rehash count low for Forward Push's
        rapidly expanding touched set.
        """
        old_keys = self._dense_keys[: self._n].copy()
        self._submap_cap *= 4
        self._alloc_table()
        self.rehashes += 1
        if self._n == 0:
            return
        pending = np.arange(self._n)
        pslot = self._start_slots(old_keys)
        pkeys = old_keys
        rounds = 0
        while len(pending):
            if rounds >= self._submap_cap:  # pragma: no cover - extreme skew
                # One submap is full even at the quadrupled capacity;
                # quadruple again (re-places everything off the dense side).
                return self._grow()
            cur = self._keys[pslot]
            empty = cur == _EMPTY
            cand = pending[empty]
            cand_slots = pslot[empty]
            self._keys[cand_slots] = pkeys[empty]
            won = self._keys[cand_slots] == pkeys[empty]
            self._index[cand_slots[won]] = cand[won]
            resolved = np.zeros(len(pending), dtype=bool)
            resolved[np.flatnonzero(empty)[won]] = True
            alive = ~resolved
            pending, pkeys = pending[alive], pkeys[alive]
            pslot = self._advance(pslot[alive])
            rounds += 1
