"""Batched multi-query SSPPR — inter-query RPC sharing.

The paper batches RPCs *within* one query's iteration (all activated
vertices per destination shard).  This module extends the same idea across
queries, as suggested by the production setting of Section 3.1 ("each
machine processes a batch of SSPPR queries in parallel"): a
:class:`MultiSSPPR` advances B queries in lockstep, and each iteration
fetches the **union** of their activated vertices — one RPC per destination
shard for the whole batch, with every fetched adjacency row reused by every
query that needs it.

State layout: the hashmap key packs ``(node, query)`` as
``(local * K + shard) * B + qid``; pops dedupe at the *node* level for
fetching while retaining the per-(node, query) activation pairs for the
push expansion.  Total push work equals running the queries separately —
the savings are pure communication (fewer, larger RPCs; shared rows).
"""

from __future__ import annotations

import numpy as np

from repro.ppr.hashmap import ShardedMap
from repro.ppr.params import PPRParams


class MultiSSPPR:
    """Lockstep state for a batch of SSPPR queries sharing fetches."""

    def __init__(self, source_locals, source_shard: int, params: PPRParams,
                 source_wdegs, n_shards: int, *, n_submaps: int = 16) -> None:
        source_locals = np.asarray(source_locals, dtype=np.int64)
        source_wdegs = np.asarray(source_wdegs, dtype=np.float64)
        if len(source_locals) == 0:
            raise ValueError("MultiSSPPR needs at least one source")
        if len(source_wdegs) != len(source_locals):
            raise ValueError("source_wdegs length mismatch")
        if n_shards <= 0:
            raise ValueError(f"n_shards must be > 0, got {n_shards}")
        if np.any(source_wdegs < 0):
            raise ValueError("source_wdegs must be >= 0")
        self.params = params
        self.n_shards = int(n_shards)
        self.n_queries = len(source_locals)
        self.map = ShardedMap(n_submaps=n_submaps)
        cap = 1024
        self.residual = np.zeros(cap)
        self.ppr = np.zeros(cap)
        self.wdeg = np.zeros(cap)
        self.queued = np.zeros(cap, dtype=bool)
        self._frontier_chunks: list[np.ndarray] = []
        self._pending_pairs: np.ndarray | None = None  # sorted pair keys
        self._pending_pair_nodes: np.ndarray | None = None  # pairs // B
        self.n_pushes = 0
        self.n_entries_processed = 0
        self.n_iterations = 0

        qids = np.arange(self.n_queries, dtype=np.int64)
        node_keys = source_locals * self.n_shards + int(source_shard)
        pair_keys = node_keys * self.n_queries + qids
        idx, _ = self.map.get_or_insert(pair_keys)
        self._ensure_capacity(len(self.map))
        self.residual[idx] = 1.0
        self.wdeg[idx] = source_wdegs
        self.queued[idx] = True
        self._frontier_chunks.append(pair_keys)

    # -- helpers ------------------------------------------------------------
    def _ensure_capacity(self, needed: int) -> None:
        cap = len(self.residual)
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        for name in ("residual", "ppr", "wdeg"):
            old = getattr(self, name)
            grown = np.zeros(cap)
            grown[: len(old)] = old
            setattr(self, name, grown)
        grown_q = np.zeros(cap, dtype=bool)
        grown_q[: len(self.queued)] = self.queued
        self.queued = grown_q

    def _split_pair(self, pair_keys: np.ndarray):
        node_keys, qids = np.divmod(pair_keys, self.n_queries)
        return node_keys, qids

    # -- operators -----------------------------------------------------------
    def pop(self) -> tuple[np.ndarray, np.ndarray]:
        """Unique activated *nodes* across all queries -> fetch list.

        The per-(node, query) pairs are retained internally for push.
        Returned ``(local_ids, shard_ids)`` are node-key sorted (the order
        push expects back via its ``local_ids``/``shard_ids`` arguments).
        """
        if not self._frontier_chunks:
            empty = np.empty(0, dtype=np.int64)
            self._pending_pairs = None
            self._pending_pair_nodes = None
            return empty, empty
        raw = (self._frontier_chunks[0] if len(self._frontier_chunks) == 1
               else np.concatenate(self._frontier_chunks))
        self._frontier_chunks = []
        pairs = np.unique(raw)
        idx = self.map.lookup(pairs)
        self.queued[idx] = False
        self._pending_pairs = pairs  # sorted; node key = pair // B
        # pairs are sorted, so pair_nodes is sorted: dedupe with one diff
        # scan instead of a second np.unique sort, and cache for push().
        pair_nodes = pairs // self.n_queries
        self._pending_pair_nodes = pair_nodes
        if len(pair_nodes):
            first = np.empty(len(pair_nodes), dtype=bool)
            first[0] = True
            np.not_equal(pair_nodes[1:], pair_nodes[:-1], out=first[1:])
            node_keys = pair_nodes[first]
        else:
            node_keys = pair_nodes
        self.n_iterations += 1
        return node_keys // self.n_shards, node_keys % self.n_shards

    def push(self, infos, local_ids: np.ndarray, shard_ids: np.ndarray) -> None:
        """Apply one fetched chunk to every query activated on its nodes."""
        (indptr, nbr_local, nbr_shard, _g, weights, nbr_wdeg,
         src_wdeg) = infos.to_arrays()
        if len(indptr) - 1 != len(local_ids):
            raise ValueError(
                f"infos cover {len(indptr) - 1} sources, got "
                f"{len(local_ids)} popped ids"
            )
        if len(local_ids) == 0 or self._pending_pairs is None:
            return
        alpha = self.params.alpha
        chunk_nodes = (np.asarray(local_ids, dtype=np.int64) * self.n_shards
                       + np.asarray(shard_ids, dtype=np.int64))
        pairs = self._pending_pairs
        pair_nodes = self._pending_pair_nodes  # cached by pop(): pairs // B
        # Pair range for each chunk node (pairs are sorted by pair key,
        # hence by node key first).
        starts = np.searchsorted(pair_nodes, chunk_nodes, side="left")
        ends = np.searchsorted(pair_nodes, chunk_nodes, side="right")
        pair_counts = ends - starts
        total_pairs = int(pair_counts.sum())
        if total_pairs == 0:
            return
        # Flatten: for chunk node i, its active pairs.
        offsets = np.zeros(len(pair_counts) + 1, dtype=np.int64)
        np.cumsum(pair_counts, out=offsets[1:])
        pair_sel = (np.repeat(starts - offsets[:-1], pair_counts)
                    + np.arange(total_pairs))
        sel_pairs = pairs[pair_sel]
        sel_qids = sel_pairs % self.n_queries
        # chunk-node index each pair belongs to
        pair_chunk_idx = np.repeat(np.arange(len(chunk_nodes)), pair_counts)

        idx_v = self.map.lookup(sel_pairs)
        if np.any(idx_v < 0):
            raise ValueError("push received pairs that were never touched")
        r_v = self.residual[idx_v].copy()
        self.residual[idx_v] = 0.0
        pair_src_wdeg = src_wdeg[pair_chunk_idx]
        dangling = pair_src_wdeg <= 0.0
        self.ppr[idx_v] += np.where(dangling, r_v, alpha * r_v)
        self.n_pushes += total_pairs

        scale = np.where(
            dangling, 0.0,
            (1.0 - alpha) * r_v / np.where(dangling, 1.0, pair_src_wdeg),
        )
        # Expand each pair over its node's adjacency row.
        row_counts = np.diff(indptr)
        pair_row_counts = row_counts[pair_chunk_idx]
        total_entries = int(pair_row_counts.sum())
        if total_entries == 0:
            return
        row_starts = indptr[:-1][pair_chunk_idx]
        entry_offsets = np.zeros(total_pairs + 1, dtype=np.int64)
        np.cumsum(pair_row_counts, out=entry_offsets[1:])
        entry_idx = np.repeat(row_starts - entry_offsets[:-1],
                              pair_row_counts) + np.arange(total_entries)
        contrib = weights[entry_idx] * np.repeat(scale, pair_row_counts)
        self.n_entries_processed += total_entries

        nbr_node_keys = (nbr_local[entry_idx] * self.n_shards
                         + nbr_shard[entry_idx])
        target_pairs = (nbr_node_keys * self.n_queries
                        + np.repeat(sel_qids, pair_row_counts))
        slots, new = self.map.get_or_insert(target_pairs)
        if new.any():
            self._ensure_capacity(len(self.map))
            self.wdeg[slots[new]] = nbr_wdeg[entry_idx][new]
        m_len = len(self.map)
        self.residual[:m_len] += np.bincount(slots, weights=contrib,
                                             minlength=m_len)

        threshold = self.params.epsilon * self.wdeg[slots]
        above = self.residual[slots] > threshold
        newly = above & ~self.queued[slots]
        if newly.any():
            self.queued[slots[newly]] = True
            self._frontier_chunks.append(target_pairs[newly])

    # -- results ------------------------------------------------------------
    @property
    def n_touched_pairs(self) -> int:
        return len(self.map)

    def total_mass(self) -> float:
        """Sum over all queries — invariantly ``n_queries``."""
        n = len(self.map)
        return float(self.ppr[:n].sum() + self.residual[:n].sum())

    def results_for(self, qid: int) -> tuple[np.ndarray, np.ndarray]:
        """``(node_keys, ppr)`` of one query's positive-mass nodes."""
        if not 0 <= qid < self.n_queries:
            raise ValueError(f"qid {qid} out of range [0, {self.n_queries})")
        n = len(self.map)
        keys = self.map.keys()
        mine = keys % self.n_queries == qid
        ppr = self.ppr[:n][mine]
        pos = ppr > 0
        return (keys[mine][pos] // self.n_queries), ppr[pos]

    def dense_result_for(self, qid: int, sharded, n_nodes: int) -> np.ndarray:
        """One query's PPR as a dense |V| vector."""
        node_keys, values = self.results_for(qid)
        out = np.zeros(n_nodes)
        gids = sharded.global_of(node_keys // self.n_shards,
                                 node_keys % self.n_shards)
        out[gids] = values
        return out

    def residuals_for(self, qid: int) -> tuple[np.ndarray, np.ndarray]:
        """``(node_keys, residual)`` of one query's nonzero residuals."""
        if not 0 <= qid < self.n_queries:
            raise ValueError(f"qid {qid} out of range [0, {self.n_queries})")
        n = len(self.map)
        keys = self.map.keys()
        mine = keys % self.n_queries == qid
        res = self.residual[:n][mine]
        nz = res != 0
        return (keys[mine][nz] // self.n_queries), res[nz]

    def dense_residual_for(self, qid: int, sharded,
                           n_nodes: int) -> np.ndarray:
        """One query's residual as a dense |V| vector.

        The residual is the other half of the forward-push invariant;
        the streaming layer seeds incremental maintenance
        (:mod:`repro.ppr.incremental`) from the exact ``(p, r)`` pair.
        """
        node_keys, values = self.residuals_for(qid)
        out = np.zeros(n_nodes)
        gids = sharded.global_of(node_keys // self.n_shards,
                                 node_keys % self.n_shards)
        out[gids] = values
        return out
