"""Incremental Forward Push maintenance of published PPR vectors.

When the graph mutates under a published approximate PPR vector, the
pair ``(p, r)`` stops satisfying the Forward Push invariant

    r(t) = [t = s] - p(t)/alpha
           + (1-alpha)/alpha * sum_u p(u) * N_u(t)

where ``N_u`` is node ``u``'s normalized transition row (``weight(u,t) /
wdeg(u)``, with the dangling convention ``N_u = {u: 1}`` when
``wdeg(u) = 0`` — matching the absorb rule of
:func:`~repro.ppr.forward_push_seq.forward_push_sequential`).  Instead
of recomputing from scratch, :func:`refresh` restores the invariant by
*residual correction*: for every vertex ``u`` whose row changed since
the last refresh,

    r(t) += (1-alpha)/alpha * p(u) * (N_u_cur(t) - N_u_pre(t))

and then re-pushes the (now signed) residual with the standard strict
threshold ``|r(v)| > epsilon * wdeg(v)``.  After a refresh the usual
L1 guarantee holds: ``||p - pi||_1 <= ||r||_1 <= epsilon *
sum(wdeg)``, the same bound a from-scratch push publishes — so the
incremental and recomputed vectors agree within twice the published
accuracy bound.

Two exactness properties fall out of the *diff-first* construction
(corrections are computed from ``N_cur - N_pre`` per target, and a
bitwise-identical row contributes nothing at all):

* insert-then-delete of the same edges between refreshes restores the
  published ``(p, r)`` bitwise, and
* splitting or merging batches of the same stream (refreshing only at
  the end) yields bitwise-identical final vectors,

because pre-rows are captured at *first touch* since the last refresh.
Pre-row capture is the caller's job (:meth:`capture_pre_rows`) and must
happen against the pre-batch state of the mirror.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.ppr.forward_push_seq import forward_push_sequential
from repro.ppr.params import PPRParams


@dataclass
class RefreshStats:
    """Work counters for one incremental refresh."""

    n_changed: int       # vertices with a captured pre-row
    n_corrections: int   # nonzero residual corrections applied
    n_pushes: int        # signed pushes to restore the threshold
    residual_l1: float   # ||r||_1 after the refresh


class IncrementalState:
    """A published PPR vector plus the state needed to maintain it."""

    __slots__ = ("source", "params", "p", "r", "pre_rows")

    def __init__(self, source: int, params: PPRParams, p: np.ndarray,
                 r: np.ndarray) -> None:
        self.source = int(source)
        self.params = params
        self.p = np.asarray(p, dtype=np.float64)
        self.r = np.asarray(r, dtype=np.float64)
        #: rows as they were at the last refresh, captured at first touch:
        #: vertex -> (sorted neighbor gids, weights, weighted degree)
        self.pre_rows: dict[int, tuple[np.ndarray, np.ndarray, float]] = {}

    @classmethod
    def from_scratch(cls, graph, source: int,
                     params: PPRParams) -> "IncrementalState":
        """Publish by running the sequential reference push."""
        p, r, _ = forward_push_sequential(graph, source, params)
        return cls(source, params, p, r)

    def capture_pre_rows(self, dyn, vertices) -> None:
        """Record pre-mutation rows for ``vertices`` (first touch wins).

        Must be called with the *pre-batch* state of ``dyn`` for every
        vertex the batch will change.  A vertex already captured since
        the last refresh keeps its original pre-row, so a sequence of
        batches folds into one net row diff at refresh time.
        """
        for v in sorted(int(v) for v in vertices):
            if v not in self.pre_rows:
                gids, wts = dyn.row(v)
                self.pre_rows[v] = (gids, wts, dyn.wdeg(v))


def _normalized_row(gids: np.ndarray, wts: np.ndarray, wdeg: float,
                    vertex: int) -> dict[int, float]:
    """Transition row ``N_u`` under the dangling self-loop convention."""
    if wdeg <= 0.0:
        return {vertex: 1.0}
    return {int(g): float(w) / wdeg for g, w in zip(gids, wts)}


def accuracy_bound(graph, params: PPRParams) -> float:
    """Published L1 accuracy bound ``epsilon * sum(wdeg)`` of one push."""
    return float(params.epsilon * np.sum(graph.weighted_degrees))


def refresh(state: IncrementalState, dyn, *,
            max_pushes: int | None = None) -> RefreshStats:
    """Fold captured row diffs into ``(p, r)`` and re-push to threshold.

    Mutates ``state`` in place and clears its captured pre-rows.
    """
    params = state.params
    alpha, eps = params.alpha, params.epsilon
    scale = (1.0 - alpha) / alpha
    p, r = state.p, state.r
    n = p.shape[0]
    if max_pushes is None:
        max_pushes = int(min(5e8, 500 * n / eps))

    # Per-refresh memo of current rows/degrees: the graph is frozen for
    # the duration of the refresh, and the signed push revisits rows.
    rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    wdegs: dict[int, float] = {}

    def row_of(v: int) -> tuple[np.ndarray, np.ndarray]:
        got = rows.get(v)
        if got is None:
            got = rows[v] = dyn.row(v)
        return got

    def wdeg_of(v: int) -> float:
        got = wdegs.get(v)
        if got is None:
            got = wdegs[v] = dyn.wdeg(v)
        return got

    # -- phase 1: residual corrections -------------------------------------
    n_corrections = 0
    seeds: set[int] = set()
    for u in sorted(state.pre_rows):
        seeds.add(u)  # threshold may have moved even if p[u] == 0
        p_u = p[u]
        if p_u == 0.0:
            continue
        pre_gids, pre_wts, pre_wdeg = state.pre_rows[u]
        cur_gids, cur_wts = row_of(u)
        cur_wdeg = wdeg_of(u)
        if (cur_wdeg == pre_wdeg and np.array_equal(cur_gids, pre_gids)
                and np.array_equal(cur_wts, pre_wts)):
            continue  # net no-op row: contributes exactly nothing
        n_pre = _normalized_row(pre_gids, pre_wts, pre_wdeg, u)
        n_cur = _normalized_row(cur_gids, cur_wts, cur_wdeg, u)
        for t in sorted(n_pre.keys() | n_cur.keys()):
            d = n_cur.get(t, 0.0) - n_pre.get(t, 0.0)
            if d == 0.0:
                continue
            r[t] += scale * (p_u * d)
            n_corrections += 1
            seeds.add(t)
    n_changed = len(state.pre_rows)
    state.pre_rows.clear()

    # -- phase 2: signed forward push back under the threshold --------------
    queue: deque[int] = deque()
    queued = np.zeros(n, dtype=bool)
    for v in sorted(seeds):
        d_v = wdeg_of(v)
        r_v = r[v]
        if (d_v > 0.0 and abs(r_v) > eps * d_v) or \
                (d_v <= 0.0 and r_v != 0.0):
            queue.append(v)
            queued[v] = True
    n_pushes = 0
    while queue:
        v = queue.popleft()
        queued[v] = False
        r_v = r[v]
        d_v = wdeg_of(v)
        if d_v > 0.0 and abs(r_v) <= eps * d_v:
            continue
        if r_v == 0.0:
            continue
        n_pushes += 1
        if n_pushes > max_pushes:
            raise ConvergenceError(
                f"incremental refresh exceeded {max_pushes} pushes "
                f"(alpha={alpha}, eps={eps})")
        if d_v <= 0.0:
            # Dangling: absorb the (signed) residual, as in Algorithm 1.
            p[v] += r_v
            r[v] = 0.0
            continue
        p[v] += alpha * r_v
        m = (1.0 - alpha) * r_v
        r[v] = 0.0
        gids, wts = row_of(v)
        r[gids] += wts * (m / d_v)
        for g in gids:
            g = int(g)
            if queued[g]:
                continue
            d_g = wdeg_of(g)
            r_g = r[g]
            if (d_g > 0.0 and abs(r_g) > eps * d_g) or \
                    (d_g <= 0.0 and r_g != 0.0):
                queue.append(g)
                queued[g] = True

    return RefreshStats(n_changed=n_changed, n_corrections=n_corrections,
                        n_pushes=n_pushes,
                        residual_l1=float(np.sum(np.abs(r))))
