"""Accuracy metrics: top-k precision and L1 error against ground truth.

The paper validates Forward Push at ``epsilon = 1e-6`` by checking that it
achieves 97%+ precision on the top-100 nodes of the power-iteration ground
truth — the benchmark harness reproduces that check per dataset.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


def topk_nodes(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest scores (ties broken by smaller index)."""
    check_positive("k", k)
    k = min(k, len(scores))
    if k == 0:
        return np.empty(0, dtype=np.int64)
    # argpartition + stable ordering on (-score, index)
    part = np.argpartition(-scores, k - 1)[:k]
    order = np.lexsort((part, -scores[part]))
    return part[order]


def topk_precision(approx: np.ndarray, exact: np.ndarray, k: int) -> float:
    """|top-k(approx) ∩ top-k(exact)| / k."""
    if approx.shape != exact.shape:
        raise ValueError(
            f"shape mismatch: approx {approx.shape} vs exact {exact.shape}"
        )
    ka = topk_nodes(approx, k)
    ke = topk_nodes(exact, k)
    if len(ke) == 0:
        return 1.0
    return float(len(np.intersect1d(ka, ke)) / len(ke))


def l1_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Total absolute PPR error (bounded by ~epsilon * sum(d_w) for push)."""
    if approx.shape != exact.shape:
        raise ValueError(
            f"shape mismatch: approx {approx.shape} vs exact {exact.shape}"
        )
    return float(np.abs(approx - exact).sum())
