"""FORA-style hybrid SSPPR — Forward Push + Monte-Carlo refinement.

FORA [Wang et al., KDD'17 — the paper's reference 25, whose whole-graph
SSPPR definition the paper adopts] combines the two approximate families:
run Forward Push with a *coarse* threshold (cheap, touches few nodes), then
spend random walks proportional to the remaining residual to refine the
estimate.  The result is an unbiased estimator whose accuracy/cost can be
tuned continuously between pure push and pure Monte-Carlo:

    pi(s, v)  =  pi_push(v)  +  sum_u r(u) * pi(u, v)
              ~= pi_push(v)  +  (walks from u, weighted by r(u))

Implemented single-machine (the refinement stage is embarrassingly
parallel across residual nodes; the distributed engine's Forward Push
stage can feed it directly via ``SSPPR.results``/residuals).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.ppr.forward_push_parallel import forward_push_parallel
from repro.ppr.params import PPRParams
from repro.utils.rng import rng_from_seed
from repro.utils.validation import check_positive


def fora_ssppr(graph: CSRGraph, source: int, *, alpha: float = 0.462,
               push_epsilon: float = 1e-3, walks_per_unit: float = 20_000.0,
               max_steps: int = 500, seed=None) -> np.ndarray:
    """FORA hybrid estimate of the SSPPR vector.

    Parameters
    ----------
    push_epsilon:
        The coarse Forward Push threshold (much larger than a pure-push
        run would use — that's the point).
    walks_per_unit:
        Random walks spent per unit of leftover residual mass; each
        residual node ``u`` gets ``ceil(r(u) * walks_per_unit)`` walks.
    """
    check_positive("push_epsilon", push_epsilon)
    check_positive("walks_per_unit", walks_per_unit)
    rng = rng_from_seed(seed)
    params = PPRParams(alpha=alpha, epsilon=push_epsilon)
    ppr, residual, _stats = forward_push_parallel(graph, source, params)

    estimate = ppr.copy()
    hot = np.flatnonzero(residual > 0)
    if len(hot) == 0:
        return estimate

    # Launch walks from every residual node, each walk carrying its
    # origin's per-walk residual weight.
    n_walks = np.ceil(residual[hot] * walks_per_unit).astype(np.int64)
    origins = np.repeat(hot, n_walks)
    walk_weight = np.repeat(residual[hot] / n_walks, n_walks)
    current = origins.copy()
    alive = np.ones(len(origins), dtype=bool)
    degrees = np.diff(graph.indptr)

    for _ in range(max_steps):
        if not alive.any():
            break
        live_idx = np.flatnonzero(alive)
        nodes = current[live_idx]
        fire = rng.random(len(live_idx)) < alpha
        dangling = degrees[nodes] == 0
        stop = fire | dangling
        if stop.any():
            stopped = live_idx[stop]
            np.add.at(estimate, current[stopped], walk_weight[stopped])
            alive[stopped] = False
        move_idx = live_idx[~stop]
        if len(move_idx) == 0:
            continue
        # Weighted neighbor step via vectorized rejection sampling:
        # propose uniformly, accept with probability w / w_max.
        w_max = graph.weights.max() if graph.n_arcs else 1.0
        pending = move_idx
        for _round in range(64):
            if len(pending) == 0:
                break
            nodes = current[pending]
            offsets = rng.integers(0, np.maximum(degrees[nodes], 1))
            pick = np.minimum(graph.indptr[nodes] + offsets,
                              max(graph.n_arcs - 1, 0))
            accept = rng.random(len(pending)) < graph.weights[pick] / w_max
            taken = pending[accept]
            current[taken] = graph.indices[pick[accept]]
            pending = pending[~accept]
        if len(pending):  # pathological weights: fall back to uniform
            nodes = current[pending]
            offsets = rng.integers(0, np.maximum(degrees[nodes], 1))
            pick = np.minimum(graph.indptr[nodes] + offsets,
                              max(graph.n_arcs - 1, 0))
            current[pending] = graph.indices[pick]
    if alive.any():
        stopped = np.flatnonzero(alive)
        np.add.at(estimate, current[stopped], walk_weight[stopped])
    return estimate
