"""SSPPR query parameters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive

#: The paper's experimental settings (Section 4.1).
PAPER_ALPHA = 0.462
PAPER_EPSILON = 1e-6


@dataclass(frozen=True)
class PPRParams:
    """Teleport probability and residue threshold for Forward Push.

    ``alpha`` is the restart probability of the underlying random walk;
    ``epsilon`` is the maximum residual per unit of weighted degree — a node
    is *activated* while ``r(v) > epsilon * d_w(v)``.
    """

    alpha: float = PAPER_ALPHA
    epsilon: float = PAPER_EPSILON

    def __post_init__(self) -> None:
        check_in_range("alpha", self.alpha, 0.0, 1.0)
        check_positive("epsilon", self.epsilon)

    def with_epsilon(self, epsilon: float) -> "PPRParams":
        """A copy with a different residue threshold."""
        return PPRParams(alpha=self.alpha, epsilon=epsilon)
