"""Workers and RPC servers.

A :class:`WorkerInfo` names an endpoint in the RPC group — in the paper's
setup, machine ``k`` registers one *Graph Storage server* worker plus ``P``
*computing process* workers.

An :class:`RpcServer` models the storage-server process: it owns named
objects (the Graph Storage of its shard), serves requests FIFO on a single
virtual thread (``next_free`` bookkeeping), and — optionally — can be
*colocated* with a computing process, in which case service time is also
charged to the host process's clock.  Colocation reproduces the GIL
contention pathology the paper describes (Section 3.2.3: overlapping RPC
target functions with local Python work stalls both); the engine's default
follows the paper's fix of a separate server process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RpcError, WorkerCrashedError
from repro.rpc.handlers import check_dispatch
from repro.rpc.serialization import BufferPool
from repro.simt.process import SimProcess
from repro.utils.timer import Stopwatch


@dataclass(frozen=True)
class WorkerInfo:
    """Identity of an RPC endpoint.

    ``machine_id`` groups workers by simulated machine: calls between
    workers of the same machine use the zero-copy shared-memory path, calls
    across machines pay network costs.
    """

    name: str
    machine_id: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("worker name must be non-empty")
        if self.machine_id < 0:
            raise ValueError(f"machine_id must be >= 0, got {self.machine_id}")


class RpcServer:
    """A FIFO single-threaded request server bound to one worker."""

    def __init__(self, info: WorkerInfo, process: SimProcess,
                 host_process: SimProcess | None = None,
                 fault_plan=None) -> None:
        self.info = info
        self.process = process
        #: computing process sharing the server's interpreter, if colocated
        self.host_process = host_process
        self.next_free = 0.0
        self.objects: dict[str, Any] = {}
        self.requests_served = 0
        #: optional FaultPlan consulted for straggler factors and crash
        #: windows (the dispatch layer checks crashes first; the check here
        #: guards direct serve() callers)
        self.fault_plan = fault_plan
        #: size-class buffer pool for response serialization (cost model)
        self.pool = BufferPool()

    def put_object(self, key: str, obj: Any) -> None:
        """Host an object under ``key`` (target of RRef calls)."""
        if key in self.objects:
            raise RpcError(f"object key {key!r} already exists on {self.info.name!r}")
        self.objects[key] = obj
        attach = getattr(obj, "attach_pool", None)
        if attach is not None:
            attach(self.pool)  # memory accounting sees pooled buffers

    def get_object(self, key: str) -> Any:
        try:
            return self.objects[key]
        except KeyError:
            raise RpcError(
                f"worker {self.info.name!r} hosts no object {key!r}; "
                f"known: {sorted(self.objects)}"
            ) from None

    def resolve_method(self, key: str, method: str) -> Callable:
        obj = self.get_object(key)
        refused = check_dispatch(obj, method)
        if refused is not None:
            raise RpcError(f"on {self.info.name!r}: {refused}")
        fn = getattr(obj, method, None)
        if fn is None or not callable(fn):
            raise RpcError(
                f"object {key!r} on {self.info.name!r} has no method {method!r}"
            )
        return fn

    def serve(self, arrival: float, key: str, method: str,
              args: tuple, kwargs: dict) -> tuple[Any, float, float]:
        """Execute a request that arrived at virtual time ``arrival``.

        Returns ``(result, service_start, service_end)``.  The handler runs
        *now* in real time (handlers are read-only over shard data, so
        execution order does not affect results) and its measured duration
        becomes the virtual service time.
        """
        if self.fault_plan is not None \
                and self.fault_plan.is_crashed(self.info.name, arrival):
            raise WorkerCrashedError(
                f"server {self.info.name!r} is crashed at t={arrival:g}"
            )
        fn = self.resolve_method(key, method)
        start = max(arrival, self.next_free)
        with Stopwatch() as sw:
            result = fn(*args, **kwargs)
        handler_dt = sw.elapsed
        if self.fault_plan is not None:
            # Straggler model: a slow machine's handlers take longer in
            # virtual time even though the real compute is the same.
            handler_dt *= self.fault_plan.slow_factor(self.info.machine_id)
        # Server clock accumulates busy time; the FIFO service horizon is
        # tracked by next_free (which also covers idle gaps between arrivals).
        self.process.charge_seconds(handler_dt, "serve")
        end = start + handler_dt
        self.next_free = end
        self.requests_served += 1
        if self.host_process is not None and self.host_process is not self.process:
            # A colocated server steals interpreter time from its host
            # process (GIL contention model).
            self.host_process.charge_seconds(handler_dt, "gil_contention")
        return result, start, end
