"""Per-call RPC records — the detail layer under ``repro.obs``.

An :class:`RpcTracer` attached to an :class:`~repro.rpc.api.RpcContext`
records every dispatched call (virtual time, endpoints, method, payload
size and tensor count, local/remote) and every fault-layer event.  It is a
thin adapter over the unified observability layer: aggregate counting lives
in the :class:`~repro.obs.MetricsRegistry` (which both runtimes increment
directly at dispatch), while this tracer keeps the *raw records* that
registry counters cannot reconstruct — per-machine traffic matrices,
per-method histograms, payload-size percentiles.  :meth:`RpcTracer.publish`
pushes its aggregates into a registry so one snapshot carries both views.

Summaries answer the questions the paper's evaluation asks of its
communication layer: how many requests, how many bytes, between which
machines, and with what payload shapes — the raw material for Table 3-style
analyses on arbitrary workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class RpcCallRecord:
    """One dispatched call."""

    time: float
    caller: str
    owner: str
    caller_machine: int
    owner_machine: int
    method: str
    request_nbytes: int
    request_tensors: int
    remote: bool


@dataclass(frozen=True)
class RpcFaultRecord:
    """One fault-layer event on a remote call.

    ``kind`` is one of ``drop`` (request lost in the network), ``crash``
    (request reached a dead server), ``timeout`` (an attempt's deadline
    fired), ``retry`` (a retransmission was issued), ``late`` is folded into
    ``timeout``, and ``giveup`` (retry budget exhausted; the caller sees a
    typed error).  ``attempt`` is 1-based within the logical call.
    """

    time: float
    caller: str
    owner: str
    method: str
    kind: str
    attempt: int


@dataclass
class RpcTracer:
    """Accumulates :class:`RpcCallRecord` and :class:`RpcFaultRecord` entries."""

    records: list[RpcCallRecord] = field(default_factory=list)
    fault_records: list[RpcFaultRecord] = field(default_factory=list)

    def record(self, rec: RpcCallRecord) -> None:
        self.records.append(rec)

    def record_fault(self, rec: RpcFaultRecord) -> None:
        self.fault_records.append(rec)

    def __len__(self) -> int:
        return len(self.records)

    def faults_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.fault_records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    # -- summaries ----------------------------------------------------------
    def remote_records(self) -> list[RpcCallRecord]:
        return [r for r in self.records if r.remote]

    def total_request_bytes(self, *, remote_only: bool = True) -> int:
        recs = self.remote_records() if remote_only else self.records
        return sum(r.request_nbytes for r in recs)

    def calls_by_method(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.method] = out.get(r.method, 0) + 1
        return out

    def machine_matrix(self, n_machines: int) -> np.ndarray:
        """``(n, n)`` count of remote requests from machine i to machine j."""
        m = np.zeros((n_machines, n_machines), dtype=np.int64)
        for r in self.remote_records():
            if r.caller_machine < n_machines and r.owner_machine < n_machines:
                m[r.caller_machine, r.owner_machine] += 1
        return m

    def payload_percentiles(self, q=(50, 90, 99)) -> dict[int, float]:
        """Remote request-size percentiles in bytes."""
        sizes = [r.request_nbytes for r in self.remote_records()]
        if not sizes:
            return {p: 0.0 for p in q}
        arr = np.array(sizes, dtype=np.float64)
        return {p: float(np.percentile(arr, p)) for p in q}

    def summary(self, n_machines: int) -> dict:
        """One-shot report dictionary."""
        remote = self.remote_records()
        return {
            "calls_total": len(self.records),
            "calls_remote": len(remote),
            "request_bytes_remote": self.total_request_bytes(),
            "by_method": self.calls_by_method(),
            "machine_matrix": self.machine_matrix(n_machines).tolist(),
            "payload_percentiles": self.payload_percentiles(),
            "faults_by_kind": self.faults_by_kind(),
        }

    def publish(self, registry) -> None:
        """Dump this tracer's aggregates into a ``MetricsRegistry``.

        Gauges (not counters): these are derived snapshots, and the live
        ``rpc.*`` counters already carry the canonical counts.
        """
        registry.set("rpc.trace.calls_total", float(len(self.records)))
        registry.set("rpc.trace.calls_remote",
                     float(len(self.remote_records())))
        registry.set("rpc.trace.request_bytes_remote",
                     float(self.total_request_bytes()))
        for method, n in self.calls_by_method().items():
            registry.set(f"rpc.trace.calls_by_method.{method}", float(n))
        for kind, n in self.faults_by_kind().items():
            registry.set(f"rpc.trace.faults.{kind}", float(n))
