"""The RPC context: worker registry, dispatch, and collectives.

:class:`RpcContext` is the simulated counterpart of a ``torch.distributed.rpc``
process group.  It routes :class:`~repro.rpc.rref.RRef` method calls either
through the zero-copy local path (same simulated machine — direct invocation
charged only the binding-layer overhead, mirroring the paper's shared-memory
``VertexProp`` pass-through) or through the network cost model + FIFO server
queue (remote machine).

It also provides an all-reduce collective used by the GNN case study's
DDP-style gradient synchronization.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import RpcError, RpcTimeoutError, WorkerCrashedError
from repro.obs import Obs
from repro.rpc.retry import RetryPolicy
from repro.rpc.rref import RRef
from repro.rpc.serialization import payload_sizes, request_payload_sizes
from repro.rpc.worker import RpcServer, WorkerInfo
from repro.simt.faults import FaultPlan
from repro.simt.futures import SimFuture
from repro.simt.network import NetworkModel
from repro.simt.process import SimProcess
from repro.simt.scheduler import Scheduler


class RpcContext:
    """Registry + dispatcher for a simulated RPC group.

    With a :class:`~repro.simt.faults.FaultPlan` and/or
    :class:`~repro.rpc.retry.RetryPolicy` attached, remote dispatch runs
    through the fault-tolerant path: attempts can be dropped, delayed, or
    lost to crashed servers, per-call timeout timers fire on the scheduler,
    and retransmissions with deterministic backoff keep the call alive until
    it succeeds or the budget is exhausted.  Without either, dispatch takes
    the original zero-overhead path.
    """

    def __init__(self, scheduler: Scheduler, network: NetworkModel,
                 tracer=None, *, fault_plan: FaultPlan | None = None,
                 retry_policy: RetryPolicy | None = None,
                 obs: Obs | None = None) -> None:
        self.scheduler = scheduler
        self.network = network
        #: observability bundle — the registry is always live (cheap), the
        #: span tracer only when the deployment asked for tracing
        self.obs = obs if obs is not None else Obs()
        self._workers: dict[str, WorkerInfo] = {}
        self._processes: dict[str, SimProcess] = {}
        self._servers: dict[str, RpcServer] = {}
        self._collectives: dict[str, "_AllReduceRound"] = {}
        #: running count of cross-machine requests (diagnostics/benchmarks)
        self.remote_requests = 0
        self.local_calls = 0
        #: optional RpcTracer recording every dispatched call
        self.tracer = tracer
        #: injected faults; a plan without a policy gets default retries so
        #: dropped messages resolve as timeouts instead of deadlocks
        self.fault_plan = fault_plan
        if fault_plan is not None and not fault_plan.is_empty() \
                and retry_policy is None:
            retry_policy = RetryPolicy()
        self.retry_policy = retry_policy
        #: fault-layer counters (surfaced on QueryRunResult)
        self.retries = 0
        self.timeouts = 0
        self.dropped_messages = 0
        self._call_indices: dict[str, int] = {}

    # -- registration -----------------------------------------------------
    def register_server(self, name: str, machine_id: int,
                        colocated_with: str | None = None) -> RpcServer:
        """Create a storage-server worker backed by a passive process."""
        info = self._register(name, machine_id)
        process = self.scheduler.add_passive(name)
        host = self._processes[colocated_with] if colocated_with else None
        server = RpcServer(info, process, host_process=host,
                           fault_plan=self.fault_plan)
        self._processes[name] = process
        self._servers[name] = server
        return server

    def register_worker(self, name: str, machine_id: int,
                        process: SimProcess) -> WorkerInfo:
        """Register a computing-process worker with its coroutine process."""
        info = self._register(name, machine_id)
        self._processes[name] = process
        return info

    def _register(self, name: str, machine_id: int) -> WorkerInfo:
        if name in self._workers:
            raise RpcError(f"worker {name!r} already registered")
        info = WorkerInfo(name, machine_id)
        self._workers[name] = info
        return info

    # -- lookups ------------------------------------------------------------
    def worker_info(self, name: str) -> WorkerInfo:
        try:
            return self._workers[name]
        except KeyError:
            raise RpcError(f"unknown worker {name!r}") from None

    def process_of(self, name: str) -> SimProcess:
        try:
            return self._processes[name]
        except KeyError:
            raise RpcError(f"worker {name!r} has no registered process") from None

    def server_of(self, name: str) -> RpcServer:
        try:
            return self._servers[name]
        except KeyError:
            raise RpcError(f"worker {name!r} is not a server") from None

    # -- remote object lifecycle ------------------------------------------
    def create_remote(self, owner_name: str, key: str,
                      factory: Callable[..., Any], *args, **kwargs) -> RRef:
        """Instantiate ``factory(*args, **kwargs)`` on ``owner_name``.

        Setup happens outside measured time: graph-shard construction is a
        preprocessing step whose cost the paper amortizes across queries.
        """
        server = self.server_of(owner_name)
        server.put_object(key, factory(*args, **kwargs))
        return RRef(self, owner_name, key)

    # -- dispatch -----------------------------------------------------------
    def rref_call(self, caller_name: str, rref: RRef, method: str,
                  args: tuple, kwargs: dict) -> SimFuture:
        """Dispatch a method call on an RRef; returns a virtual-time future."""
        caller = self.process_of(caller_name)
        caller_machine = self.worker_info(caller_name).machine_id
        owner_machine = self.worker_info(rref.owner_name).machine_id
        server = self.server_of(rref.owner_name)
        metrics = self.obs.metrics
        metrics.inc("rpc.calls")

        if self.tracer is not None:
            from repro.rpc.tracing import RpcCallRecord

            req_b, req_t = request_payload_sizes(args, kwargs)
            self.tracer.record(RpcCallRecord(
                time=caller.clock, caller=caller_name,
                owner=rref.owner_name, caller_machine=caller_machine,
                owner_machine=owner_machine, method=method,
                request_nbytes=req_b, request_tensors=req_t,
                remote=caller_machine != owner_machine,
            ))

        if caller_machine == owner_machine:
            # Shared-memory path: invoke directly on the caller's timeline.
            self.local_calls += 1
            metrics.inc("rpc.calls_local")
            caller.charge_seconds(self.network.local_call_overhead, "local_call")
            fn = server.resolve_method(rref.key, method)
            with caller.measured("local_exec"):
                result = fn(*args, **kwargs)
            return SimFuture.resolved(result, ready_time=caller.clock,
                                      tag=f"local:{method}")

        # Remote path: async issue, modeled transfer, FIFO service, reply.
        self.remote_requests += 1
        req_bytes, req_tensors = request_payload_sizes(args, kwargs)
        metrics.inc("rpc.calls_remote")
        metrics.inc("rpc.request_bytes", req_bytes)
        issued_at = caller.clock
        caller.charge_seconds(self.network.send_overhead(), "rpc_issue")
        fut = SimFuture(tag=f"rpc:{rref.owner_name}.{method}")

        # Client span: reserved now so the server span can link to it, and
        # recorded when the future resolves (its virtual ready time is the
        # span's end).  The virtual round-trip also feeds the latency
        # histogram regardless of tracing.
        span_tracer = self.obs.tracer
        client_id = None
        if span_tracer is not None:
            client_id = span_tracer.next_id()
            parent_id = span_tracer.current(caller_name)
            owner_name = rref.owner_name

            def record_client(f: SimFuture) -> None:
                attrs = {"owner": owner_name, "method": method}
                if f.exception is not None:
                    attrs["error"] = type(f.exception).__name__
                span_tracer.record(
                    f"rpc:{method}", caller_name, issued_at, f.ready_time,
                    span_id=client_id, parent_id=parent_id, kind="client",
                    attrs=attrs,
                )

            fut.add_done_callback(record_client)
            fut.span_id = client_id
        fut.add_done_callback(
            lambda f: metrics.observe("rpc.latency", f.ready_time - issued_at)
        )

        if self.retry_policy is None and self.fault_plan is None:
            # Healthy fast path: identical to the pre-fault-layer engine.
            arrival = caller.clock + self.network.transfer_time(req_bytes,
                                                               req_tensors)

            def deliver() -> None:
                try:
                    result, start, end = server.serve(arrival, rref.key,
                                                      method, args, kwargs)
                # repro: allow=REP006 fault travels back via the future
                except BaseException as exc:
                    fut.set_exception(
                        exc, arrival + self.network.transfer_time(64, 0)
                    )
                    return
                self._record_server_span(rref.owner_name, method, start, end,
                                         client_id, caller_name)
                resp_bytes, resp_tensors = payload_sizes(result)
                metrics.inc("rpc.response_bytes", resp_bytes)
                server.pool.stage(result, metrics)
                ready = end + self.network.transfer_time(resp_bytes,
                                                         resp_tensors)
                fut.set_result(result, ready)

            self.scheduler.call_at(arrival, deliver)
            return fut

        self._dispatch_with_retries(
            fut, caller_name, caller, rref, server, method, args, kwargs,
            caller_machine, owner_machine, req_bytes, req_tensors, client_id,
        )
        return fut

    def _record_server_span(self, owner_name: str, method: str, start: float,
                            end: float, client_id: int | None,
                            caller_name: str) -> None:
        """Record the service-side span, linked to the client span's id."""
        if self.obs.tracer is None:
            return
        self.obs.tracer.record(
            f"serve:{method}", owner_name, start, end, kind="server",
            link=client_id, attrs={"caller": caller_name, "method": method},
        )

    def _dispatch_with_retries(self, fut: SimFuture, caller_name: str,
                               caller: SimProcess, rref: RRef,
                               server: RpcServer, method: str, args: tuple,
                               kwargs: dict, caller_machine: int,
                               owner_machine: int, req_bytes: int,
                               req_tensors: int,
                               client_id: int | None = None) -> None:
        """Run one logical remote call through the timeout/retry machinery.

        Each attempt either delivers (request survives the network, the
        server is up, and the reply beats the deadline) or is written off by
        the attempt's timeout timer, which retransmits after a deterministic
        backoff or — once the budget is spent — resolves ``fut`` with a
        typed error.  Retransmissions happen on the RPC layer's background
        timeline: the caller paid its issue overhead once and is blocked in
        ``Wait`` until ``fut`` resolves.
        """
        plan = self.fault_plan if self.fault_plan is not None else FaultPlan()
        policy = (self.retry_policy if self.retry_policy is not None
                  else RetryPolicy())
        metrics = self.obs.metrics
        call_index = self._call_indices.get(caller_name, 0)
        self._call_indices[caller_name] = call_index + 1
        owner_name = rref.owner_name
        #: why the latest attempt failed ("drop" | "crash" | "late")
        last_failure = {"cause": "late"}

        def attempt(n: int, send_time: float) -> None:
            if fut.done:
                return
            if n > 1:
                self.retries += 1
                metrics.inc("rpc.retries")
                self._trace_fault("retry", caller_name, owner_name, method,
                                  n, send_time)
            deadline = send_time + policy.timeout
            if plan.roll_drop(caller_name, call_index, n):
                self.dropped_messages += 1
                metrics.inc("rpc.dropped_messages")
                last_failure["cause"] = "drop"
                self._trace_fault("drop", caller_name, owner_name, method,
                                  n, send_time)
                self.scheduler.call_at(deadline, lambda: on_timeout(n, deadline))
                return
            arrival = send_time + self.network.transfer_time_under(
                plan, req_bytes, req_tensors,
                src_machine=caller_machine, dst_machine=owner_machine,
                caller=caller_name, call_index=call_index, attempt=n,
            )

            def deliver() -> None:
                if fut.done:
                    return  # an earlier attempt already resolved the call
                if plan.is_crashed(owner_name, self.scheduler.now):
                    last_failure["cause"] = "crash"
                    self._trace_fault("crash", caller_name, owner_name,
                                      method, n, self.scheduler.now)
                    return  # message lost on a dead server; timer handles it
                try:
                    result, start, end = server.serve(arrival, rref.key,
                                                      method, args, kwargs)
                # repro: allow=REP006 fault travels back via the future
                except BaseException as exc:
                    fut.set_exception(
                        exc, arrival + self.network.transfer_time(64, 0)
                    )
                    return
                self._record_server_span(owner_name, method, start, end,
                                         client_id, caller_name)
                resp_bytes, resp_tensors = payload_sizes(result)
                metrics.inc("rpc.response_bytes", resp_bytes)
                server.pool.stage(result, metrics)
                ready = end + self.network.transfer_time_under(
                    plan, resp_bytes, resp_tensors,
                    src_machine=owner_machine, dst_machine=caller_machine,
                    caller=caller_name, call_index=call_index, attempt=n,
                )
                if ready <= deadline:
                    fut.set_result(result, ready)
                else:
                    # Reply lands after the caller gave up on this attempt;
                    # it is discarded (classic at-least-once semantics).
                    last_failure["cause"] = "late"

            self.scheduler.call_at(max(arrival, send_time), deliver)
            self.scheduler.call_at(deadline, lambda: on_timeout(n, deadline))

        def on_timeout(n: int, deadline: float) -> None:
            if fut.done:
                return
            self.timeouts += 1
            metrics.inc("rpc.timeouts")
            self._trace_fault("timeout", caller_name, owner_name, method,
                              n, deadline)
            if n >= policy.max_attempts:
                cause = last_failure["cause"]
                detail = (f"{caller_name} -> {owner_name}.{method} failed "
                          f"after {n} attempt(s) "
                          f"(timeout={policy.timeout:g}s, last cause: {cause})")
                exc: RpcError
                if cause == "crash":
                    exc = WorkerCrashedError(detail)
                else:
                    exc = RpcTimeoutError(detail)
                metrics.inc("rpc.giveups")
                self._trace_fault("giveup", caller_name, owner_name, method,
                                  n, deadline)
                fut.set_exception(exc, deadline)
                return
            delay = policy.backoff_delay(n, seed=plan.seed,
                                         caller=caller_name,
                                         call_index=call_index)
            next_send = deadline + delay
            self.scheduler.call_at(next_send, lambda: attempt(n + 1, next_send))

        attempt(1, caller.clock)

    def _trace_fault(self, kind: str, caller: str, owner: str, method: str,
                     attempt: int, time: float) -> None:
        self.obs.metrics.inc(f"rpc.faults.{kind}")
        if self.tracer is None:
            return
        from repro.rpc.tracing import RpcFaultRecord

        self.tracer.record_fault(RpcFaultRecord(
            time=time, caller=caller, owner=owner, method=method,
            kind=kind, attempt=attempt,
        ))

    # -- collectives ----------------------------------------------------------
    def allreduce_mean(self, group: str, caller_name: str, n_members: int,
                       array: np.ndarray) -> SimFuture:
        """Average ``array`` across ``n_members`` callers (DDP-style).

        Every member calls once per round with the same ``group`` tag; all
        futures resolve when the last member contributes, at a time that
        accounts for gathering every contribution and broadcasting the
        result (parameter-server model).
        """
        if n_members <= 0:
            raise ValueError(f"n_members must be > 0, got {n_members}")
        self.obs.metrics.inc("rpc.allreduce.calls")
        caller = self.process_of(caller_name)
        round_ = self._collectives.get(group)
        if round_ is None:
            round_ = _AllReduceRound(n_members)
            self._collectives[group] = round_
        if round_.n_members != n_members:
            raise RpcError(
                f"allreduce group {group!r} size mismatch: "
                f"{round_.n_members} != {n_members}"
            )
        caller.charge_seconds(self.network.send_overhead(), "allreduce_issue")
        nbytes, n_tensors = payload_sizes(array)
        arrive = caller.clock + self.network.transfer_time(nbytes, n_tensors)
        fut = SimFuture(tag=f"allreduce:{group}:{caller_name}")
        round_.add(array, arrive, fut)
        if round_.complete:
            del self._collectives[group]
            mean = round_.mean()
            ready = round_.latest_arrival + self.network.transfer_time(
                nbytes, n_tensors
            )
            for member_fut in round_.futures:
                member_fut.set_result(mean, ready)
        return fut


class _AllReduceRound:
    """Accumulator for one in-flight all-reduce round."""

    def __init__(self, n_members: int) -> None:
        self.n_members = n_members
        self.total: np.ndarray | None = None
        self.latest_arrival = 0.0
        self.futures: list[SimFuture] = []

    def add(self, array: np.ndarray, arrival: float, fut: SimFuture) -> None:
        if len(self.futures) >= self.n_members:
            raise RpcError("allreduce round over-subscribed")
        arr = np.asarray(array, dtype=np.float64)
        if self.total is None:
            self.total = arr.copy()
        else:
            if arr.shape != self.total.shape:
                raise RpcError(
                    f"allreduce shape mismatch: {arr.shape} != {self.total.shape}"
                )
            self.total += arr
        self.latest_arrival = max(self.latest_arrival, arrival)
        self.futures.append(fut)

    @property
    def complete(self) -> bool:
        return len(self.futures) == self.n_members

    def mean(self) -> np.ndarray:
        assert self.total is not None
        return self.total / self.n_members
