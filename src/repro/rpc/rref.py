"""Remote references.

An :class:`RRef` is a distributed shared pointer to an object hosted on some
worker's :class:`~repro.rpc.worker.RpcServer` — the same abstraction PyTorch
RPC provides and the paper passes to every computing process (Section 3.1:
"we create a Remote Reference for each Graph Storage object and pass these
references to every computing process").

Calls through an RRef are location-transparent: if the owner lives on the
caller's machine, the call takes the zero-copy local path (object method is
invoked directly, charged only the binding-layer overhead); otherwise the
call is dispatched as an asynchronous RPC through the context.
"""

from __future__ import annotations

from typing import Any

from repro.errors import RpcError


class RRef:
    """Handle to an object hosted on ``owner_name`` under ``key``."""

    __slots__ = ("ctx", "owner_name", "key")

    def __init__(self, ctx, owner_name: str, key: str) -> None:
        self.ctx = ctx
        self.owner_name = owner_name
        self.key = key

    def owner(self):
        """The :class:`~repro.rpc.worker.WorkerInfo` hosting the object."""
        return self.ctx.worker_info(self.owner_name)

    def is_owner(self, caller_worker: str) -> bool:
        """Whether ``caller_worker`` lives on the owner's machine."""
        return (
            self.ctx.worker_info(caller_worker).machine_id
            == self.owner().machine_id
        )

    def local_value(self) -> Any:
        """Direct reference to the hosted object (shared-memory path).

        Valid regardless of caller machine inside the simulation, but engine
        code only uses it through the local-path dispatch in
        :meth:`RpcContext.rref_call` to keep the distributed semantics
        honest.
        """
        return self.ctx.server_of(self.owner_name).get_object(self.key)

    def rpc_async(self, caller: str, method: str, *args, **kwargs):
        """Asynchronously invoke ``method`` on the referenced object.

        Returns a future.  ``caller`` is the invoking worker's name.
        """
        return self.ctx.rref_call(caller, self, method, args, kwargs)

    def rpc_sync_effect(self, caller: str, method: str, *args, **kwargs):
        """Convenience: a ``Wait`` effect for generator-based callers."""
        from repro.simt.events import Wait

        return Wait(self.rpc_async(caller, method, *args, **kwargs))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RRef(owner={self.owner_name!r}, key={self.key!r})"


def check_rrefs(rrefs: list[RRef], expected: int) -> None:
    """Validate a shard-indexed RRef list (one storage RRef per shard)."""
    if len(rrefs) != expected:
        raise RpcError(f"expected {expected} storage rrefs, got {len(rrefs)}")
    for i, rref in enumerate(rrefs):
        if not isinstance(rref, RRef):
            raise RpcError(f"rrefs[{i}] is not an RRef: {type(rref).__name__}")
