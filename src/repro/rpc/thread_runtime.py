"""Real-thread execution of the same coroutine drivers.

The engine's distributed algorithms (Figure 4) are written once as generator
coroutines yielding :mod:`repro.simt` effects.  Benchmarks drive them on the
deterministic virtual-time scheduler; this module drives the *identical*
code over real OS threads with blocking futures, providing an execution mode
with genuine concurrency.  Tests use it to demonstrate that results are
independent of the runtime (same PPR vectors, same walks) and that the
storage layer is safe under concurrent readers.

Timing semantics in thread mode: measured blocks accumulate real seconds on
the process breakdown as usual, modeled ``Charge``/``Sleep`` effects are
recorded but not slept (thread mode is for functional validation, not
timing).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future as _PyFuture
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Generator

from repro.errors import RpcError, RpcTimeoutError, SimulationError
from repro.obs import Obs
from repro.rpc.handlers import check_dispatch
from repro.rpc.retry import RetryPolicy
from repro.rpc.rref import RRef
from repro.rpc.serialization import (BufferPool, payload_sizes,
                                     request_payload_sizes)
from repro.rpc.worker import WorkerInfo
from repro.simt.events import Charge, Sleep, Wait, WaitAll
from repro.utils.timer import CategoryTimer


class ThreadFuture:
    """Future resolved on a server thread; waiters block."""

    __slots__ = ("_inner",)

    def __init__(self, inner: _PyFuture) -> None:
        self._inner = inner

    @property
    def done(self) -> bool:
        return self._inner.done()

    def value(self) -> Any:
        return self._inner.result()

    @classmethod
    def resolved(cls, value: Any) -> "ThreadFuture":
        inner: _PyFuture = _PyFuture()
        inner.set_result(value)
        return cls(inner)


class ThreadProcess:
    """Per-thread worker state mirroring :class:`~repro.simt.SimProcess`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.clock = 0.0  # accumulated charged seconds (real, for reporting)
        self.timer = CategoryTimer(on_charge=self._advance)
        self.result: Any = None
        self.exception: BaseException | None = None
        #: optional SpanTracer shared with the runtime's Obs bundle; thread
        #: spans run on the accumulated-charge clock, not wall time
        self.tracer = None

    def _advance(self, category: str, dt: float) -> None:
        self.clock += dt

    def charge_seconds(self, dt: float, category: str = "other") -> None:
        self.timer.charge_seconds(category, dt)

    def measured(self, category: str):
        if self.tracer is None:
            return self.timer.charge(category)
        from repro.obs.spans import _TracedMeasure

        return _TracedMeasure(self, category)

    def span(self, name: str, **attrs):
        """Logical span on this process's charged-seconds timeline."""
        if self.tracer is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.tracer.span(self.name, name, lambda: self.clock,
                                attrs or None)

    @property
    def breakdown(self):
        return self.timer.breakdown


class _ThreadServer:
    """Single-threaded FIFO server hosting remote objects."""

    def __init__(self, info: WorkerInfo) -> None:
        self.info = info
        self.objects: dict[str, Any] = {}
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"rpc-{info.name}"
        )
        self.requests_served = 0
        self._lock = threading.Lock()
        #: response buffer pool; only touched on the single executor
        #: thread, so no extra locking is needed
        self.pool = BufferPool()

    def put_object(self, key: str, obj: Any) -> None:
        with self._lock:
            if key in self.objects:
                raise RpcError(f"object key {key!r} already exists")
            self.objects[key] = obj
        attach = getattr(obj, "attach_pool", None)
        if attach is not None:
            attach(self.pool)  # memory accounting sees pooled buffers

    def get_object(self, key: str) -> Any:
        try:
            return self.objects[key]
        except KeyError:
            raise RpcError(
                f"worker {self.info.name!r} hosts no object {key!r}"
            ) from None

    def resolve_method(self, key: str, method: str) -> Callable:
        obj = self.get_object(key)
        refused = check_dispatch(obj, method)
        if refused is not None:
            raise RpcError(f"on {self.info.name!r}: {refused}")
        fn = getattr(obj, method, None)
        if fn is None or not callable(fn):
            raise RpcError(f"object {key!r} has no method {method!r}")
        return fn

    def shutdown(self) -> None:
        self.executor.shutdown(wait=True)


class ThreadRuntime:
    """Thread-backed drop-in for ``(Scheduler, RpcContext)`` in tests.

    Implements the same registration/dispatch surface as
    :class:`~repro.rpc.api.RpcContext` so :class:`~repro.rpc.rref.RRef` and
    the storage layer work unchanged.
    """

    def __init__(self, *, fault_plan=None, retry_policy=None,
                 obs: Obs | None = None, sanitize: bool = False) -> None:
        self._workers: dict[str, WorkerInfo] = {}
        self._processes: dict[str, ThreadProcess] = {}
        self._servers: dict[str, _ThreadServer] = {}
        self._threads: list[threading.Thread] = []
        #: observability bundle; the counter names (and values, under a
        #: drop-only FaultPlan) match RpcContext's — asserted by
        #: tests/test_runtime_differential.py
        self.obs = obs if obs is not None else Obs()
        #: lockset race detector (repro.analysis.race); shared ShardedMaps
        #: are instrumented for the runtime's lifetime (until shutdown)
        self.sanitizer = None
        if sanitize:
            from repro.analysis.race import RaceDetector, install

            self.sanitizer = RaceDetector()
            self.obs.sanitizer = self.sanitizer
            install(self.sanitizer)
        self.remote_requests = 0
        self.local_calls = 0
        #: fault injection: the *same* FaultPlan drop decisions replay here
        #: as on the virtual-time scheduler, because decisions are keyed on
        #: (seed, caller, per-caller call index, attempt) — never on time.
        #: Crash windows are virtual-time constructs and are ignored in
        #: thread mode; modeled latency terms have no real-time effect.
        self.fault_plan = fault_plan
        if fault_plan is not None and not fault_plan.is_empty() \
                and retry_policy is None:
            retry_policy = RetryPolicy()
        self.retry_policy = retry_policy
        self.retries = 0
        self.timeouts = 0
        self.dropped_messages = 0
        self._call_indices: dict[str, int] = {}
        if self.sanitizer is not None:
            self._fault_lock = self.sanitizer.tracked_lock(
                "ThreadRuntime._fault_lock")
            self._counter_lock = self.sanitizer.tracked_lock(
                "ThreadRuntime._counter_lock")
        else:
            self._fault_lock = threading.Lock()
            #: guards the legacy int counters, which many driver threads
            #: bump concurrently in rref_call
            self._counter_lock = threading.Lock()

    def _san_record(self, location: str, *, write: bool = True) -> None:
        """Record a shared-state access when the sanitizer is on."""
        if self.sanitizer is not None:
            self.sanitizer.record(location, write=write)

    # -- registration (RpcContext-compatible) ------------------------------
    def register_server(self, name: str, machine_id: int,
                        colocated_with: str | None = None) -> _ThreadServer:
        info = self._register(name, machine_id)
        server = _ThreadServer(info)
        self._servers[name] = server
        return server

    def register_worker(self, name: str, machine_id: int,
                        process: ThreadProcess | None = None) -> ThreadProcess:
        self._register(name, machine_id)
        proc = process if process is not None else ThreadProcess(name)
        proc.tracer = self.obs.tracer
        self._processes[name] = proc
        return proc

    def _register(self, name: str, machine_id: int) -> WorkerInfo:
        if name in self._workers:
            raise RpcError(f"worker {name!r} already registered")
        info = WorkerInfo(name, machine_id)
        self._workers[name] = info
        return info

    def worker_info(self, name: str) -> WorkerInfo:
        try:
            return self._workers[name]
        except KeyError:
            raise RpcError(f"unknown worker {name!r}") from None

    def server_of(self, name: str) -> _ThreadServer:
        try:
            return self._servers[name]
        except KeyError:
            raise RpcError(f"worker {name!r} is not a server") from None

    def process_of(self, name: str) -> ThreadProcess:
        return self._processes[name]

    def create_remote(self, owner_name: str, key: str,
                      factory: Callable[..., Any], *args, **kwargs) -> RRef:
        server = self.server_of(owner_name)
        server.put_object(key, factory(*args, **kwargs))
        return RRef(self, owner_name, key)

    # -- dispatch -------------------------------------------------------------
    def rref_call(self, caller_name: str, rref: RRef, method: str,
                  args: tuple, kwargs: dict) -> ThreadFuture:
        caller_machine = self.worker_info(caller_name).machine_id
        owner_machine = self.worker_info(rref.owner_name).machine_id
        server = self.server_of(rref.owner_name)
        fn = server.resolve_method(rref.key, method)
        metrics = self.obs.metrics
        metrics.inc("rpc.calls")
        if caller_machine == owner_machine:
            with self._counter_lock:
                self._san_record("ThreadRuntime.local_calls")
                self.local_calls += 1
            metrics.inc("rpc.calls_local")
            return ThreadFuture.resolved(fn(*args, **kwargs))
        with self._counter_lock:
            self._san_record("ThreadRuntime.remote_requests")
            self.remote_requests += 1
        req_bytes, _ = request_payload_sizes(args, kwargs)
        metrics.inc("rpc.calls_remote")
        metrics.inc("rpc.request_bytes", req_bytes)
        owner_name = rref.owner_name
        serve = self._instrumented_serve(caller_name, owner_name, server,
                                         method, fn, args, kwargs)

        plan = self.fault_plan
        if plan is not None and not plan.is_empty():
            policy = self.retry_policy
            with self._fault_lock:
                self._san_record("ThreadRuntime.fault_counters")
                call_index = self._call_indices.get(caller_name, 0)
                self._call_indices[caller_name] = call_index + 1

            def faulty_handler() -> Any:
                for attempt in range(1, policy.max_attempts + 1):
                    if attempt > 1:
                        with self._fault_lock:
                            self._san_record("ThreadRuntime.fault_counters")
                            self.retries += 1
                        metrics.inc("rpc.retries")
                        metrics.inc("rpc.faults.retry")
                    if plan.roll_drop(caller_name, call_index, attempt):
                        # Lost request: in thread mode the timeout elapses
                        # logically (no real sleeping) and we retransmit.
                        # Each drop implies one logical timeout firing — the
                        # same accounting the virtual-time timers produce.
                        with self._fault_lock:
                            self._san_record("ThreadRuntime.fault_counters")
                            self.dropped_messages += 1
                            self.timeouts += 1
                        metrics.inc("rpc.dropped_messages")
                        metrics.inc("rpc.faults.drop")
                        metrics.inc("rpc.timeouts")
                        metrics.inc("rpc.faults.timeout")
                        continue
                    return serve()
                metrics.inc("rpc.giveups")
                metrics.inc("rpc.faults.giveup")
                raise RpcTimeoutError(
                    f"{caller_name} -> {rref.owner_name}.{method} failed "
                    f"after {policy.max_attempts} attempt(s) "
                    f"(timeout={policy.timeout:g}s, last cause: drop)"
                )

            return ThreadFuture(server.executor.submit(faulty_handler))

        return ThreadFuture(server.executor.submit(serve))

    def _instrumented_serve(self, caller_name: str, owner_name: str,
                            server: "_ThreadServer", method: str,
                            fn: Callable, args: tuple, kwargs: dict):
        """Wrap one remote handler invocation with counters and spans.

        Runs on the server's executor thread.  Spans use the caller's
        charged clock at issue as the base and real handler seconds as the
        extent — approximate, but enough to see linked client/server pairs
        in a thread-mode trace.
        """
        metrics = self.obs.metrics
        tracer = self.obs.tracer
        issue_clock = self.process_of(caller_name).clock \
            if caller_name in self._processes else 0.0

        def serve() -> Any:
            server.requests_served += 1
            # repro: allow=REP001 real handler seconds in thread mode
            t0 = time.perf_counter()
            result = fn(*args, **kwargs)
            # repro: allow=REP001 real handler seconds in thread mode
            elapsed = time.perf_counter() - t0
            resp_bytes, _ = payload_sizes(result)
            metrics.inc("rpc.response_bytes", resp_bytes)
            server.pool.stage(result, metrics)
            if tracer is not None:
                client_id = tracer.record(
                    f"rpc:{method}", caller_name, issue_clock,
                    issue_clock + elapsed, kind="client",
                    attrs={"owner": owner_name, "method": method},
                )
                tracer.record(
                    f"serve:{method}", owner_name, issue_clock,
                    issue_clock + elapsed, kind="server", link=client_id,
                    attrs={"caller": caller_name, "method": method},
                )
            return result

        return serve

    # -- driving coroutines -------------------------------------------------
    def spawn(self, name: str, body: Generator) -> ThreadProcess:
        """Run a coroutine driver on its own thread."""
        proc = self._processes.get(name)
        if proc is None:
            raise RpcError(
                f"worker {name!r} must be registered (register_worker) "
                "before spawning its driver"
            )
        thread = threading.Thread(
            target=self._trampoline, args=(proc, body), name=name, daemon=True
        )
        self._threads.append(thread)
        thread.start()
        return proc

    @staticmethod
    def _trampoline(proc: ThreadProcess, body: Generator) -> None:
        send_value: Any = None
        try:
            while True:
                try:
                    effect = body.send(send_value)
                except StopIteration as stop:
                    proc.result = stop.value
                    return
                if isinstance(effect, Wait):
                    send_value = effect.future.value()
                elif isinstance(effect, WaitAll):
                    send_value = [f.value() for f in effect.futures]
                elif isinstance(effect, Charge):
                    proc.charge_seconds(effect.seconds,
                                        effect.category or "charged")
                    send_value = None
                elif isinstance(effect, Sleep):
                    send_value = None
                else:
                    raise SimulationError(f"unknown effect {effect!r}")
        # repro: allow=REP006 fault is surfaced to the test via join()
        except BaseException as exc:
            proc.exception = exc

    def join(self, timeout: float = 60.0) -> None:
        """Wait for all spawned drivers; re-raise the first failure."""
        for thread in self._threads:
            thread.join(timeout=timeout)
            if thread.is_alive():
                raise SimulationError(f"thread {thread.name!r} did not finish")
        self._threads.clear()
        for proc in self._processes.values():
            if proc.exception is not None:
                raise proc.exception

    def shutdown(self) -> None:
        for server in self._servers.values():
            server.shutdown()
        if self.sanitizer is not None:
            from repro.analysis.race import uninstall

            uninstall(self.sanitizer)
