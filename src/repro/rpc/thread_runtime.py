"""Real-thread execution of the same coroutine drivers.

The engine's distributed algorithms (Figure 4) are written once as generator
coroutines yielding :mod:`repro.simt` effects.  Benchmarks drive them on the
deterministic virtual-time scheduler; this module drives the *identical*
code over real OS threads with blocking futures, providing an execution mode
with genuine concurrency.  Tests use it to demonstrate that results are
independent of the runtime (same PPR vectors, same walks) and that the
storage layer is safe under concurrent readers.

Timing semantics in thread mode: measured blocks accumulate real seconds on
the process breakdown as usual, modeled ``Charge``/``Sleep`` effects are
recorded but not slept (thread mode is for functional validation, not
timing).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future as _PyFuture
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Generator

from repro.errors import RpcError, RpcTimeoutError, SimulationError
from repro.rpc.retry import RetryPolicy
from repro.rpc.rref import RRef
from repro.rpc.worker import WorkerInfo
from repro.simt.events import Charge, Sleep, Wait, WaitAll
from repro.utils.timer import CategoryTimer


class ThreadFuture:
    """Future resolved on a server thread; waiters block."""

    __slots__ = ("_inner",)

    def __init__(self, inner: _PyFuture) -> None:
        self._inner = inner

    @property
    def done(self) -> bool:
        return self._inner.done()

    def value(self) -> Any:
        return self._inner.result()

    @classmethod
    def resolved(cls, value: Any) -> "ThreadFuture":
        inner: _PyFuture = _PyFuture()
        inner.set_result(value)
        return cls(inner)


class ThreadProcess:
    """Per-thread worker state mirroring :class:`~repro.simt.SimProcess`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.clock = 0.0  # accumulated charged seconds (real, for reporting)
        self.timer = CategoryTimer(on_charge=self._advance)
        self.result: Any = None
        self.exception: BaseException | None = None

    def _advance(self, category: str, dt: float) -> None:
        self.clock += dt

    def charge_seconds(self, dt: float, category: str = "other") -> None:
        self.timer.charge_seconds(category, dt)

    def measured(self, category: str):
        return self.timer.charge(category)

    @property
    def breakdown(self):
        return self.timer.breakdown


class _ThreadServer:
    """Single-threaded FIFO server hosting remote objects."""

    def __init__(self, info: WorkerInfo) -> None:
        self.info = info
        self.objects: dict[str, Any] = {}
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"rpc-{info.name}"
        )
        self.requests_served = 0
        self._lock = threading.Lock()

    def put_object(self, key: str, obj: Any) -> None:
        with self._lock:
            if key in self.objects:
                raise RpcError(f"object key {key!r} already exists")
            self.objects[key] = obj

    def get_object(self, key: str) -> Any:
        try:
            return self.objects[key]
        except KeyError:
            raise RpcError(
                f"worker {self.info.name!r} hosts no object {key!r}"
            ) from None

    def resolve_method(self, key: str, method: str) -> Callable:
        obj = self.get_object(key)
        fn = getattr(obj, method, None)
        if fn is None or not callable(fn):
            raise RpcError(f"object {key!r} has no method {method!r}")
        return fn

    def shutdown(self) -> None:
        self.executor.shutdown(wait=True)


class ThreadRuntime:
    """Thread-backed drop-in for ``(Scheduler, RpcContext)`` in tests.

    Implements the same registration/dispatch surface as
    :class:`~repro.rpc.api.RpcContext` so :class:`~repro.rpc.rref.RRef` and
    the storage layer work unchanged.
    """

    def __init__(self, *, fault_plan=None, retry_policy=None) -> None:
        self._workers: dict[str, WorkerInfo] = {}
        self._processes: dict[str, ThreadProcess] = {}
        self._servers: dict[str, _ThreadServer] = {}
        self._threads: list[threading.Thread] = []
        self.remote_requests = 0
        self.local_calls = 0
        #: fault injection: the *same* FaultPlan drop decisions replay here
        #: as on the virtual-time scheduler, because decisions are keyed on
        #: (seed, caller, per-caller call index, attempt) — never on time.
        #: Crash windows are virtual-time constructs and are ignored in
        #: thread mode; modeled latency terms have no real-time effect.
        self.fault_plan = fault_plan
        if fault_plan is not None and not fault_plan.is_empty() \
                and retry_policy is None:
            retry_policy = RetryPolicy()
        self.retry_policy = retry_policy
        self.retries = 0
        self.timeouts = 0
        self.dropped_messages = 0
        self._call_indices: dict[str, int] = {}
        self._fault_lock = threading.Lock()

    # -- registration (RpcContext-compatible) ------------------------------
    def register_server(self, name: str, machine_id: int,
                        colocated_with: str | None = None) -> _ThreadServer:
        info = self._register(name, machine_id)
        server = _ThreadServer(info)
        self._servers[name] = server
        return server

    def register_worker(self, name: str, machine_id: int,
                        process: ThreadProcess | None = None) -> ThreadProcess:
        self._register(name, machine_id)
        proc = process if process is not None else ThreadProcess(name)
        self._processes[name] = proc
        return proc

    def _register(self, name: str, machine_id: int) -> WorkerInfo:
        if name in self._workers:
            raise RpcError(f"worker {name!r} already registered")
        info = WorkerInfo(name, machine_id)
        self._workers[name] = info
        return info

    def worker_info(self, name: str) -> WorkerInfo:
        try:
            return self._workers[name]
        except KeyError:
            raise RpcError(f"unknown worker {name!r}") from None

    def server_of(self, name: str) -> _ThreadServer:
        try:
            return self._servers[name]
        except KeyError:
            raise RpcError(f"worker {name!r} is not a server") from None

    def process_of(self, name: str) -> ThreadProcess:
        return self._processes[name]

    def create_remote(self, owner_name: str, key: str,
                      factory: Callable[..., Any], *args, **kwargs) -> RRef:
        server = self.server_of(owner_name)
        server.put_object(key, factory(*args, **kwargs))
        return RRef(self, owner_name, key)

    # -- dispatch -------------------------------------------------------------
    def rref_call(self, caller_name: str, rref: RRef, method: str,
                  args: tuple, kwargs: dict) -> ThreadFuture:
        caller_machine = self.worker_info(caller_name).machine_id
        owner_machine = self.worker_info(rref.owner_name).machine_id
        server = self.server_of(rref.owner_name)
        fn = server.resolve_method(rref.key, method)
        if caller_machine == owner_machine:
            self.local_calls += 1
            return ThreadFuture.resolved(fn(*args, **kwargs))
        self.remote_requests += 1

        plan = self.fault_plan
        if plan is not None and not plan.is_empty():
            policy = self.retry_policy
            with self._fault_lock:
                call_index = self._call_indices.get(caller_name, 0)
                self._call_indices[caller_name] = call_index + 1

            def faulty_handler() -> Any:
                for attempt in range(1, policy.max_attempts + 1):
                    if attempt > 1:
                        with self._fault_lock:
                            self.retries += 1
                    if plan.roll_drop(caller_name, call_index, attempt):
                        # Lost request: in thread mode the timeout elapses
                        # logically (no real sleeping) and we retransmit.
                        with self._fault_lock:
                            self.dropped_messages += 1
                            self.timeouts += 1
                        continue
                    server.requests_served += 1
                    return fn(*args, **kwargs)
                raise RpcTimeoutError(
                    f"{caller_name} -> {rref.owner_name}.{method} failed "
                    f"after {policy.max_attempts} attempt(s) "
                    f"(timeout={policy.timeout:g}s, last cause: drop)"
                )

            return ThreadFuture(server.executor.submit(faulty_handler))

        def handler() -> Any:
            server.requests_served += 1
            return fn(*args, **kwargs)

        return ThreadFuture(server.executor.submit(handler))

    # -- driving coroutines -------------------------------------------------
    def spawn(self, name: str, body: Generator) -> ThreadProcess:
        """Run a coroutine driver on its own thread."""
        proc = self._processes.get(name)
        if proc is None:
            raise RpcError(
                f"worker {name!r} must be registered (register_worker) "
                "before spawning its driver"
            )
        thread = threading.Thread(
            target=self._trampoline, args=(proc, body), name=name, daemon=True
        )
        self._threads.append(thread)
        thread.start()
        return proc

    @staticmethod
    def _trampoline(proc: ThreadProcess, body: Generator) -> None:
        send_value: Any = None
        try:
            while True:
                try:
                    effect = body.send(send_value)
                except StopIteration as stop:
                    proc.result = stop.value
                    return
                if isinstance(effect, Wait):
                    send_value = effect.future.value()
                elif isinstance(effect, WaitAll):
                    send_value = [f.value() for f in effect.futures]
                elif isinstance(effect, Charge):
                    proc.charge_seconds(effect.seconds,
                                        effect.category or "charged")
                    send_value = None
                elif isinstance(effect, Sleep):
                    send_value = None
                else:
                    raise SimulationError(f"unknown effect {effect!r}")
        except BaseException as exc:  # surfaced via join()
            proc.exception = exc

    def join(self, timeout: float = 60.0) -> None:
        """Wait for all spawned drivers; re-raise the first failure."""
        for thread in self._threads:
            thread.join(timeout=timeout)
            if thread.is_alive():
                raise SimulationError(f"thread {thread.name!r} did not finish")
        self._threads.clear()
        for proc in self._processes.values():
            if proc.exception is not None:
                raise proc.exception

    def shutdown(self) -> None:
        for server in self._servers.values():
            server.shutdown()
