"""Payload sizing and buffer pooling for the RPC cost model.

A TensorPipe-style transport charges per message, per tensor, and per byte.
:func:`payload_sizes` walks an arbitrary argument/result structure and
returns ``(nbytes, n_tensors)``:

* a NumPy array counts as **one tensor** of ``arr.nbytes`` bytes;
* Python scalars cost 8 bytes (pickled fixed-size header approximation);
* strings/bytes cost their encoded length;
* containers are walked recursively;
* objects exposing ``rpc_payload() -> (nbytes, n_tensors)`` report
  themselves — e.g. a CSR-compressed
  :class:`~repro.storage.neighbor_batch.NeighborBatch` reports seven tensors
  total, while the uncompressed list-of-lists response reports one tensor
  *per source node per field*, which is exactly why compression wins.

Sizing is intentionally decoupled from actual serialization: within the
simulated cluster, objects are handed over by reference (the paper's
shared-memory zero-copy local path), and the cost model alone decides how
expensive the transfer *would* be over the wire.

Type dispatch is memoized per concrete type (``_DISPATCH``): the hot path
sizes millions of identically-shaped responses, so the isinstance chain is
resolved once per type instead of once per call.  The protocol check is
type-level (``rpc_payload`` found on the class), matching every real
payload type in the tree.

:class:`BufferPool` models a deterministic size-class allocator for
response serialization buffers.  Serializing a response borrows one
pooled buffer per tensor (size class = next power of two of the tensor's
bytes, keyed by dtype) and returns them all once the response is on the
wire, so steady-state serving allocates nothing: pool inventory per class
converges to the largest single-response demand.  All accounting is
order-independent across responses — total misses per class equal the
maximum per-response demand ever seen, hits are the remainder — which is
what keeps the ``rpc.pool.*`` counters bitwise-identical between the
virtual-time scheduler and :class:`~repro.rpc.thread_runtime.ThreadRuntime`.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

_SCALAR_NBYTES = 8
#: smallest pooled buffer: sub-64-byte tensors share one class per dtype
_MIN_POOL_CLASS = 64


def _size_none(obj: Any) -> tuple[int, int]:
    return 0, 0


def _size_ndarray(obj: np.ndarray) -> tuple[int, int]:
    return int(obj.nbytes), 1


def _size_custom(obj: Any) -> tuple[int, int]:
    nbytes, n_tensors = obj.rpc_payload()
    if nbytes < 0 or n_tensors < 0:
        raise ValueError(
            f"{type(obj).__name__}.rpc_payload() returned negative sizes"
        )
    return int(nbytes), int(n_tensors)


def _size_scalar(obj: Any) -> tuple[int, int]:
    return _SCALAR_NBYTES, 0


def _size_str(obj: str) -> tuple[int, int]:
    return len(obj.encode("utf-8")), 0


def _size_bytes(obj: Any) -> tuple[int, int]:
    return len(obj), 0


def _size_dict(obj: dict) -> tuple[int, int]:
    nbytes = n_tensors = 0
    for key, value in obj.items():
        kb, kt = payload_sizes(key)
        vb, vt = payload_sizes(value)
        nbytes += kb + vb
        n_tensors += kt + vt
    return nbytes, n_tensors


def _size_sequence(obj: Any) -> tuple[int, int]:
    nbytes = n_tensors = 0
    for item in obj:
        ib, it = payload_sizes(item)
        nbytes += ib
        n_tensors += it
    return nbytes, n_tensors


def _size_unsupported(obj: Any) -> tuple[int, int]:
    raise TypeError(
        f"cannot size RPC payload of type {type(obj).__name__}; "
        "implement rpc_payload() -> (nbytes, n_tensors)"
    )


def _resolve_handler(tp: type):
    """Pick the sizing handler for one concrete type (isinstance order)."""
    if tp is type(None):
        return _size_none
    if issubclass(tp, np.ndarray):
        return _size_ndarray
    if getattr(tp, "rpc_payload", None) is not None:
        return _size_custom
    if issubclass(tp, (bool, int, float, complex, np.generic)):
        return _size_scalar
    if issubclass(tp, str):
        return _size_str
    if issubclass(tp, (bytes, bytearray, memoryview)):
        return _size_bytes
    if issubclass(tp, dict):
        return _size_dict
    if issubclass(tp, (list, tuple, set, frozenset)):
        return _size_sequence
    return _size_unsupported


#: concrete type -> sizing handler, filled lazily
_DISPATCH: dict[type, Any] = {}


def payload_sizes(obj: Any) -> tuple[int, int]:
    """Return ``(nbytes, n_tensors)`` for an RPC argument/result structure."""
    tp = obj.__class__
    handler = _DISPATCH.get(tp)
    if handler is None:
        handler = _DISPATCH[tp] = _resolve_handler(tp)
    return handler(obj)


def request_payload_sizes(args: tuple, kwargs: dict) -> tuple[int, int]:
    """Size a call's ``(args, kwargs)`` without building wrapper containers.

    Byte- and tensor-identical to ``payload_sizes([list(args), kwargs])``
    (containers themselves are free), minus the per-call list allocation.
    """
    nbytes = n_tensors = 0
    for item in args:
        ib, it = payload_sizes(item)
        nbytes += ib
        n_tensors += it
    for key, value in kwargs.items():
        kb, kt = payload_sizes(key)
        vb, vt = payload_sizes(value)
        nbytes += kb + vb
        n_tensors += kt + vt
    return nbytes, n_tensors


def size_class(nbytes: int) -> int:
    """Pool size class for a tensor: next power of two, floored at 64 B."""
    if nbytes <= _MIN_POOL_CLASS:
        return _MIN_POOL_CLASS
    return 1 << (nbytes - 1).bit_length()


def _iter_tensors(obj: Any) -> Iterator[np.ndarray]:
    """Yield the tensors a serialized structure would put on the wire.

    Mirrors :func:`payload_sizes`' walk: bare arrays count directly,
    payload objects enumerate themselves through ``rpc_tensors()`` (when
    they offer it — objects without it carry no poolable tensors, e.g.
    the pointer-passing ``VertexProp``), containers recurse, scalar
    leaves yield nothing.
    """
    if isinstance(obj, np.ndarray):
        yield obj
        return
    tensors = getattr(obj, "rpc_tensors", None)
    if tensors is not None:
        yield from tensors()
        return
    if isinstance(obj, dict):
        for key, value in obj.items():
            yield from _iter_tensors(key)
            yield from _iter_tensors(value)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            yield from _iter_tensors(item)


class BufferPool:
    """Deterministic size-class pool for modeled response buffers.

    One pool per RPC server.  :meth:`stage` accounts the serialization of
    one response: every tensor borrows a buffer of its ``(dtype,
    size-class)`` — reusing a free one when available, growing inventory
    on a miss — and all buffers return to the free lists when the
    response has been staged (the transport owns the bytes after copy-out,
    so the buffers are immediately reusable).

    Determinism: inventory per class only ever grows to the largest
    demand a *single* response has exhibited, so total misses (and
    therefore hits and reused bytes) are independent of the order in
    which responses are served — the property the cross-runtime
    differential tests rely on.

    ``enabled=False`` short-circuits :meth:`stage` to a single attribute
    check (zero overhead when off).
    """

    __slots__ = ("enabled", "_free", "_inventory",
                 "requests", "hits", "misses", "bytes_reused")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        #: (dtype str, size class) -> currently returned buffer count
        self._free: dict[tuple[str, int], int] = {}
        #: (dtype str, size class) -> total buffers ever allocated
        self._inventory: dict[tuple[str, int], int] = {}
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.bytes_reused = 0

    def stage(self, result: Any, metrics=None) -> None:
        """Borrow/return pooled buffers for one serialized response."""
        if not self.enabled:
            return
        borrowed: list[tuple[str, int]] = []
        hits = reused = 0
        for arr in _iter_tensors(result):
            key = (arr.dtype.str, size_class(int(arr.nbytes)))
            free = self._free.get(key, 0)
            if free:
                self._free[key] = free - 1
                hits += 1
                reused += key[1]
            else:
                self._inventory[key] = self._inventory.get(key, 0) + 1
            borrowed.append(key)
        for key in borrowed:
            self._free[key] = self._free.get(key, 0) + 1
        n = len(borrowed)
        if not n:
            return
        self.requests += n
        self.hits += hits
        self.misses += n - hits
        self.bytes_reused += reused
        if metrics is not None:
            metrics.inc("rpc.pool.requests", n)
            metrics.inc("rpc.pool.hits", hits)
            metrics.inc("rpc.pool.misses", n - hits)
            metrics.inc("rpc.pool.bytes_reused", reused)

    def nbytes(self) -> int:
        """Resident bytes across all pooled buffers (memory accounting)."""
        return sum(cls * count
                   for (_, cls), count in self._inventory.items())
