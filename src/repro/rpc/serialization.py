"""Payload sizing for the RPC cost model.

A TensorPipe-style transport charges per message, per tensor, and per byte.
:func:`payload_sizes` walks an arbitrary argument/result structure and
returns ``(nbytes, n_tensors)``:

* a NumPy array counts as **one tensor** of ``arr.nbytes`` bytes;
* Python scalars cost 8 bytes (pickled fixed-size header approximation);
* strings/bytes cost their encoded length;
* containers are walked recursively;
* objects exposing ``rpc_payload() -> (nbytes, n_tensors)`` report
  themselves — e.g. a CSR-compressed
  :class:`~repro.storage.neighbor_batch.NeighborBatch` reports five tensors
  total, while the uncompressed list-of-lists response reports one tensor
  *per source node per field*, which is exactly why compression wins.

Sizing is intentionally decoupled from actual serialization: within the
simulated cluster, objects are handed over by reference (the paper's
shared-memory zero-copy local path), and the cost model alone decides how
expensive the transfer *would* be over the wire.
"""

from __future__ import annotations

from typing import Any

import numpy as np

_SCALAR_NBYTES = 8


def payload_sizes(obj: Any) -> tuple[int, int]:
    """Return ``(nbytes, n_tensors)`` for an RPC argument/result structure."""
    if obj is None:
        return 0, 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes), 1
    custom = getattr(obj, "rpc_payload", None)
    if custom is not None:
        nbytes, n_tensors = custom()
        if nbytes < 0 or n_tensors < 0:
            raise ValueError(
                f"{type(obj).__name__}.rpc_payload() returned negative sizes"
            )
        return int(nbytes), int(n_tensors)
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return _SCALAR_NBYTES, 0
    if isinstance(obj, str):
        return len(obj.encode("utf-8")), 0
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj), 0
    if isinstance(obj, dict):
        nbytes = n_tensors = 0
        for key, value in obj.items():
            kb, kt = payload_sizes(key)
            vb, vt = payload_sizes(value)
            nbytes += kb + vb
            n_tensors += kt + vt
        return nbytes, n_tensors
    if isinstance(obj, (list, tuple, set, frozenset)):
        nbytes = n_tensors = 0
        for item in obj:
            ib, it = payload_sizes(item)
            nbytes += ib
            n_tensors += it
        return nbytes, n_tensors
    raise TypeError(
        f"cannot size RPC payload of type {type(obj).__name__}; "
        "implement rpc_payload() -> (nbytes, n_tensors)"
    )
