"""Timeout / retry / backoff policy for remote calls.

Real distributed GNN systems (DistDGL's RPC layer, TensorPipe transports)
retransmit on loss because remote calls fail or lag; this module gives the
simulated RPC layer the same semantics.  A :class:`RetryPolicy` attached to
an :class:`~repro.rpc.api.RpcContext` (or
:class:`~repro.rpc.thread_runtime.ThreadRuntime`) makes every remote call:

* expire after ``timeout`` seconds without a reply (backed by scheduler
  timers in virtual time);
* retransmit up to ``max_attempts`` times total, waiting an exponentially
  growing backoff between attempts;
* raise :class:`~repro.errors.RpcTimeoutError` (or
  :class:`~repro.errors.WorkerCrashedError` when the target was inside a
  crash window) to the waiting caller once the budget is exhausted.

Backoff jitter is *deterministic*: it is derived from the same seeded hash
as :mod:`repro.simt.faults` decisions, so a faulty run replays with
identical timings and counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simt.faults import fault_roll
from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class RetryPolicy:
    """Per-call timeout plus exponential backoff with deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total tries per logical call (first send + retransmissions).
    timeout:
        Virtual seconds to wait for each attempt's reply.  The default is
        generous relative to the network model's round trips (~100 us), so
        a healthy cluster never times out spuriously.
    backoff_base / backoff_factor / max_backoff:
        Wait ``min(max_backoff, backoff_base * backoff_factor**(n-1))``
        between attempt ``n`` and ``n+1``, scaled by the jitter term.
    jitter:
        Fractional jitter: the delay is multiplied by a deterministic
        factor in ``[1, 1 + jitter]`` keyed by (seed, caller, call, attempt).
    """

    max_attempts: int = 3
    timeout: float = 0.05
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    max_backoff: float = 0.1
    jitter: float = 0.1

    def __post_init__(self) -> None:
        check_positive("max_attempts", self.max_attempts)
        check_positive("timeout", self.timeout)
        check_nonnegative("backoff_base", self.backoff_base)
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        check_nonnegative("max_backoff", self.max_backoff)
        check_nonnegative("jitter", self.jitter)

    def backoff_delay(self, attempt: int, *, seed: int = 0,
                      caller: str = "", call_index: int = 0) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based)."""
        raw = min(self.max_backoff,
                  self.backoff_base * self.backoff_factor ** (attempt - 1))
        if self.jitter <= 0.0:
            return raw
        u = fault_roll(seed, "jitter", caller, call_index, attempt)
        return raw * (1.0 + self.jitter * u)
