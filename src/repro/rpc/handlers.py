"""The ``@rpc_handler`` registry: the declared RPC surface of a class.

Remote objects are hosted by name (``ctx.create_remote(owner, key,
factory)``) and dispatched by string method name (``rref.rpc_async(caller,
"method", ...)``), so nothing ties a call-site literal to a real method
until the request lands — a typo'd or deleted handler only surfaces when a
chaos test happens to exercise that path.  Marking handlers explicitly
closes the loop twice:

* **statically** — REP010 (:mod:`repro.analysis.rules.interprocedural`)
  checks every dispatch literal against the decorated surface with
  compatible arity, and flags decorated handlers nothing calls;
* **at runtime** — :meth:`~repro.rpc.worker.Worker.resolve_method` and
  the thread runtime's ``_ThreadServer.resolve_method`` restrict dispatch
  to the decorated surface, but only for classes that *opted in* by
  decorating at least one method (ad-hoc test doubles keep working).

The decorator is deliberately inert — it tags the function and returns
it unchanged, adding no call overhead::

    class GraphShard:
        @rpc_handler
        def get_neighbor_batch(self, ids): ...
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable)

#: attribute set on decorated functions
_MARKER = "__rpc_handler__"


def rpc_handler(fn: F) -> F:
    """Mark a method as part of its class's remote-dispatch surface."""
    setattr(fn, _MARKER, True)
    return fn


def is_rpc_handler(fn: Any) -> bool:
    """Whether ``fn`` (function or bound method) carries the marker."""
    return bool(getattr(fn, _MARKER, False))


def handler_surface(cls: type) -> frozenset[str] | None:
    """The declared dispatch surface of ``cls``, or None if undeclared.

    Returns the set of ``@rpc_handler``-decorated method names (walking
    the MRO, so subclasses inherit their bases' surface), or ``None``
    when no method anywhere in the MRO is decorated — meaning the class
    never opted into enforcement and any callable attribute remains
    dispatchable.
    """
    if "__rpc_surface__" in cls.__dict__:
        return cls.__dict__["__rpc_surface__"]
    names: set[str] = set()
    for klass in cls.__mro__:
        for name, member in vars(klass).items():
            if callable(member) and is_rpc_handler(member):
                names.add(name)
    surface = frozenset(names) if names else None
    try:
        cls.__rpc_surface__ = surface
    except TypeError:  # pragma: no cover - builtins reject attributes
        pass
    return surface


def check_dispatch(obj: Any, method: str) -> str | None:
    """Validate dispatching ``method`` on ``obj`` against its surface.

    Returns ``None`` when allowed (including when the class never opted
    in), else a human-readable reason for refusing dispatch.
    """
    surface = handler_surface(type(obj))
    if surface is None or method in surface:
        return None
    return (
        f"method {method!r} is not in the declared @rpc_handler surface of "
        f"{type(obj).__name__} (declared: {sorted(surface)})"
    )
