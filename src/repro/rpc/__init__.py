"""``repro.rpc`` — a PyTorch-RPC-like layer over the virtual-time runtime.

Mirrors the subset of ``torch.distributed.rpc`` the paper relies on:

* named **workers** (one storage-server worker per simulated machine plus
  one worker per computing process), see :class:`WorkerInfo`;
* **remote object creation** returning an :class:`RRef` (remote reference),
  the distributed shared pointer of Section 3.1;
* **asynchronous calls** (``rpc_async``) returning futures, so callers can
  overlap local compute with remote fetches;
* a **payload cost model**: every request/response is sized in bytes and in
  *tensor count*, because TensorPipe-style transports pay a per-tensor
  wrapping cost — the term the paper's CSR *Compress* optimization removes.

Two interchangeable executions:

* :class:`RpcContext` dispatches over :mod:`repro.simt` (virtual time,
  deterministic, used by all benchmarks);
* :class:`~repro.rpc.thread_runtime.ThreadRuntime` drives the *same*
  generator-coroutine code over real OS threads with blocking futures, used
  in tests to demonstrate the engine is correct under genuine concurrency.
"""

from repro.rpc.api import RpcContext
from repro.rpc.handlers import handler_surface, is_rpc_handler, rpc_handler
from repro.rpc.retry import RetryPolicy
from repro.rpc.rref import RRef
from repro.rpc.serialization import payload_sizes
from repro.rpc.thread_runtime import ThreadRuntime
from repro.rpc.worker import RpcServer, WorkerInfo

__all__ = [
    "RRef",
    "RetryPolicy",
    "RpcContext",
    "RpcServer",
    "ThreadRuntime",
    "WorkerInfo",
    "handler_surface",
    "is_rpc_handler",
    "payload_sizes",
    "rpc_handler",
]
