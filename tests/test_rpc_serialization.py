"""Unit tests for the RPC payload cost model."""

import numpy as np
import pytest

from repro.rpc.serialization import payload_sizes
from repro.simt.network import NetworkModel


class TestPayloadSizes:
    def test_none(self):
        assert payload_sizes(None) == (0, 0)

    def test_array_is_one_tensor(self):
        arr = np.zeros(10, dtype=np.int64)
        assert payload_sizes(arr) == (80, 1)

    def test_scalar(self):
        assert payload_sizes(5) == (8, 0)
        assert payload_sizes(2.5) == (8, 0)
        assert payload_sizes(True) == (8, 0)
        assert payload_sizes(np.int32(7)) == (8, 0)

    def test_string_bytes(self):
        assert payload_sizes("abc") == (3, 0)
        assert payload_sizes(b"abcd") == (4, 0)

    def test_list_of_arrays_counts_each_tensor(self):
        arrs = [np.zeros(4, dtype=np.float32) for _ in range(7)]
        nbytes, n_tensors = payload_sizes(arrs)
        assert n_tensors == 7
        assert nbytes == 7 * 16

    def test_nested_structure(self):
        obj = {"ids": np.zeros(3, dtype=np.int32), "k": 5,
               "inner": [np.ones(2), "x"]}
        nbytes, n_tensors = payload_sizes(obj)
        assert n_tensors == 2
        # arrays 12+16, int 8, "x" 1, keys "ids"+"k"+"inner" = 9 string bytes
        assert nbytes == 12 + 16 + 8 + 1 + 9

    def test_custom_rpc_payload(self):
        class Compressed:
            def rpc_payload(self):
                return (1000, 5)

        assert payload_sizes(Compressed()) == (1000, 5)

    def test_custom_rpc_payload_negative_rejected(self):
        class Bad:
            def rpc_payload(self):
                return (-1, 0)

        with pytest.raises(ValueError):
            payload_sizes(Bad())

    def test_unsizeable_object_rejected(self):
        with pytest.raises(TypeError, match="cannot size"):
            payload_sizes(object())


class TestNetworkModel:
    def test_transfer_time_terms(self):
        net = NetworkModel(rpc_overhead=1.0, tensor_wrap_cost=0.1,
                           bandwidth=100.0, latency=0.5)
        # 1.0 + 3*0.1 + 200/100 + 0.5
        assert net.transfer_time(200, 3) == pytest.approx(3.8)

    def test_zero_payload_still_pays_overhead(self):
        net = NetworkModel()
        assert net.transfer_time(0, 0) == pytest.approx(
            net.rpc_overhead + net.latency
        )

    def test_many_small_worse_than_one_big(self):
        """The core TensorPipe pathology: batching amortizes overheads."""
        net = NetworkModel()
        many = 100 * net.transfer_time(80, 1)
        one = net.transfer_time(8000, 5)
        assert many > 10 * one

    def test_negative_inputs_rejected(self):
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.transfer_time(-1, 0)
        with pytest.raises(ValueError):
            net.transfer_time(0, -1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0.0)
        with pytest.raises(ValueError):
            NetworkModel(rpc_overhead=-1.0)

    def test_instant_model(self):
        net = NetworkModel.instant()
        assert net.transfer_time(10**9, 1000) < 1e-6
