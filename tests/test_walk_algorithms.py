"""Tests for distributed BFS, node2vec walks, uniform walks, and FORA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig
from repro.engine.cluster import SimCluster
from repro.graph import CSRGraph, erdos_renyi, path_graph, powerlaw_cluster
from repro.partition import HashPartitioner, MetisLitePartitioner
from repro.ppr import fora_ssppr, power_iteration_ssppr, topk_precision
from repro.storage import DistGraphStorage, build_shards
from repro.walk import (
    distributed_bfs,
    distributed_node2vec_walk,
    single_machine_bfs,
    single_machine_random_walk,
)


def run_driver_on_cluster(graph, n_machines, make_body, *, seed=0,
                          partitioner=None):
    """Spawn one driver on machine 0 of a fresh cluster; return its result."""
    part = partitioner or MetisLitePartitioner(seed=0)
    sharded = build_shards(graph, part.partition(graph, n_machines))
    cluster = SimCluster(sharded, EngineConfig(n_machines=n_machines))
    name = "compute:0.0"
    g = DistGraphStorage(cluster.rrefs, 0, name)

    def driver():
        proc = cluster.scheduler.processes[name]
        result = yield from make_body(g, proc, sharded)
        return result

    cluster.spawn_compute(0, 0, driver())
    cluster.run()
    return sharded, cluster.scheduler.result_of(name)


class TestSingleMachineBfs:
    def test_path_depths(self):
        g = path_graph(5)
        depths = single_machine_bfs(g, 0)
        np.testing.assert_array_equal(depths, [0, 1, 2, 3, 4])

    def test_unreached_marked(self):
        g = CSRGraph.from_edges(4, [0], [1])  # 2, 3 disconnected
        depths = single_machine_bfs(g, 0)
        assert depths[2] == -1 and depths[3] == -1

    def test_bad_source(self):
        with pytest.raises(ValueError):
            single_machine_bfs(path_graph(3), 9)


class TestDistributedBfs:
    def test_matches_reference(self):
        graph = powerlaw_cluster(400, 6, mixing=0.2, seed=1)
        sharded, state = run_driver_on_cluster(
            graph, 3,
            lambda g, proc, sh: distributed_bfs(
                g, proc, int(sh.shards[0].core_global[0] * 0
                             + sh.owner_local[sh.shards[0].core_global[0]])
            ),
        )
        source = int(sharded.shards[0].core_global[0])
        expected = single_machine_bfs(graph, source)
        got = state.dense_depths(sharded, graph.n_nodes)
        np.testing.assert_array_equal(got, expected)

    def test_max_depth_truncates(self):
        graph = powerlaw_cluster(300, 6, seed=2)
        sharded, state = run_driver_on_cluster(
            graph, 2,
            lambda g, proc, sh: distributed_bfs(
                g, proc,
                int(sh.owner_local[sh.shards[0].core_global[0]]),
                max_depth=2,
            ),
        )
        _keys, depths = state.results()
        assert depths.max() <= 2

    def test_invalid_state_args(self):
        from repro.walk.bfs import BfsState
        with pytest.raises(ValueError):
            BfsState(0, 0, 0)

    @given(n=st.integers(20, 100), k=st.integers(1, 3),
           seed=st.integers(0, 10))
    @settings(max_examples=10, deadline=None)
    def test_depths_property(self, n, k, seed):
        graph = erdos_renyi(n, 4, seed=seed)
        sharded, state = run_driver_on_cluster(
            graph, k,
            lambda g, proc, sh: distributed_bfs(
                g, proc, int(sh.owner_local[sh.shards[0].core_global[0]])
            ),
            partitioner=HashPartitioner(),
        )
        source = int(sharded.shards[0].core_global[0])
        expected = single_machine_bfs(graph, source)
        got = state.dense_depths(sharded, n)
        np.testing.assert_array_equal(got, expected)


class TestNode2vec:
    def test_walks_follow_edges(self):
        graph = powerlaw_cluster(300, 6, mixing=0.2, seed=3)
        _, summary = run_driver_on_cluster(
            graph, 2,
            lambda g, proc, sh: distributed_node2vec_walk(
                g, proc, sh.shards[0].core_global[:5], sh, 6,
                p=0.5, q=2.0, seed=4,
            ),
        )
        assert summary.shape == (5, 7)
        for row in summary:
            for s in range(6):
                u, v = int(row[s]), int(row[s + 1])
                assert u == v or graph.has_arc(u, v)

    def test_low_p_returns_more(self):
        """Small p (return-happy) revisits the previous node more often
        than large p, on a cycle where the choice is stark."""
        from repro.graph import cycle_graph
        graph = cycle_graph(30)

        def count_backtracks(p):
            _, summary = run_driver_on_cluster(
                graph, 1,
                lambda g, proc, sh: distributed_node2vec_walk(
                    g, proc, sh.shards[0].core_global[:8], sh, 20,
                    p=p, q=1.0, seed=5,
                ),
                partitioner=HashPartitioner(),
            )
            back = 0
            for row in summary:
                for s in range(2, summary.shape[1]):
                    if row[s] == row[s - 2]:
                        back += 1
            return back

        assert count_backtracks(0.05) > count_backtracks(20.0)

    def test_invalid_params(self):
        graph = path_graph(5)
        sharded = build_shards(graph, HashPartitioner().partition(graph, 1))
        g = None
        with pytest.raises(ValueError):
            # generator raises eagerly on validation via next()
            gen = distributed_node2vec_walk(None, None, np.array([0]),
                                            sharded, 0)
            next(gen)
        with pytest.raises(ValueError):
            gen = distributed_node2vec_walk(None, None, np.array([0]),
                                            sharded, 3, p=0.0)
            next(gen)


class TestReferenceWalker:
    def test_structure(self):
        g = powerlaw_cluster(200, 5, seed=6)
        walks = single_machine_random_walk(g, np.array([0, 1, 2]), 5, seed=7)
        assert walks.shape == (3, 6)
        for row in walks:
            for s in range(5):
                u, v = int(row[s]), int(row[s + 1])
                assert u == v or g.has_arc(u, v)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            single_machine_random_walk(path_graph(3), np.array([0]), 0)


class TestFora:
    def test_estimate_sums_to_one(self):
        g = powerlaw_cluster(200, 6, seed=8)
        est = fora_ssppr(g, 0, seed=9)
        assert est.sum() == pytest.approx(1.0, abs=1e-6)

    def test_close_to_ground_truth(self):
        g = powerlaw_cluster(300, 6, mixing=0.2, seed=10)
        exact = power_iteration_ssppr(g, 5, alpha=0.462)
        est = fora_ssppr(g, 5, push_epsilon=1e-3, walks_per_unit=40_000,
                         seed=11)
        assert np.abs(est - exact).sum() < 0.12
        assert topk_precision(est, exact, 20) >= 0.8

    def test_more_walks_help(self):
        g = powerlaw_cluster(250, 6, seed=12)
        exact = power_iteration_ssppr(g, 0, alpha=0.462)
        coarse = fora_ssppr(g, 0, push_epsilon=5e-3, walks_per_unit=500,
                            seed=13)
        fine = fora_ssppr(g, 0, push_epsilon=5e-3, walks_per_unit=50_000,
                          seed=13)
        assert np.abs(fine - exact).sum() < np.abs(coarse - exact).sum()

    def test_pure_push_source(self):
        """If push fully converges (tiny eps), no walks are needed."""
        g = path_graph(10)
        exact = power_iteration_ssppr(g, 4, alpha=0.462)
        est = fora_ssppr(g, 4, push_epsilon=1e-9, seed=14)
        assert np.abs(est - exact).sum() < 1e-6

    def test_invalid_args(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            fora_ssppr(g, 0, push_epsilon=0.0)
        with pytest.raises(ValueError):
            fora_ssppr(g, 0, walks_per_unit=0.0)
