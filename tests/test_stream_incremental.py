"""Differential equivalence suite for streaming graph updates.

The headline guarantee of the streaming layer is pinned here from three
angles:

* **incremental == recompute** (property-based): after every applied
  batch, the incrementally maintained ``(p, r)`` matches a from-scratch
  Forward Push on the updated graph within the combined residual bound
  — the same ``rmax``-style tolerance the paper publishes;
* **metamorphic exactness**: insert-then-delete of the same edges
  restores the published vector *bitwise*, and splitting/merging the
  same stream yields bitwise-identical final vectors;
* **splice == rebuild**: the two-phase distributed application leaves
  every shard structurally identical to a fresh ``build_shards`` of the
  updated graph (weighted-degree columns agree to float tolerance —
  they are sums of the same terms in a different order).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineConfig, GraphEngine
from repro.errors import GraphFormatError, ShardError
from repro.graph import powerlaw_cluster
from repro.graph.csr import CSRGraph
from repro.ppr import PPRParams
from repro.ppr.forward_push_seq import forward_push_sequential
from repro.ppr.incremental import (IncrementalState, accuracy_bound,
                                   refresh)
from repro.stream import (DynamicGraph, TemporalEdgeStream, UpdateBatch,
                          build_shard_payloads, ingest_on_cluster)

PARAMS = PPRParams(alpha=0.2, epsilon=1e-4)


def small_graph(seed=0, n=40, m=160):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    w = rng.uniform(0.5, 1.5, size=len(edges))
    return CSRGraph.from_edges(n, edges[:, 0], edges[:, 1], w)


def touched_vertices(batch):
    return np.unique(np.concatenate([batch.src, batch.dst]))


def apply_tracked(state, dyn, batch):
    """Capture pre-rows, then mutate — the session's ingestion order."""
    state.capture_pre_rows(dyn, touched_vertices(batch))
    return dyn.apply(batch)


# -- update batches ---------------------------------------------------------

class TestUpdateBatch:
    def test_validation(self):
        with pytest.raises(GraphFormatError):
            UpdateBatch([0], [0], [1.0], [1])          # self-loop
        with pytest.raises(GraphFormatError):
            UpdateBatch([0], [1], [1.0], [2])          # bad op
        with pytest.raises(GraphFormatError):
            UpdateBatch([0], [1], [0.0], [1])          # nonpositive upsert
        with pytest.raises(GraphFormatError):
            UpdateBatch([0, 1], [1], [1.0], [1])       # ragged

    def test_split_concat_roundtrip(self):
        b = UpdateBatch([0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0], [1, 1, -1])
        head, tail = b.split(2)
        back = UpdateBatch.concat([head, tail])
        assert np.array_equal(back.src, b.src)
        assert np.array_equal(back.weight, b.weight)
        assert np.array_equal(back.op, b.op)
        assert b.n_upserts == 2 and b.n_deletes == 1

    def test_inverse_of_inserts_targets_only_new_edges(self):
        g = small_graph()
        dyn = DynamicGraph.from_csr(g)
        u, v = 0, 1
        assert not dyn.has_edge(38, 39)
        existing = next((int(x) for x in g.neighbors(0)), None)
        assert existing is not None
        b = UpdateBatch([38, 0], [39, existing], [1.0, 2.0], [1, 1])
        inv = b.inverse_of_inserts(dyn)
        # only the genuinely-new edge gets a delete; the reweight does not
        assert len(inv) == 1
        assert (int(inv.src[0]), int(inv.dst[0])) == (38, 39)


# -- the dynamic mirror -----------------------------------------------------

class TestDynamicGraph:
    def test_snapshot_roundtrip_is_bitwise(self):
        g = small_graph()
        snap = DynamicGraph.from_csr(g).snapshot()
        assert np.array_equal(snap.indptr, g.indptr)
        assert np.array_equal(snap.indices, g.indices)
        assert np.array_equal(snap.weights, g.weights)

    def test_apply_then_revert_is_bitwise(self):
        g = small_graph()
        dyn = DynamicGraph.from_csr(g)
        stream = TemporalEdgeStream(g, seed=7, batch_size=16)
        deltas = [dyn.apply(b) for b in stream.batches(3)]
        for delta in reversed(deltas):
            dyn.revert(delta)
        snap = dyn.snapshot()
        assert np.array_equal(snap.indices, g.indices)
        assert np.array_equal(snap.weights, g.weights)

    def test_snapshot_matches_from_edges(self):
        g = small_graph()
        dyn = DynamicGraph.from_csr(g)
        dyn.apply(UpdateBatch([0, 2], [5, 7], [1.25, 0.8], [1, 1]))
        snap = dyn.snapshot()
        srcs, dsts, wts = [], [], []
        for u in range(snap.n_nodes):
            gids, ws = dyn.row(u)
            for v, w in zip(gids, ws):
                if u < v:
                    srcs.append(u), dsts.append(int(v)), wts.append(float(w))
        rebuilt = CSRGraph.from_edges(snap.n_nodes, srcs, dsts, wts)
        assert np.array_equal(snap.indptr, rebuilt.indptr)
        assert np.array_equal(snap.indices, rebuilt.indices)
        assert np.array_equal(snap.weights, rebuilt.weights)

    def test_streams_never_add_nodes(self):
        dyn = DynamicGraph.from_csr(small_graph())
        with pytest.raises(GraphFormatError):
            dyn.apply(UpdateBatch([0], [40], [1.0], [1]))


class TestGenerator:
    def test_same_seed_same_stream(self):
        g = small_graph()
        a = TemporalEdgeStream(g, seed=3, batch_size=16).batches(3)
        b = TemporalEdgeStream(g, seed=3, batch_size=16).batches(3)
        for x, y in zip(a, b):
            assert np.array_equal(x.src, y.src)
            assert np.array_equal(x.dst, y.dst)
            assert np.array_equal(x.weight, y.weight)
            assert np.array_equal(x.op, y.op)

    def test_deletes_target_live_edges(self):
        g = small_graph()
        dyn = DynamicGraph.from_csr(g)
        stream = TemporalEdgeStream(g, seed=5, batch_size=32,
                                    insert_frac=0.3)
        for batch in stream.batches(4):
            delta = dyn.apply(batch)
            # every delete the generator emits names a then-live edge,
            # so none is a no-op when replayed in order
            assert delta.arcs_deleted == batch.n_deletes


# -- incremental maintenance: the headline guarantee ------------------------

class TestIncrementalEqualsRecompute:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_within_residual_bound_after_each_batch(self, seed):
        g = small_graph(seed=seed % 997)
        dyn = DynamicGraph.from_csr(g)
        source = int(seed % g.n_nodes)
        state = IncrementalState.from_scratch(g, source, PARAMS)
        stream = TemporalEdgeStream(g, seed=seed, batch_size=12)
        for batch in stream.batches(3):
            apply_tracked(state, dyn, batch)
            refresh(state, dyn)
            snap = dyn.snapshot()
            p_scratch, r_scratch, _ = forward_push_sequential(
                snap, source, PARAMS)
            # ||p_inc - p_scr||_1 <= ||r_inc||_1 + ||r_scr||_1, and both
            # residuals obey the published eps * sum(wdeg) bound
            bound = (float(np.abs(state.r).sum())
                     + float(np.abs(r_scratch).sum()))
            assert bound <= 2 * accuracy_bound(snap, PARAMS) + 1e-12
            assert float(np.abs(state.p - p_scratch).sum()) <= bound + 1e-12

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_mass_conservation(self, seed):
        g = small_graph(seed=seed % 991)
        dyn = DynamicGraph.from_csr(g)
        state = IncrementalState.from_scratch(g, 0, PARAMS)
        stream = TemporalEdgeStream(g, seed=seed, batch_size=12)
        for batch in stream.batches(3):
            apply_tracked(state, dyn, batch)
            refresh(state, dyn)
        # corrections redistribute residual mass; p + r still sums to 1
        # up to the corrections' own rounding
        total = float(state.p.sum() + state.r.sum())
        assert total == pytest.approx(1.0, abs=1e-9)


class TestMetamorphic:
    def test_insert_then_delete_restores_bitwise(self):
        g = small_graph(seed=1)
        dyn = DynamicGraph.from_csr(g)
        state = IncrementalState.from_scratch(g, 5, PARAMS)
        p0, r0 = state.p.copy(), state.r.copy()
        ins = UpdateBatch([1, 2, 8], [30, 31, 32], [1.25, 0.75, 1.1],
                          [1, 1, 1])
        inv = ins.inverse_of_inserts(dyn)   # against the pre-batch state
        apply_tracked(state, dyn, ins)
        apply_tracked(state, dyn, inv)
        stats = refresh(state, dyn)
        assert stats.n_pushes == 0          # nothing to re-push at all
        assert np.array_equal(state.p, p0)
        assert np.array_equal(state.r, r0)

    @given(st.integers(0, 2**31 - 1), st.integers(1, 47))
    @settings(max_examples=10, deadline=None)
    def test_split_and_merged_streams_agree_bitwise(self, seed, cut):
        g = small_graph(seed=seed % 983)
        batches = TemporalEdgeStream(g, seed=seed, batch_size=16).batches(3)
        merged = UpdateBatch.concat(batches)
        head, tail = merged.split(cut % (len(merged) + 1))

        finals = []
        for seq in (batches, [merged], [head, tail]):
            dyn = DynamicGraph.from_csr(g)
            state = IncrementalState.from_scratch(g, 3, PARAMS)
            for b in seq:
                apply_tracked(state, dyn, b)
            refresh(state, dyn)
            finals.append((state.p, state.r, dyn.snapshot()))
        p0, r0, s0 = finals[0]
        for p, r, s in finals[1:]:
            assert np.array_equal(p, p0)
            assert np.array_equal(r, r0)
            assert np.array_equal(s.indices, s0.indices)
            assert np.array_equal(s.weights, s0.weights)

    def test_reverted_batch_contributes_nothing(self):
        g = small_graph(seed=2)
        dyn = DynamicGraph.from_csr(g)
        state = IncrementalState.from_scratch(g, 7, PARAMS)
        p0, r0 = state.p.copy(), state.r.copy()
        batch = TemporalEdgeStream(g, seed=4, batch_size=12).next_batch()
        delta = apply_tracked(state, dyn, batch)
        dyn.revert(delta)                   # distributed application failed
        stats = refresh(state, dyn)         # stale pre-rows are harmless
        assert stats.n_pushes == 0
        assert np.array_equal(state.p, p0)
        assert np.array_equal(state.r, r0)


# -- distributed application ------------------------------------------------

class TestShardSplice:
    @pytest.mark.parametrize("halo_hops", [1, 2])
    def test_splice_equals_fresh_build(self, halo_hops):
        from repro.storage.build import build_shards

        g = powerlaw_cluster(120, 4, mixing=0.2, seed=8)
        engine = GraphEngine(g, EngineConfig(n_machines=3, seed=0,
                                             halo_hops=halo_hops))
        dyn = DynamicGraph.from_csr(g)
        stream = TemporalEdgeStream(g, seed=9, batch_size=16)
        for tag in (1, 2):
            delta = dyn.apply(stream.next_batch())
            payloads = build_shard_payloads(engine.sharded, dyn,
                                            delta.changed)
            outcome, _, _ = ingest_on_cluster(engine, payloads, tag=tag)
            assert outcome["status"] == "applied"
        fresh = build_shards(dyn.snapshot(), engine.sharded.result,
                             seed=0, halo_hops=halo_hops)
        for spliced, rebuilt in zip(engine.sharded.shards, fresh.shards):
            assert np.array_equal(spliced.indptr, rebuilt.indptr)
            assert np.array_equal(spliced.nbr_global, rebuilt.nbr_global)
            assert np.array_equal(spliced.nbr_local, rebuilt.nbr_local)
            assert np.array_equal(spliced.nbr_shard, rebuilt.nbr_shard)
            assert np.array_equal(spliced.nbr_weight, rebuilt.nbr_weight)
            # wdeg columns: same sums, different summation order
            assert np.allclose(spliced.core_wdeg, rebuilt.core_wdeg)
            assert np.allclose(spliced.nbr_wdeg, rebuilt.nbr_wdeg)

    def test_stage_commit_rollback_idempotent(self):
        g = powerlaw_cluster(80, 4, mixing=0.2, seed=3)
        engine = GraphEngine(g, EngineConfig(n_machines=2, seed=0))
        dyn = DynamicGraph.from_csr(g)
        delta = dyn.apply(
            TemporalEdgeStream(g, seed=2, batch_size=8).next_batch())
        payloads = build_shard_payloads(engine.sharded, dyn, delta.changed)
        shard = engine.sharded.shards[0]
        before = shard.nbr_weight.copy()

        shard.stage_updates(7, payloads[0])
        assert np.array_equal(shard.nbr_weight, before)  # invisible
        shard.commit_updates(7)
        after = shard.nbr_weight.copy()
        # duplicate RPCs (lost replies) are absorbed, not re-applied
        shard.stage_updates(7, payloads[0])
        assert shard.commit_updates(7) == 1
        assert np.array_equal(shard.nbr_weight, after)
        # rollback restores the pre-image, idempotently
        assert shard.rollback_updates(7) == 1
        assert np.array_equal(shard.nbr_weight, before)
        assert shard.rollback_updates(7) == 1

    def test_commit_unknown_tag_raises(self):
        g = powerlaw_cluster(60, 4, mixing=0.2, seed=3)
        engine = GraphEngine(g, EngineConfig(n_machines=2, seed=0))
        with pytest.raises(ShardError):
            engine.sharded.shards[0].commit_updates(99)
