"""Unit tests for repro.utils.validation and repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import rng_from_seed, spawn_rngs
from repro.utils.validation import (
    check_dtype,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_same_length,
    ensure_int_array,
)


class TestChecks:
    def test_check_positive_accepts(self):
        check_positive("x", 1e-9)

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_in_range_exclusive(self):
        check_in_range("alpha", 0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range("alpha", 0.0, 0.0, 1.0)

    def test_check_in_range_inclusive(self):
        check_in_range("p", 1.0, 0.0, 1.0, inclusive=True)

    def test_check_same_length(self):
        check_same_length(a=[1, 2], b=np.array([3, 4]))
        with pytest.raises(ValueError, match="length mismatch"):
            check_same_length(a=[1], b=[1, 2])

    def test_check_dtype(self):
        check_dtype("ids", np.array([1, 2]), "iu")
        with pytest.raises(TypeError):
            check_dtype("ids", np.array([1.5]), "iu")


class TestEnsureIntArray:
    def test_list_input(self):
        out = ensure_int_array([1, 2, 3])
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [1, 2, 3])

    def test_scalar_promoted(self):
        out = ensure_int_array(5)
        np.testing.assert_array_equal(out, [5])

    def test_integral_floats_accepted(self):
        out = ensure_int_array(np.array([1.0, 2.0]))
        assert out.dtype == np.int64

    def test_fractional_floats_rejected(self):
        with pytest.raises(TypeError, match="non-integral"):
            ensure_int_array(np.array([1.5]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            ensure_int_array(np.zeros((2, 2), dtype=np.int64))

    def test_empty_ok(self):
        assert ensure_int_array([]).shape == (0,)

    def test_custom_dtype(self):
        assert ensure_int_array([1], dtype=np.int32).dtype == np.int32


class TestRng:
    def test_seed_reproducible(self):
        a = rng_from_seed(42).integers(0, 100, 10)
        b = rng_from_seed(42).integers(0, 100, 10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert rng_from_seed(g) is g

    def test_spawn_rngs_independent(self):
        streams = spawn_rngs(7, 3)
        assert len(streams) == 3
        draws = [g.integers(0, 2**32) for g in streams]
        assert len(set(draws)) == 3  # overwhelmingly likely distinct

    def test_spawn_rngs_reproducible(self):
        a = [g.integers(0, 2**32) for g in spawn_rngs(7, 3)]
        b = [g.integers(0, 2**32) for g in spawn_rngs(7, 3)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator_seed_deterministic(self):
        # a Generator parent seeds children by jumping its own stream:
        # identically-seeded parents must yield identical children
        a = [g.integers(0, 2**32)
             for g in spawn_rngs(np.random.default_rng(11), 3)]
        b = [g.integers(0, 2**32)
             for g in spawn_rngs(np.random.default_rng(11), 3)]
        assert a == b

    def test_spawn_from_generator_seed_children_distinct(self):
        streams = spawn_rngs(np.random.default_rng(11), 4)
        assert len(streams) == 4
        draws = [tuple(g.integers(0, 2**32, size=4)) for g in streams]
        assert len(set(draws)) == 4

    def test_spawn_from_generator_advances_parent(self):
        # the jump consumes parent state, so successive spawns differ —
        # children are independent of each other, batch to batch
        parent = np.random.default_rng(11)
        first = [g.integers(0, 2**32) for g in spawn_rngs(parent, 2)]
        second = [g.integers(0, 2**32) for g in spawn_rngs(parent, 2)]
        assert first != second
