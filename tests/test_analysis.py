"""The determinism & concurrency sanitizer suite (``repro.analysis``).

Pillars, tested in order: the custom AST lint engine and its
REP001–REP010 rules (against per-rule positive/negative fixtures under
``tests/fixtures/analysis/`` and against the shipped tree, which must be
clean — the tier-1 gate); the whole-program call/lock-graph model behind
the interprocedural rules, the ratchet baseline, and the SARIF export;
the Eraser-style lockset race detector wired through ``ShardedMap`` /
``ThreadRuntime`` / ``RunRequest(sanitize=True)``; and the scheduler
deadlock detector that names the blocked coroutine and the future it
awaits when the event queue drains early.
"""

import json
import threading

import numpy as np
import pytest

from repro.analysis import (
    AnalysisConfig,
    RaceDetector,
    build_project,
    diagnose,
    installed,
    load_config,
    run_lint,
    uninstall,
)
from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    load_baseline,
    reconcile,
    save_baseline,
)
from repro.analysis.lint import (
    FileContext,
    Violation,
    collect_pragmas,
    lint_file,
)
from repro.analysis.sarif import to_sarif
from repro.analysis.rules import ALL_RULE_IDS, ALL_RULES, get_rules
from repro.cli import main
from repro.engine import EngineConfig, GraphEngine, RunRequest
from repro.errors import SimulationError
from repro.graph import powerlaw_cluster
from repro.ppr.hashmap import ShardedMap
from repro.simt.events import Wait
from repro.simt.futures import SimFuture
from repro.simt.scheduler import Scheduler

from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).parent / "fixtures" / "analysis"

#: rule -> (positive fixture, negative fixture, expected positive hits)
FIXTURE_MAP = {
    "REP001": ("rep001_bad.py", "rep001_ok.py", 3),
    "REP002": ("rep002_bad.py", "rep002_ok.py", 3),
    "REP003": ("simt/rep003_bad.py", "simt/rep003_ok.py", 3),
    "REP004": ("rpc/rep004_bad.py", "rpc/rep004_ok.py", 5),
    "REP005": ("simt/rep005_bad.py", "simt/rep005_ok.py", 3),
    "REP006": ("rpc/rep006_bad.py", "rpc/rep006_ok.py", 2),
    "REP007": ("rep007_bad.py", "rep007_ok.py", 3),
    "REP008": ("rep008_bad.py", "rep008_ok.py", 4),
    "REP009": ("rpc/rep009_bad.py", "rpc/rep009_ok.py", 3),
    "REP010": ("rpc/rep010_bad.py", "rpc/rep010_ok.py", 3),
    "REP011": ("storage/shard.py", "storage/fetch.py", 3),
}


def lint_fixture(rel, rule_id):
    return run_lint([FIXTURES / rel], rules=get_rules([rule_id]),
                    root=REPO_ROOT)


# ---------------------------------------------------------------------------
# the lint framework
# ---------------------------------------------------------------------------

class TestFramework:
    def test_all_rules_registered(self):
        assert ALL_RULE_IDS == ("REP001", "REP002", "REP003", "REP004",
                                "REP005", "REP006", "REP007", "REP008",
                                "REP009", "REP010", "REP011")
        assert all(r.title for r in ALL_RULES)

    def test_get_rules_unknown_id(self):
        with pytest.raises(KeyError, match="REP999"):
            get_rules(["REP999"])

    def test_violation_format_names_rule_and_location(self):
        v = Violation(path="src/x.py", line=3, col=4, rule="REP001",
                      message="boom")
        assert v.format() == "src/x.py:3:4: REP001 boom"
        assert v.as_dict()["line"] == 3

    def test_pragma_covers_own_and_next_line(self):
        src = ("import time\n"
               "# repro: allow=REP001 legit timestamp\n"
               "t = time.time()\n"
               "u = time.time()\n")
        pragmas = collect_pragmas(src)
        assert pragmas[2] == {"REP001"} and pragmas[3] == {"REP001"}
        assert 4 not in pragmas

    def test_pragma_suppresses_violation(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("import time\n"
                       "# repro: allow=REP001\n"
                       "t = time.time()\n"
                       "u = time.time()\n")
        out = run_lint([bad], rules=get_rules(["REP001"]))
        assert len(out) == 1 and out[0].line == 4

    def test_pragma_comma_list(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("import time\n"
                       "t = time.time()  # repro: allow=REP001,REP002\n")
        assert run_lint([bad], rules=get_rules(["REP001"])) == []

    def test_config_allowlist_glob(self):
        cfg = AnalysisConfig(allow=("REP001:src/repro/utils/*.py",
                                    "*:tools/scratch.py"))
        assert cfg.allows("REP001", "src/repro/utils/timer.py")
        assert not cfg.allows("REP002", "src/repro/utils/timer.py")
        assert cfg.allows("REP006", "tools/scratch.py")
        assert not cfg.allows("REP001", "src/repro/cli.py")

    def test_load_config_roundtrip(self, tmp_path):
        py = tmp_path / "pyproject.toml"
        py.write_text("[tool.repro.analysis]\n"
                      'allow = ["REP001:src/a.py"]\n')
        assert load_config(py).allow == ("REP001:src/a.py",)
        assert load_config(tmp_path / "missing.toml").allow == ()

    def test_load_config_rejects_non_string_entries(self, tmp_path):
        py = tmp_path / "pyproject.toml"
        py.write_text("[tool.repro.analysis]\nallow = [1]\n")
        with pytest.raises(ValueError, match="allow"):
            load_config(py)

    def test_config_allowlist_applied_by_run_lint(self, tmp_path):
        bad = tmp_path / "timer_shim.py"
        bad.write_text("import time\nt = time.time()\n")
        cfg = AnalysisConfig(allow=(f"REP001:{bad.as_posix()}",))
        assert run_lint([bad], rules=get_rules(["REP001"]),
                        config=cfg) == []

    def test_import_alias_resolution(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("from time import perf_counter as pc\n"
                       "import time as clock\n"
                       "a = pc()\n"
                       "b = clock.monotonic()\n")
        out = run_lint([bad], rules=get_rules(["REP001"]))
        assert [v.line for v in out] == [3, 4]

    def test_local_variable_root_not_resolved(self, tmp_path):
        ok = tmp_path / "mod.py"
        ok.write_text("def f(time):\n    return time.time()\n")
        assert run_lint([ok], rules=get_rules(["REP001"])) == []

    def test_scoped_rule_skips_unscoped_paths(self, tmp_path):
        # identical hazard outside simt/rpc/engine/partition: not flagged
        mod = tmp_path / "mod.py"
        mod.write_text((FIXTURES / "simt/rep003_bad.py").read_text())
        assert run_lint([mod], rules=get_rules(["REP003"])) == []

    def test_relpath_is_repo_relative(self):
        ctx = FileContext.parse(FIXTURES / "rep001_bad.py", root=REPO_ROOT)
        assert ctx.relpath == "tests/fixtures/analysis/rep001_bad.py"
        assert "tests" in ctx.parts


# ---------------------------------------------------------------------------
# per-rule fixtures
# ---------------------------------------------------------------------------

class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_MAP))
    def test_positive_fixture_flagged(self, rule_id):
        bad, _ok, n_expected = FIXTURE_MAP[rule_id]
        out = lint_fixture(bad, rule_id)
        assert len(out) == n_expected, [v.format() for v in out]
        assert all(v.rule == rule_id for v in out)
        assert all(v.path.endswith(bad) and v.line > 0 for v in out)

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_MAP))
    def test_negative_fixture_clean(self, rule_id):
        _bad, ok, _n = FIXTURE_MAP[rule_id]
        assert lint_fixture(ok, rule_id) == []

    def test_rep004_names_the_offending_argument(self):
        out = lint_fixture("rpc/rep004_bad.py", "REP004")
        messages = " ".join(v.message for v in out)
        assert "lambda" in messages
        assert "generator expression" in messages
        assert "payload_sizes" in messages  # the Ellipsis literal

    def test_rep004_dataflow_resolves_single_assignment_names(self):
        out = lint_fixture("rpc/rep004_bad.py", "REP004")
        via = [v for v in out if "via local" in v.message]
        assert len(via) == 2
        assert any("'handler'" in v.message for v in via)
        assert any("'bad_payload'" in v.message for v in via)

    def test_rep006_exempts_reraising_handler(self):
        out = lint_fixture("rpc/rep006_ok.py", "REP006")
        assert out == []

    def test_rep007_names_the_bad_metric(self):
        out = lint_fixture("rep007_bad.py", "REP007")
        messages = " ".join(v.message for v in out)
        assert "'cache.hits'" in messages
        assert "'serv.queue_depth'" in messages
        assert "metrics_catalog" in messages

    def test_rep007_judges_fstring_literal_heads(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "def f(m, tenant):\n"
            "    m.inc(f'serve.tenant.{tenant}.admitted')\n"  # catalogued
            "    m.inc(f'svc.{tenant}.admitted')\n"           # drifted
            "    m.inc(f'{tenant}.admitted')\n"               # unjudgeable
        )
        out = run_lint([mod], rules=get_rules(["REP007"]))
        assert [v.line for v in out] == [3]

    def test_rep011_scope_is_path_suffix_not_directory(self, tmp_path):
        # the identical hazard outside the three hot-path files is ignored,
        # even inside a directory named "storage"
        storage = tmp_path / "storage"
        storage.mkdir()
        body = ("import numpy as np\n"
                "def gather(arena, starts, counts):\n"
                "    return arena[np.repeat(starts, counts)].copy()\n")
        (storage / "helpers.py").write_text(body)
        assert run_lint([storage / "helpers.py"],
                        rules=get_rules(["REP011"])) == []
        (storage / "shard.py").write_text(body)
        out = run_lint([storage / "shard.py"], rules=get_rules(["REP011"]))
        assert len(out) == 2

    def test_rep011_message_names_the_pragma(self):
        out = lint_fixture("storage/shard.py", "REP011")
        messages = " ".join(v.message for v in out)
        assert "repro: allow=REP011" in messages
        assert "'np.repeat'" in messages
        assert "'np.concatenate'" in messages
        assert "'.copy()'" in messages

    def test_rep007_catalog_matches_documented_namespaces(self):
        from repro.obs.metrics_catalog import METRIC_NAMESPACES, \
            is_catalogued

        doc = (REPO_ROOT / "docs" / "observability.md").read_text()
        for namespace in METRIC_NAMESPACES:
            assert f"{namespace}." in doc, (
                f"namespace {namespace!r} is catalogued but never "
                f"mentioned in docs/observability.md")
        assert is_catalogued("rpc.calls")
        assert is_catalogued("serve.tenant.")
        assert not is_catalogued("cache.hits")


# ---------------------------------------------------------------------------
# the tree gate + CLI
# ---------------------------------------------------------------------------

class TestTreeGateAndCli:
    def test_shipped_tree_is_clean(self):
        config = load_config(REPO_ROOT / "pyproject.toml")
        out = run_lint([SRC], config=config, root=REPO_ROOT)
        assert out == [], "\n".join(v.format() for v in out)

    def test_cli_analyze_exits_zero_on_tree(self, capsys):
        assert main(["analyze"]) == 0
        assert "analyze OK" in capsys.readouterr().out

    def test_cli_analyze_nonzero_names_rule_and_location(self, capsys):
        bad = FIXTURES / "rep001_bad.py"
        assert main(["analyze", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "rep001_bad.py:5" in out  # file:line of the first hit

    def test_cli_rule_filter(self, capsys):
        bad = FIXTURES / "rep001_bad.py"
        # rep001_bad only violates REP001; filtering to REP002 is clean
        assert main(["analyze", str(bad), "--rule", "REP002"]) == 0
        assert main(["analyze", str(bad), "--rule", "REP001",
                     "--rule", "REP002"]) == 1
        capsys.readouterr()

    def test_cli_json_output(self, capsys):
        bad = FIXTURES / "rpc" / "rep006_bad.py"
        assert main(["analyze", str(bad), "--rule", "REP006",
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert {v["rule"] for v in payload} == {"REP006"}

    def test_cli_list_rules(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_cli_lints_whole_fixture_dir(self, capsys):
        # every registered rule fires somewhere under the fixture tree
        assert main(["analyze", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out, f"{rule_id} missing from:\n{out}"


# ---------------------------------------------------------------------------
# the whole-program model (callgraph.py)
# ---------------------------------------------------------------------------

class TestCallGraph:
    def test_aliased_import_resolves_cross_module(self, tmp_path):
        (tmp_path / "helpers.py").write_text(
            "def fetch(x):\n    return x\n")
        (tmp_path / "driver.py").write_text(
            "from helpers import fetch as grab\n"
            "import helpers as h\n"
            "def run():\n"
            "    grab(1)\n"
            "    h.fetch(2)\n")
        project = build_project([tmp_path], root=tmp_path)
        callees = [c.callee for c in project.functions["driver:run"].calls]
        assert callees == ["helpers:fetch", "helpers:fetch"]

    def test_self_method_and_inherited_resolution(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "class Base:\n"
            "    def ping(self):\n"
            "        return 1\n"
            "class Impl(Base):\n"
            "    def run(self):\n"
            "        return self.ping()\n")
        project = build_project([tmp_path], root=tmp_path)
        calls = project.functions["mod:Impl.run"].calls
        assert [c.callee for c in calls] == ["mod:Base.ping"]

    def test_nested_defs_are_cataloged_and_resolved(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import threading\n"
            "L = threading.Lock()\n"
            "def outer():\n"
            "    def inner():\n"
            "        with L:\n"
            "            pass\n"
            "    inner()\n")
        project = build_project([tmp_path], root=tmp_path)
        nested = project.functions["mod:outer.<locals>.inner"]
        assert [a.lock_id for a in nested.locks] == ["mod:L"]
        outer_calls = project.functions["mod:outer"].calls
        assert [c.callee for c in outer_calls] == \
            ["mod:outer.<locals>.inner"]

    def test_lock_cycle_through_closure(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import threading\n"
            "L1 = threading.Lock()\n"
            "L2 = threading.Lock()\n"
            "def outer():\n"
            "    def inner():\n"
            "        with L1:\n"
            "            with L2:\n"
            "                pass\n"
            "    return inner\n"
            "def other():\n"
            "    with L2:\n"
            "        with L1:\n"
            "            pass\n")
        project = build_project([tmp_path], root=tmp_path)
        assert project.lock_cycles() == [["mod:L1", "mod:L2"]]

    def test_graph_exports(self):
        project = build_project([FIXTURES / "rep008_bad.py"],
                                root=REPO_ROOT)
        payload = project.to_json()
        assert payload["schema"] == "repro.analysis-graph/v1"
        assert payload["locks"]["cycles"], "fixture cycle missing"
        dot = project.to_dot()
        assert dot.startswith("digraph")
        assert "color=red" in dot  # cycle edges are highlighted

    def test_run_lint_only_filters_report_not_analysis(self, tmp_path):
        rpc = tmp_path / "rpc"
        rpc.mkdir()
        (rpc / "server.py").write_text(
            "from repro.rpc.handlers import rpc_handler\n"
            "class S:\n"
            "    @rpc_handler\n"
            "    def ok(self):\n"
            "        return 1\n")
        (rpc / "client.py").write_text(
            "def go(ctx, ref):\n"
            "    ctx.rpc_async(ref, 'ok')\n"
            "    ctx.rpc_async(ref, 'gone')\n")
        everything = run_lint([tmp_path], rules=get_rules(["REP010"]),
                              root=tmp_path)
        assert [v.path for v in everything] == ["rpc/client.py"]
        # restricting the report to server.py hides the client finding but
        # the whole-program analysis still ran: no orphan false-positive
        # for S.ok (its dispatch site lives in the unreported file)
        only_server = run_lint([tmp_path], rules=get_rules(["REP010"]),
                               root=tmp_path, only=["rpc/server.py"])
        assert only_server == []


# ---------------------------------------------------------------------------
# the interprocedural rules (REP008–REP010) + project-refined verdicts
# ---------------------------------------------------------------------------

class TestInterproceduralRules:
    def test_rep008_reports_every_cycle_edge_with_the_ring(self):
        out = lint_fixture("rep008_bad.py", "REP008")
        module_cycle = [v for v in out if "LOCK_A" in v.message]
        class_cycle = [v for v in out if "Pool._" in v.message]
        assert len(module_cycle) == 2 and len(class_cycle) == 2
        assert all("->" in v.message for v in out)

    def test_rep009_names_target_and_definition_site(self):
        out = lint_fixture("rpc/rep009_bad.py", "REP009")
        assert any("REGISTRY" in v.message and "rep009_bad.py:8" in v.message
                   for v in out)

    def test_rep009_locked_callers_exempt_helper(self):
        # the _insert helper in the ok fixture mutates with no lock at the
        # site; it is exempt only because every caller holds _LOCK
        out = lint_fixture("rpc/rep009_ok.py", "REP009")
        assert out == []

    def test_rep010_forwarded_method_param_resolves_one_hop(self, tmp_path):
        rpc = tmp_path / "rpc"
        rpc.mkdir()
        (rpc / "mod.py").write_text(
            "from repro.rpc.handlers import rpc_handler\n"
            "class S:\n"
            "    @rpc_handler\n"
            "    def present(self):\n"
            "        return 1\n"
            "def _send(ctx, ref, method):\n"
            "    ctx.rpc_async(ref, method)\n"
            "def go(ctx, ref):\n"
            "    _send(ctx, ref, 'present')\n"
            "    _send(ctx, ref, 'absent')\n")
        out = run_lint([tmp_path], rules=get_rules(["REP010"]),
                       root=tmp_path)
        assert len(out) == 1
        # reported at the *outer* call, where the literal lives
        assert out[0].line == 10 and "'absent'" in out[0].message

    def test_rep010_quiet_without_declared_handlers(self, tmp_path):
        # ad-hoc test doubles: dispatch literals but no @rpc_handler
        # anywhere in the analyzed project -> contract checking stays off
        (tmp_path / "mod.py").write_text(
            "def go(ctx, ref):\n"
            "    ctx.rpc_async(ref, 'anything_at_all')\n")
        assert run_lint([tmp_path], rules=get_rules(["REP010"]),
                        root=tmp_path) == []

    def test_rep006_provably_safe_body_not_flagged(self, tmp_path):
        rpc = tmp_path / "rpc"
        rpc.mkdir()
        (rpc / "mod.py").write_text(
            "import numpy as np\n"
            "def summarize(rows):\n"
            "    try:\n"
            "        return float(np.mean(rows))\n"
            "    except Exception:\n"
            "        return 0.0\n")
        assert run_lint([tmp_path], rules=get_rules(["REP006"]),
                        root=tmp_path) == []

    def test_rep006_fault_capable_bodies_still_flagged(self, tmp_path):
        rpc = tmp_path / "rpc"
        rpc.mkdir()
        (rpc / "mod.py").write_text(
            "def drain(fut):\n"
            "    try:\n"
            "        yield fut\n"               # simt faults throw here
            "    except Exception:\n"
            "        pass\n"
            "def dynamic(call):\n"
            "    try:\n"
            "        call()\n"                  # unknown callable: suspect
            "    except Exception:\n"
            "        pass\n")
        out = run_lint([tmp_path], rules=get_rules(["REP006"]),
                       root=tmp_path)
        assert [v.line for v in out] == [4, 9]

    def test_rep004_judges_callee_return_paths_one_hop(self, tmp_path):
        rpc = tmp_path / "rpc"
        rpc.mkdir()
        (rpc / "mod.py").write_text(
            "def make_cb():\n"
            "    return lambda x: x\n"
            "def mixed(flag):\n"
            "    if flag:\n"
            "        return lambda x: x\n"
            "    return [1, 2]\n"
            "def send(ctx, ref):\n"
            "    ctx.rpc_async(ref, 'm', make_cb())\n"   # every return bad
            "    ctx.rpc_async(ref, 'm', mixed(True))\n")  # one good path
        out = run_lint([tmp_path], rules=get_rules(["REP004"]),
                       root=tmp_path)
        assert len(out) == 1 and out[0].line == 8
        assert "every return path is unsizeable" in out[0].message

    def test_deleting_a_handler_is_caught(self, tmp_path):
        """The ISSUE acceptance scenario: drop a handler, REP010 fires."""
        rpc = tmp_path / "rpc"
        rpc.mkdir()
        before = (
            "from repro.rpc.handlers import rpc_handler\n"
            "class S:\n"
            "    @rpc_handler\n"
            "    def alpha(self):\n"
            "        return 1\n"
            "    @rpc_handler\n"
            "    def beta(self):\n"
            "        return 2\n"
            "def go(ctx, ref):\n"
            "    ctx.rpc_async(ref, 'alpha')\n"
            "    ctx.rpc_async(ref, 'beta')\n")
        mod = rpc / "mod.py"
        mod.write_text(before)
        assert run_lint([tmp_path], rules=get_rules(["REP010"]),
                        root=tmp_path) == []
        mod.write_text(before.replace(
            "    @rpc_handler\n    def beta(self):\n        return 2\n",
            ""))
        out = run_lint([tmp_path], rules=get_rules(["REP010"]),
                       root=tmp_path)
        assert len(out) == 1 and "'beta'" in out[0].message

    def test_inverting_lock_order_is_caught(self, tmp_path):
        """The ISSUE acceptance scenario: invert two with-blocks, REP008."""
        before = (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def one():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
            "def two():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n")
        mod = tmp_path / "mod.py"
        mod.write_text(before)
        assert run_lint([tmp_path], rules=get_rules(["REP008"]),
                        root=tmp_path) == []
        mod.write_text(before.replace(
            "def two():\n    with A:\n        with B:\n",
            "def two():\n    with B:\n        with A:\n"))
        out = run_lint([tmp_path], rules=get_rules(["REP008"]),
                       root=tmp_path)
        assert len(out) == 2
        assert all("mod:A" in v.message and "mod:B" in v.message
                   for v in out)


# ---------------------------------------------------------------------------
# the ratchet baseline
# ---------------------------------------------------------------------------

def _v(rule="REP001", path="src/a.py", line=3, message="boom"):
    return Violation(path=path, line=line, col=0, rule=rule,
                     message=message)


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        f = tmp_path / "base.json"
        saved = save_baseline(f, [_v(), _v(line=9), _v(rule="REP002")])
        loaded = load_baseline(f)
        assert loaded.entries == saved.entries
        assert loaded.entries[("REP001", "src/a.py", "boom")] == 2
        payload = json.loads(f.read_text())
        assert payload["schema"] == BASELINE_SCHEMA

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").entries == {}

    def test_schema_mismatch_rejected(self, tmp_path):
        f = tmp_path / "base.json"
        f.write_text('{"schema": "something/v9", "findings": []}')
        with pytest.raises(ValueError, match="schema"):
            load_baseline(f)

    def test_new_finding_fails(self, tmp_path):
        f = tmp_path / "base.json"
        baseline = save_baseline(f, [_v()])
        result = reconcile(baseline, [_v(), _v(rule="REP005")])
        assert [v.rule for v in result.new] == ["REP005"]
        assert result.stale == () and not result.ok

    def test_stale_entry_fails(self, tmp_path):
        f = tmp_path / "base.json"
        baseline = save_baseline(f, [_v(), _v(rule="REP002")])
        result = reconcile(baseline, [_v()])
        assert result.new == ()
        assert result.stale == (("REP002", "src/a.py", "boom"),)
        assert not result.ok

    def test_stale_check_skipped_for_partial_runs(self, tmp_path):
        baseline = save_baseline(tmp_path / "b.json", [_v()])
        result = reconcile(baseline, [], check_stale=False)
        assert result.ok

    def test_line_moves_do_not_churn(self, tmp_path):
        # the key is (rule, path, message): code motion above a baselined
        # finding keeps it suppressed
        baseline = save_baseline(tmp_path / "b.json", [_v(line=3)])
        result = reconcile(baseline, [_v(line=40)])
        assert result.ok and len(result.suppressed) == 1

    def test_excess_duplicates_are_new_last_in_line_order(self, tmp_path):
        baseline = save_baseline(tmp_path / "b.json", [_v(line=3)])
        result = reconcile(baseline, [_v(line=3), _v(line=9)])
        assert [v.line for v in result.new] == [9]
        assert [v.line for v in result.suppressed] == [3]


# ---------------------------------------------------------------------------
# SARIF export + the new CLI surfaces
# ---------------------------------------------------------------------------

class TestSarifAndCliSurfaces:
    def test_sarif_document_shape(self):
        vs = [_v(line=7)]
        doc = to_sarif(vs, ALL_RULES)
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-analyze"
        assert [r["id"] for r in driver["rules"]] == list(ALL_RULE_IDS)
        result = run["results"][0]
        assert result["ruleId"] == "REP001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 7
        assert region["startColumn"] == 1  # 0-based col -> 1-based

    def test_cli_sarif_stdout(self, capsys):
        bad = FIXTURES / "rep001_bad.py"
        assert main(["analyze", str(bad), "--rule", "REP001",
                     "--sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert results and all(r["ruleId"] == "REP001" for r in results)

    def test_cli_sarif_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.sarif"
        bad = FIXTURES / "rep001_bad.py"
        assert main(["analyze", str(bad), "--rule", "REP001",
                     "--sarif", str(out_file)]) == 1
        capsys.readouterr()
        doc = json.loads(out_file.read_text())
        assert doc["runs"][0]["results"]

    def test_cli_graph_exports(self, capsys):
        assert main(["analyze", str(FIXTURES / "rep008_bad.py"),
                     "--graph", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.analysis-graph/v1"
        assert payload["locks"]["cycles"]
        assert main(["analyze", str(FIXTURES / "rep008_bad.py"),
                     "--graph", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_cli_baseline_ratchet(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        bad = FIXTURES / "rep001_bad.py"
        # freeze the findings, then the same tree passes with them noted
        assert main(["analyze", str(bad), "--rule", "REP001",
                     "--baseline", str(base), "--update-baseline"]) == 0
        assert main(["analyze", str(bad), "--rule", "REP001",
                     "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        # --no-baseline ignores the budget: findings fail again
        assert main(["analyze", str(bad), "--rule", "REP001",
                     "--baseline", str(base), "--no-baseline"]) == 1
        capsys.readouterr()

    def test_cli_changed_only_runs(self, capsys):
        # on a clean (or clean-baselined) tree this must exit 0 whatever
        # the current diff against HEAD contains
        assert main(["analyze", "--changed-only"]) == 0
        capsys.readouterr()

    def test_committed_baseline_is_empty(self):
        # the shipped tree is clean, so the committed ratchet starts empty
        baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
        assert baseline.total == 0


# ---------------------------------------------------------------------------
# the lockset race detector
# ---------------------------------------------------------------------------

def hammer(fn, n_threads=2):
    """Run ``fn(i)`` on ``n_threads`` named threads; join all."""
    threads = [threading.Thread(target=fn, args=(i,), name=f"hammer-{i}")
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestRaceDetector:
    def test_unsynchronized_sharded_map_writes_flagged(self):
        detector = RaceDetector()
        table = ShardedMap()
        with installed(detector):
            hammer(lambda i: table.get_or_insert(
                np.arange(i * 8, i * 8 + 8, dtype=np.int64)))
        violations = detector.report()
        assert len(violations) == 1
        v = violations[0]
        assert v.location.startswith("ShardedMap@")
        assert v.first.thread_id != v.second.thread_id
        assert v.first.write and v.second.write
        assert v.first.lockset == () and v.second.lockset == ()
        # acquiring stacks name the instrumented call site
        assert any("get_or_insert" in frame for frame in v.second.stack)
        assert "race on ShardedMap@" in v.describe()

    def test_lock_disciplined_access_is_clean(self):
        detector = RaceDetector()
        table = ShardedMap()
        lock = detector.tracked_lock("table_lock")

        def writer(i):
            with lock:
                table.get_or_insert(
                    np.arange(i * 8, i * 8 + 8, dtype=np.int64))

        with installed(detector):
            hammer(writer)
        assert detector.report() == ()
        assert detector.accesses == 2

    def test_single_thread_never_flagged(self):
        detector = RaceDetector()
        table = ShardedMap()
        with installed(detector):
            for i in range(4):
                table.get_or_insert(np.array([i], dtype=np.int64))
                table.lookup(np.array([i], dtype=np.int64))
        assert detector.report() == ()
        assert detector.accesses == 8

    def test_concurrent_reads_without_writes_are_clean(self):
        detector = RaceDetector()
        table = ShardedMap()
        table.get_or_insert(np.arange(16, dtype=np.int64))
        with installed(detector):
            hammer(lambda i: table.lookup(np.arange(8, dtype=np.int64)))
        assert detector.report() == ()

    def test_install_uninstall_restores_hook(self):
        detector = RaceDetector()
        assert ShardedMap._sanitizer is None
        with installed(detector):
            assert ShardedMap._sanitizer is detector
        assert ShardedMap._sanitizer is None
        # uninstall(other) leaves an unrelated hook in place
        other = RaceDetector()
        with installed(detector):
            uninstall(other)
            assert ShardedMap._sanitizer is detector
            uninstall(detector)
            assert ShardedMap._sanitizer is None

    def test_summary_structure(self):
        detector = RaceDetector()
        table = ShardedMap()
        with installed(detector):
            hammer(lambda i: table.get_or_insert(
                np.array([i], dtype=np.int64)))
        s = detector.summary()
        assert s["accesses"] == 2 and s["locations"] == 1
        assert len(s["violations"]) == 1
        assert s["violations"][0]["first"]["write"] is True


class TestSanitizedRuns:
    @pytest.fixture(scope="class")
    def engine(self):
        graph = powerlaw_cluster(300, 5, mixing=0.2, seed=3)
        return GraphEngine(graph, EngineConfig(n_machines=2))

    def test_clean_sim_run_reports_zero_violations(self, engine):
        run = engine.run(RunRequest(n_queries=4, sanitize=True))
        assert run.race_violations == []
        assert run.metrics["sanitizer.violations"] == 0
        assert run.metrics["sanitizer.accesses"] > 0
        assert ShardedMap._sanitizer is None  # uninstalled after the run

    def test_sanitize_off_keeps_metrics_quiet(self, engine):
        run = engine.run(RunRequest(n_queries=4))
        assert run.race_violations == []
        assert "sanitizer.accesses" not in run.metrics

    def test_sanitize_does_not_change_results(self, engine):
        plain = engine.run(RunRequest(n_queries=4, keep_states=True))
        sane = engine.run(RunRequest(n_queries=4, keep_states=True,
                                     sanitize=True))
        n = engine.graph.n_nodes
        for gid in plain.states:
            np.testing.assert_array_equal(
                plain.states[gid].dense_result(engine.sharded, n),
                sane.states[gid].dense_result(engine.sharded, n))

    def test_clean_threaded_run_reports_zero_violations(self, engine):
        from repro.engine.query import assign_queries, multi_query_driver, \
            sample_sources
        from repro.ppr import OptLevel, PPRParams
        from repro.rpc import ThreadRuntime
        from repro.storage import DistGraphStorage

        cfg = engine.config
        sharded = engine.sharded
        sources = sample_sources(sharded, 4, seed=0)
        runtime = ThreadRuntime(sanitize=True)
        assert ShardedMap._sanitizer is runtime.sanitizer
        rrefs = []
        for m in range(cfg.n_machines):
            runtime.register_server(cfg.server_name(m), m)
            rrefs.append(runtime.create_remote(
                cfg.server_name(m), "storage",
                lambda shard=sharded.shards[m]: shard,
            ))
        try:
            for (machine, p), chunk in assign_queries(
                    sharded, sources, cfg.procs_per_machine).items():
                name = cfg.worker_name(machine, p)
                proc = runtime.register_worker(name, machine)
                g = DistGraphStorage(rrefs, machine, name, compress=True)
                runtime.spawn(name, multi_query_driver(
                    g, proc, chunk, sharded, PPRParams(epsilon=1e-5),
                    opt=OptLevel.OVERLAP, collect={},
                ))
            runtime.join(timeout=120)
        finally:
            runtime.shutdown()
        assert ShardedMap._sanitizer is None
        assert runtime.sanitizer.report() == ()
        assert runtime.sanitizer.accesses > 0
        assert runtime.obs.sanitizer is runtime.sanitizer


# ---------------------------------------------------------------------------
# the deadlock detector
# ---------------------------------------------------------------------------

class TestDeadlockDetector:
    def test_unresolved_future_names_coroutine_and_tag(self):
        sched = Scheduler()
        orphan = SimFuture(tag="rpc:server0.fetch")

        def body():
            yield Wait(orphan)

        sched.spawn("worker0", body())
        with pytest.raises(SimulationError) as err:
            sched.run()
        msg = str(err.value)
        assert "worker0" in msg
        assert "rpc:server0.fetch" in msg
        assert "blocked with an empty event queue" in msg

    def test_circular_wait_reported_as_cycle(self):
        sched = Scheduler()

        def wait_for(name):
            yield Wait(sched.processes[name].completion)

        sched.spawn("a", wait_for("b"))
        sched.spawn("b", wait_for("a"))
        with pytest.raises(SimulationError) as err:
            sched.run()
        assert "circular wait: a -> b -> a" in str(err.value)

    def test_diagnose_none_when_everyone_finished(self):
        sched = Scheduler()

        def body():
            yield Wait(sched.resolved_future(1))

        sched.spawn("fine", body())
        sched.run()
        assert diagnose(sched) is None

    def test_report_structure(self):
        sched = Scheduler()
        orphan = SimFuture(tag="never")

        def body():
            yield Wait(orphan)

        sched.spawn("stuck", body())
        with pytest.raises(SimulationError):
            sched.run()
        report = diagnose(sched)
        assert report is not None
        d = report.as_dict()
        assert d["blocked"] == [{"name": "stuck", "pending": ["never"],
                                 "waits_on": []}]
        assert d["cycles"] == []
        assert "stuck awaits never" in report.render()

    def test_untagged_future_still_described(self):
        sched = Scheduler()
        orphan = SimFuture()

        def body():
            yield Wait(orphan)

        sched.spawn("stuck", body())
        with pytest.raises(SimulationError) as err:
            sched.run()
        assert "<untagged SimFuture>" in str(err.value)

    def test_passive_processes_not_reported(self):
        sched = Scheduler()
        sched.add_passive("server0")
        orphan = SimFuture(tag="t")

        def body():
            yield Wait(orphan)

        sched.spawn("stuck", body())
        with pytest.raises(SimulationError):
            sched.run()
        report = diagnose(sched)
        assert [b.name for b in report.blocked] == ["stuck"]
