"""Failure injection and synchronization-primitive tests.

A distributed engine must fail *loudly and cleanly*: handler exceptions
travel to the calling coroutine, invalid requests are rejected at the
storage boundary, and one process's failure doesn't corrupt others'
results.
"""

import numpy as np
import pytest

from repro import EngineConfig, PPRParams
from repro.engine.cluster import SimCluster
from repro.errors import ShardError, SimulationError
from repro.graph import powerlaw_cluster
from repro.partition import MetisLitePartitioner
from repro.ppr import forward_push_parallel
from repro.ppr.distributed import OptLevel, distributed_sppr_query
from repro.simt import Scheduler, Sleep, Wait
from repro.simt.sync import SimBarrier
from repro.storage import DistGraphStorage, build_shards


def make_cluster(graph, n_machines=2, seed=0):
    sharded = build_shards(
        graph, MetisLitePartitioner(seed=seed).partition(graph, n_machines)
    )
    cluster = SimCluster(sharded, EngineConfig(n_machines=n_machines))
    return sharded, cluster


class TestFailureInjection:
    def test_invalid_remote_ids_raise_in_caller(self):
        graph = powerlaw_cluster(200, 5, seed=0)
        sharded, cluster = make_cluster(graph)
        name = "compute:0.0"
        g = DistGraphStorage(cluster.rrefs, 0, name)
        caught = []

        def driver():
            fut = g.get_neighbor_infos(1, np.array([10**6]))
            try:
                yield Wait(fut)
            except ShardError as exc:
                caught.append(str(exc))

        cluster.spawn_compute(0, 0, driver())
        cluster.run()
        assert caught and "out of range" in caught[0]

    def test_one_failing_driver_does_not_corrupt_others(self):
        graph = powerlaw_cluster(400, 6, mixing=0.2, seed=1)
        sharded, cluster = make_cluster(graph, n_machines=2)
        params = PPRParams(epsilon=1e-5)

        good_name = "compute:0.0"
        bad_name = "compute:1.0"
        g_good = DistGraphStorage(cluster.rrefs, 0, good_name)
        g_bad = DistGraphStorage(cluster.rrefs, 1, bad_name)
        source = int(sharded.shards[0].core_global[0])
        results = {}

        def good_driver():
            proc = cluster.scheduler.processes[good_name]
            lid = int(sharded.owner_local[source])
            state = yield from distributed_sppr_query(
                g_good, proc, lid, params, opt=OptLevel.OVERLAP
            )
            results["good"] = state
            return "ok"

        def bad_driver():
            yield Sleep(0.0)
            raise RuntimeError("injected failure")

        cluster.spawn_compute(0, 0, good_driver())
        cluster.spawn_compute(1, 0, bad_driver())
        cluster.run()
        # the bad driver's failure is recorded, not swallowed
        with pytest.raises(RuntimeError, match="injected"):
            cluster.scheduler.result_of(bad_name)
        # and the good driver's result is still correct
        ref, _, _ = forward_push_parallel(graph, source, params)
        dense = results["good"].dense_result(sharded, graph.n_nodes)
        bound = 2 * params.epsilon * graph.weighted_degrees.sum()
        assert np.abs(dense - ref).sum() <= bound

    def test_handler_exception_has_clean_virtual_time(self):
        """A failed RPC resolves its future at a finite virtual time."""

        class Bomb:
            def boom(self):
                raise ValueError("kaboom")

        from repro.rpc import RpcContext
        from repro.simt import NetworkModel
        sched = Scheduler()
        ctx = RpcContext(sched, NetworkModel())
        ctx.register_server("s0", 0)
        rref = ctx.create_remote("s0", "bomb", Bomb)
        seen = []

        def body():
            try:
                yield Wait(rref.rpc_async("w1", "boom"))
            except ValueError:
                seen.append(sched.now)

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 1, proc)
        sched.run()
        assert seen and np.isfinite(seen[0])

    def test_driver_retry_after_failure(self):
        """Drivers can catch an RPC failure and retry successfully."""

        class Flaky:
            def __init__(self):
                self.calls = 0

            def fetch(self):
                self.calls += 1
                if self.calls == 1:
                    raise ConnectionError("transient")
                return "data"

        from repro.rpc import RpcContext
        from repro.simt import NetworkModel
        sched = Scheduler()
        ctx = RpcContext(sched, NetworkModel())
        ctx.register_server("s0", 0)
        rref = ctx.create_remote("s0", "flaky", Flaky)
        outcome = []

        def body():
            for _attempt in range(3):
                try:
                    value = yield Wait(rref.rpc_async("w1", "fetch"))
                    outcome.append(value)
                    return
                except ConnectionError:
                    continue

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 1, proc)
        sched.run()
        assert outcome == ["data"]


class TestSimBarrier:
    def test_all_parties_resume_at_latest(self):
        sched = Scheduler()
        barrier = SimBarrier(3)
        resumed = {}

        def mk(name, delay):
            def body():
                yield Sleep(delay)
                proc = sched.processes[name]
                gen = yield Wait(barrier.arrive(proc.clock))
                resumed[name] = (proc.clock, gen)
            return body

        for name, delay in (("a", 1.0), ("b", 5.0), ("c", 3.0)):
            sched.spawn(name, mk(name, delay)())
        sched.run()
        for name, (clock, gen) in resumed.items():
            assert clock == pytest.approx(5.0), name
            assert gen == 0

    def test_reusable_generations(self):
        sched = Scheduler()
        barrier = SimBarrier(2)
        gens = []

        def body(name, delays):
            def run():
                for d in delays:
                    yield Sleep(d)
                    proc = sched.processes[name]
                    gen = yield Wait(barrier.arrive(proc.clock))
                    gens.append(gen)
            return run

        sched.spawn("a", body("a", [1.0, 1.0])())
        sched.spawn("b", body("b", [2.0, 2.0])())
        sched.run()
        assert sorted(gens) == [0, 0, 1, 1]
        assert barrier.generation == 2

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            SimBarrier(0)

    def test_extra_arrivals_roll_into_next_generation(self):
        """Completion resets the barrier, so arrivals beyond n_parties
        start the next generation instead of over-subscribing."""
        barrier = SimBarrier(1)
        fut = barrier.arrive(0.0)
        assert fut.done  # single party resolves immediately
        barrier2 = SimBarrier(2)
        f1 = barrier2.arrive(0.0)
        f2 = barrier2.arrive(1.0)
        assert f1.done and f2.done
        f3 = barrier2.arrive(2.0)
        assert not f3.done
        assert barrier2.generation == 1
        assert barrier2.n_waiting == 1

    def test_n_waiting(self):
        barrier = SimBarrier(3)
        assert barrier.n_waiting == 0
        barrier.arrive(0.0)
        assert barrier.n_waiting == 1
