"""Failure injection and synchronization-primitive tests.

A distributed engine must fail *loudly and cleanly*: handler exceptions
travel to the calling coroutine, invalid requests are rejected at the
storage boundary, and one process's failure doesn't corrupt others'
results.
"""

import numpy as np
import pytest

from repro import EngineConfig, GraphEngine, PPRParams, RunRequest
from repro.engine.cluster import SimCluster
from repro.errors import (
    ShardError,
    SimulationError,
    RpcTimeoutError,
    WorkerCrashedError,
)
from repro.graph import powerlaw_cluster
from repro.partition import MetisLitePartitioner
from repro.ppr import DegradationMode, forward_push_parallel
from repro.ppr.distributed import OptLevel, distributed_sppr_query
from repro.rpc import RetryPolicy, RpcContext
from repro.rpc.thread_runtime import ThreadRuntime
from repro.simt import (
    CrashWindow,
    FaultPlan,
    NetworkModel,
    Scheduler,
    Sleep,
    Wait,
)
from repro.simt.sync import SimBarrier
from repro.storage import DistGraphStorage, build_shards


def make_cluster(graph, n_machines=2, seed=0):
    sharded = build_shards(
        graph, MetisLitePartitioner(seed=seed).partition(graph, n_machines)
    )
    cluster = SimCluster(sharded, EngineConfig(n_machines=n_machines))
    return sharded, cluster


class TestFailureInjection:
    def test_invalid_remote_ids_raise_in_caller(self):
        graph = powerlaw_cluster(200, 5, seed=0)
        sharded, cluster = make_cluster(graph)
        name = "compute:0.0"
        g = DistGraphStorage(cluster.rrefs, 0, name)
        caught = []

        def driver():
            fut = g.get_neighbor_infos(1, np.array([10**6]))
            try:
                yield Wait(fut)
            except ShardError as exc:
                caught.append(str(exc))

        cluster.spawn_compute(0, 0, driver())
        cluster.run()
        assert caught and "out of range" in caught[0]

    def test_one_failing_driver_does_not_corrupt_others(self):
        graph = powerlaw_cluster(400, 6, mixing=0.2, seed=1)
        sharded, cluster = make_cluster(graph, n_machines=2)
        params = PPRParams(epsilon=1e-5)

        good_name = "compute:0.0"
        bad_name = "compute:1.0"
        g_good = DistGraphStorage(cluster.rrefs, 0, good_name)
        g_bad = DistGraphStorage(cluster.rrefs, 1, bad_name)
        source = int(sharded.shards[0].core_global[0])
        results = {}

        def good_driver():
            proc = cluster.scheduler.processes[good_name]
            lid = int(sharded.owner_local[source])
            state = yield from distributed_sppr_query(
                g_good, proc, lid, params, opt=OptLevel.OVERLAP
            )
            results["good"] = state
            return "ok"

        def bad_driver():
            yield Sleep(0.0)
            raise RuntimeError("injected failure")

        cluster.spawn_compute(0, 0, good_driver())
        cluster.spawn_compute(1, 0, bad_driver())
        cluster.run()
        # the bad driver's failure is recorded, not swallowed
        with pytest.raises(RuntimeError, match="injected"):
            cluster.scheduler.result_of(bad_name)
        # and the good driver's result is still correct
        ref, _, _ = forward_push_parallel(graph, source, params)
        dense = results["good"].dense_result(sharded, graph.n_nodes)
        bound = 2 * params.epsilon * graph.weighted_degrees.sum()
        assert np.abs(dense - ref).sum() <= bound

    def test_handler_exception_has_clean_virtual_time(self):
        """A failed RPC resolves its future at a finite virtual time."""

        class Bomb:
            def boom(self):
                raise ValueError("kaboom")

        from repro.rpc import RpcContext
        from repro.simt import NetworkModel
        sched = Scheduler()
        ctx = RpcContext(sched, NetworkModel())
        ctx.register_server("s0", 0)
        rref = ctx.create_remote("s0", "bomb", Bomb)
        seen = []

        def body():
            try:
                yield Wait(rref.rpc_async("w1", "boom"))
            except ValueError:
                seen.append(sched.now)

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 1, proc)
        sched.run()
        assert seen and np.isfinite(seen[0])

    def test_driver_retry_after_failure(self):
        """Drivers can catch an RPC failure and retry successfully."""

        class Flaky:
            def __init__(self):
                self.calls = 0

            def fetch(self):
                self.calls += 1
                if self.calls == 1:
                    raise ConnectionError("transient")
                return "data"

        from repro.rpc import RpcContext
        from repro.simt import NetworkModel
        sched = Scheduler()
        ctx = RpcContext(sched, NetworkModel())
        ctx.register_server("s0", 0)
        rref = ctx.create_remote("s0", "flaky", Flaky)
        outcome = []

        def body():
            for _attempt in range(3):
                try:
                    value = yield Wait(rref.rpc_async("w1", "fetch"))
                    outcome.append(value)
                    return
                except ConnectionError:
                    continue

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 1, proc)
        sched.run()
        assert outcome == ["data"]


class TestSimBarrier:
    def test_all_parties_resume_at_latest(self):
        sched = Scheduler()
        barrier = SimBarrier(3)
        resumed = {}

        def mk(name, delay):
            def body():
                yield Sleep(delay)
                proc = sched.processes[name]
                gen = yield Wait(barrier.arrive(proc.clock))
                resumed[name] = (proc.clock, gen)
            return body

        for name, delay in (("a", 1.0), ("b", 5.0), ("c", 3.0)):
            sched.spawn(name, mk(name, delay)())
        sched.run()
        for name, (clock, gen) in resumed.items():
            assert clock == pytest.approx(5.0), name
            assert gen == 0

    def test_reusable_generations(self):
        sched = Scheduler()
        barrier = SimBarrier(2)
        gens = []

        def body(name, delays):
            def run():
                for d in delays:
                    yield Sleep(d)
                    proc = sched.processes[name]
                    gen = yield Wait(barrier.arrive(proc.clock))
                    gens.append(gen)
            return run

        sched.spawn("a", body("a", [1.0, 1.0])())
        sched.spawn("b", body("b", [2.0, 2.0])())
        sched.run()
        assert sorted(gens) == [0, 0, 1, 1]
        assert barrier.generation == 2

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            SimBarrier(0)

    def test_extra_arrivals_roll_into_next_generation(self):
        """Completion resets the barrier, so arrivals beyond n_parties
        start the next generation instead of over-subscribing."""
        barrier = SimBarrier(1)
        fut = barrier.arrive(0.0)
        assert fut.done  # single party resolves immediately
        barrier2 = SimBarrier(2)
        f1 = barrier2.arrive(0.0)
        f2 = barrier2.arrive(1.0)
        assert f1.done and f2.done
        f3 = barrier2.arrive(2.0)
        assert not f3.done
        assert barrier2.generation == 1
        assert barrier2.n_waiting == 1

    def test_n_waiting(self):
        barrier = SimBarrier(3)
        assert barrier.n_waiting == 0
        barrier.arrive(0.0)
        assert barrier.n_waiting == 1


class Echo:
    """Trivial remote object for RPC fault tests."""

    def ping(self, x):
        return 2 * x


def run_echo_on_scheduler(plan, policy, n_calls):
    """N sequential remote echo calls on the virtual-time runtime."""
    sched = Scheduler()
    ctx = RpcContext(sched, NetworkModel(), fault_plan=plan,
                     retry_policy=policy)
    ctx.register_server("s0", 0)
    rref = ctx.create_remote("s0", "echo", Echo)
    values = []

    def body():
        for i in range(n_calls):
            values.append((yield Wait(rref.rpc_async("w1", "ping", i))))

    proc = sched.spawn("w1", body())
    ctx.register_worker("w1", 1, proc)
    sched.run()
    return ctx, values


def run_echo_on_threads(plan, policy, n_calls):
    """The same echo workload on the real-thread runtime."""
    rt = ThreadRuntime(fault_plan=plan, retry_policy=policy)
    rt.register_server("s0", 0)
    rref = rt.create_remote("s0", "echo", Echo)
    rt.register_worker("w1", 1)
    values = []

    def body():
        for i in range(n_calls):
            values.append((yield Wait(rref.rpc_async("w1", "ping", i))))

    rt.spawn("w1", body())
    rt.join()
    rt.shutdown()
    return rt, values


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(latency_spike_prob=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(slow_machines={0: 0.5})
        with pytest.raises(ValueError):
            CrashWindow(server="s0", crash_at=2.0, recover_at=1.0)

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert not FaultPlan(drop_prob=0.1).is_empty()
        assert not FaultPlan(
            crashes=(CrashWindow(server="s0", crash_at=0.0),)
        ).is_empty()

    def test_rolls_are_pure_functions_of_key(self):
        plan = FaultPlan(seed=11, drop_prob=0.5)
        rolls = [plan.roll_drop("w1", i, 1) for i in range(64)]
        assert rolls == [plan.roll_drop("w1", i, 1) for i in range(64)]
        assert any(rolls) and not all(rolls)
        # different seeds decorrelate
        other = FaultPlan(seed=12, drop_prob=0.5)
        assert rolls != [other.roll_drop("w1", i, 1) for i in range(64)]

    def test_crash_window_coverage(self):
        win = CrashWindow(server="s0", crash_at=1.0, recover_at=2.0)
        plan = FaultPlan(crashes=(win,))
        assert not plan.is_crashed("s0", 0.5)
        assert plan.is_crashed("s0", 1.0)
        assert plan.is_crashed("s0", 1.5)
        assert not plan.is_crashed("s0", 2.0)
        assert not plan.is_crashed("s1", 1.5)


class TestRpcFaultInjection:
    PLAN = FaultPlan(seed=5, drop_prob=0.3)
    POLICY = RetryPolicy(max_attempts=6, timeout=0.05)

    def test_retry_then_succeed_on_scheduler(self):
        ctx, values = run_echo_on_scheduler(self.PLAN, self.POLICY, 24)
        assert values == [2 * i for i in range(24)]
        assert ctx.retries > 0
        assert ctx.timeouts > 0
        assert ctx.dropped_messages == ctx.timeouts

    def test_deterministic_replay_across_runtimes(self):
        """The same fault plan replays identically in virtual time and on
        real threads: drop decisions are keyed on (seed, caller, call
        index, attempt), never on time or arrival order."""
        a, values_a = run_echo_on_scheduler(self.PLAN, self.POLICY, 24)
        b, values_b = run_echo_on_scheduler(self.PLAN, self.POLICY, 24)
        t, values_t = run_echo_on_threads(self.PLAN, self.POLICY, 24)
        counters = lambda c: (c.retries, c.timeouts, c.dropped_messages)
        assert counters(a) == counters(b) == counters(t)
        assert values_a == values_b == values_t

    def test_retry_exhausted_raises_timeout(self):
        plan = FaultPlan(seed=0, drop_prob=1.0)
        policy = RetryPolicy(max_attempts=3, timeout=0.01)
        sched = Scheduler()
        ctx = RpcContext(sched, NetworkModel(), fault_plan=plan,
                         retry_policy=policy)
        ctx.register_server("s0", 0)
        rref = ctx.create_remote("s0", "echo", Echo)
        caught = []

        def body():
            try:
                yield Wait(rref.rpc_async("w1", "ping", 1))
            except RpcTimeoutError as exc:
                caught.append(exc)

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 1, proc)
        sched.run()
        assert len(caught) == 1 and "3 attempt" in str(caught[0])
        assert ctx.dropped_messages == 3
        assert ctx.timeouts == 3
        assert ctx.retries == 2

    def test_retry_exhausted_raises_timeout_on_threads(self):
        plan = FaultPlan(seed=0, drop_prob=1.0)
        policy = RetryPolicy(max_attempts=3, timeout=0.01)
        with pytest.raises(RpcTimeoutError, match="3 attempt"):
            run_echo_on_threads(plan, policy, 1)

    def test_crash_then_recover_within_retry_horizon(self):
        plan = FaultPlan(seed=3, crashes=(
            CrashWindow(server="s0", crash_at=0.0, recover_at=0.02),
        ))
        policy = RetryPolicy(max_attempts=10, timeout=0.005)
        ctx, values = run_echo_on_scheduler(plan, policy, 4)
        assert values == [0, 2, 4, 6]
        assert ctx.retries > 0
        assert ctx.timeouts > 0
        assert ctx.dropped_messages == 0  # crashes lose replies, not sends

    def test_permanent_crash_raises_worker_crashed(self):
        plan = FaultPlan(seed=3, crashes=(
            CrashWindow(server="s0", crash_at=0.0),
        ))
        policy = RetryPolicy(max_attempts=3, timeout=0.005)
        sched = Scheduler()
        ctx = RpcContext(sched, NetworkModel(), fault_plan=plan,
                         retry_policy=policy)
        ctx.register_server("s0", 0)
        rref = ctx.create_remote("s0", "echo", Echo)
        caught = []

        def body():
            try:
                yield Wait(rref.rpc_async("w1", "ping", 1))
            except WorkerCrashedError as exc:
                caught.append(exc)

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 1, proc)
        sched.run()
        assert len(caught) == 1 and "crash" in str(caught[0])

    def test_local_calls_bypass_fault_injection(self):
        """Same-machine calls never traverse the lossy network."""
        plan = FaultPlan(seed=0, drop_prob=1.0)
        sched = Scheduler()
        ctx = RpcContext(sched, NetworkModel(), fault_plan=plan)
        ctx.register_server("s0", 0)
        rref = ctx.create_remote("s0", "echo", Echo)
        values = []

        def body():
            values.append((yield Wait(rref.rpc_async("w1", "ping", 21))))

        proc = sched.spawn("w1", body())
        ctx.register_worker("w1", 0, proc)  # machine 0 == server machine
        sched.run()
        assert values == [42]
        assert ctx.dropped_messages == 0

    def test_slow_machine_and_link_latency_shape_transfers(self):
        net = NetworkModel()
        plan = FaultPlan(seed=0, slow_machines={1: 4.0},
                         link_latency={(0, 1): 0.003})
        base = net.transfer_time(10_000, 1)
        shaped = net.transfer_time_under(
            plan, 10_000, 1, src_machine=0, dst_machine=1,
            caller="w1", call_index=0, attempt=1,
        )
        assert shaped == pytest.approx(4.0 * base + 0.003)
        # the reverse direction still pays the slow endpoint
        reverse = net.transfer_time_under(
            plan, 10_000, 1, src_machine=1, dst_machine=0,
            caller="w1", call_index=0, attempt=1,
        )
        assert reverse == pytest.approx(4.0 * base)


class TestEngineFaultTolerance:
    @pytest.fixture(scope="class")
    def engine(self):
        graph = powerlaw_cluster(600, 6, mixing=0.2, seed=2)
        return GraphEngine(graph, EngineConfig(n_machines=2))

    def test_empty_plan_keeps_fast_path(self, engine):
        run = engine.run(RunRequest(n_queries=4, fault_plan=FaultPlan()))
        assert run.retries == run.timeouts == run.dropped_messages == 0
        assert run.degraded_queries == 0

    def test_engine_counters_replay_byte_identical(self, engine):
        req = RunRequest(n_queries=6,
                         fault_plan=FaultPlan(seed=2, drop_prob=0.4),
                         retry_policy=RetryPolicy(max_attempts=8))
        a = engine.run(req)
        b = engine.run(req)
        assert a.retries > 0 and a.timeouts > 0 and a.dropped_messages > 0
        assert (a.retries, a.timeouts, a.dropped_messages,
                a.degraded_queries, a.abandoned_mass) == \
               (b.retries, b.timeouts, b.dropped_messages,
                b.degraded_queries, b.abandoned_mass)

    def test_fail_fast_propagates_crash(self, engine):
        plan = FaultPlan(seed=1, crashes=(
            CrashWindow(server="server:1", crash_at=0.0),
        ))
        with pytest.raises(WorkerCrashedError):
            engine.run(RunRequest(
                n_queries=6, fault_plan=plan,
                retry_policy=RetryPolicy(max_attempts=2, timeout=0.01),
            ))

    def test_skip_remote_bounds_accuracy_loss(self, engine):
        params = PPRParams(epsilon=1e-5)
        plan = FaultPlan(seed=1, crashes=(
            CrashWindow(server="server:1", crash_at=0.0),
        ))
        run = engine.run(RunRequest(
            n_queries=6, params=params, fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, timeout=0.01),
            degradation=DegradationMode.SKIP_REMOTE, keep_states=True,
        ))
        assert run.degraded_queries > 0
        assert run.abandoned_mass > 0
        graph = engine.graph
        push_bound = 2 * params.epsilon * graph.weighted_degrees.sum()
        degraded = 0
        for gid, state in run.states.items():
            # mass conservation: estimate + live residual + written-off
            n = len(state.map)
            total = (state.ppr[:n].sum() + state.residual[:n].sum()
                     + state.abandoned_mass)
            assert total == pytest.approx(1.0, abs=1e-9)
            # abandoned residual bounds the extra L1 error
            ref, _, _ = forward_push_parallel(graph, gid, params)
            dense = state.dense_result(engine.sharded, graph.n_nodes)
            err = np.abs(dense - ref).sum()
            assert err <= push_bound + state.abandoned_mass + 1e-9
            degraded += state.skipped_fetches > 0
        assert degraded == run.degraded_queries

    def test_crash_recover_mid_batch_succeeds(self, engine):
        plan = FaultPlan(seed=2, crashes=(
            CrashWindow(server="server:1", crash_at=0.0, recover_at=0.02),
        ))
        run = engine.run(RunRequest(
            n_queries=6, fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=10, timeout=0.005),
        ))
        assert run.retries > 0
        assert run.degraded_queries == 0
        assert run.n_queries == 6


class TestStreamIngestAtomicity:
    """Chaos on the two-phase update path: batches apply atomically.

    Whatever the network does — dropped stages, dropped commits, a
    crashed storage server — an update batch either lands on *every*
    shard and the driver mirror, or on none of them.
    """

    def _engine_and_payloads(self, seed=0):
        from repro.stream import (DynamicGraph, TemporalEdgeStream,
                                  build_shard_payloads)

        graph = powerlaw_cluster(150, 5, mixing=0.25, seed=6)
        engine = GraphEngine(graph, EngineConfig(n_machines=2, seed=0))
        dyn = DynamicGraph.from_csr(graph)
        delta = dyn.apply(
            TemporalEdgeStream(graph, seed=seed, batch_size=12).next_batch())
        payloads = build_shard_payloads(engine.sharded, dyn, delta.changed)
        return engine, payloads

    @staticmethod
    def _shard_images(engine):
        return [(s.indptr.copy(), s.nbr_global.copy(), s.nbr_weight.copy(),
                 s.core_wdeg.copy()) for s in engine.sharded.shards]

    @staticmethod
    def _assert_unchanged(engine, images):
        for shard, (indptr, gids, wts, wdeg) in zip(engine.sharded.shards,
                                                    images):
            np.testing.assert_array_equal(shard.indptr, indptr)
            np.testing.assert_array_equal(shard.nbr_global, gids)
            np.testing.assert_array_equal(shard.nbr_weight, wts)
            np.testing.assert_array_equal(shard.core_wdeg, wdeg)

    def test_total_drop_aborts_cleanly_sim(self):
        from repro.stream import ingest_on_cluster

        engine, payloads = self._engine_and_payloads()
        images = self._shard_images(engine)
        outcome, metrics, _ = ingest_on_cluster(
            engine, payloads, 1,
            fault_plan=FaultPlan(seed=3, drop_prob=1.0),
            retry_policy=RetryPolicy(max_attempts=2, timeout=0.01))
        assert outcome["status"] == "aborted"
        self._assert_unchanged(engine, images)
        assert metrics.counters().get("stream.batches_committed", 0) == 0

    def test_total_drop_aborts_cleanly_threads(self):
        from repro.stream import ingest_on_threads

        engine, payloads = self._engine_and_payloads()
        images = self._shard_images(engine)
        outcome, _, _ = ingest_on_threads(
            engine, payloads, 1,
            fault_plan=FaultPlan(seed=3, drop_prob=1.0),
            retry_policy=RetryPolicy(max_attempts=2, timeout=0.01))
        assert outcome["status"] == "aborted"
        self._assert_unchanged(engine, images)

    def test_crashed_server_aborts_cleanly_sim(self):
        from repro.stream import ingest_on_cluster

        engine, payloads = self._engine_and_payloads()
        images = self._shard_images(engine)
        outcome, _, _ = ingest_on_cluster(
            engine, payloads, 1,
            fault_plan=FaultPlan(seed=4, crashes=(
                CrashWindow(server="server:1", crash_at=0.0),
            )),
            retry_policy=RetryPolicy(max_attempts=2, timeout=0.01))
        assert outcome["status"] == "aborted"
        self._assert_unchanged(engine, images)

    def test_moderate_drops_apply_after_retries(self):
        from repro.stream import ingest_on_cluster, ingest_on_threads

        for runner in (ingest_on_cluster, ingest_on_threads):
            engine, payloads = self._engine_and_payloads()
            outcome, metrics, retries = runner(
                engine, payloads, 1,
                fault_plan=FaultPlan(seed=2, drop_prob=0.4),
                retry_policy=RetryPolicy(max_attempts=8, timeout=5.0))
            assert outcome["status"] == "applied", runner.__name__
            assert retries > 0
            assert metrics.counters()["stream.batches_committed"] == 1

    def test_session_reverts_mirror_on_failure(self):
        """A failed batch leaves the driver-side mirror bitwise intact,
        and a later healthy batch still goes through."""
        from repro.errors import StreamIngestError
        from repro.stream import (StreamConfig, StreamingSession,
                                  TemporalEdgeStream)

        graph = powerlaw_cluster(150, 5, mixing=0.25, seed=6)
        engine = GraphEngine(graph, EngineConfig(n_machines=2, seed=0))
        session = StreamingSession(engine, StreamConfig(runtime="sim"))
        stream = TemporalEdgeStream(graph, seed=1, batch_size=12)

        session.config.fault_plan = FaultPlan(seed=3, drop_prob=1.0)
        session.config.retry_policy = RetryPolicy(max_attempts=2,
                                                  timeout=0.01)
        with pytest.raises(StreamIngestError):
            session.ingest(stream.next_batch())
        assert session.report.n_failed == 1
        snap = session.dyn.snapshot()
        np.testing.assert_array_equal(snap.indices, graph.indices)
        np.testing.assert_array_equal(snap.weights, graph.weights)

        session.config.fault_plan = None
        session.config.retry_policy = None
        report = session.ingest(stream.next_batch())
        assert report.applied
        assert session.report.n_applied == 1
