"""The benchmark observatory: reports, expectations, baselines, gating.

Covers ``repro.obs.bench`` in isolation (schema validation, the
expectations mini-language, the exact-vs-tolerance comparator, best-of-N
merging, the txt/json linter) and the ``repro.cli bench`` surface (check
exit codes, diff rendering, the legacy ``bench <graph>`` shim) plus the
scale-keyed bench caches.
"""

import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    BenchReport,
    REPORT_SCHEMA,
    build_trajectory,
    compare_trajectories,
    evaluate_expectations,
    expectation_applies,
    lint_results,
    load_report,
    merge_reports,
    regressions,
    render_diff,
    validate_report,
    write_report,
)


def make_report(rows=None, **kw):
    defaults = dict(
        name="demo", title="Demo bench", scale="tiny",
        rows=rows or [
            {"Dataset": "a", "RPCs": 10, "Time (s)": 1.5, "q/s": 8.0},
            {"Dataset": "b", "RPCs": 20, "Time (s)": 3.0, "q/s": 4.0},
        ],
        key=("Dataset",), deterministic=("RPCs",),
        higher_is_better=("q/s",), lower_is_better=("Time (s)",),
        git_rev="abc1234", env={"python": "3"}, created_unix=1.0,
    )
    defaults.update(kw)
    return BenchReport(**defaults)


class TestInjectableClock:
    def test_created_unix_uses_injected_clock(self):
        from repro.obs.bench import set_wall_clock

        set_wall_clock(lambda: 1234.5)
        try:
            rep = BenchReport(name="c", title="Clock", scale="tiny",
                              rows=[{"K": "a", "V": 1}], key=("K",))
            assert rep.created_unix == 1234.5
            traj = build_trajectory([rep.to_dict()], "tiny")
            assert traj["created_unix"] == 1234.5
        finally:
            set_wall_clock(None)

    def test_restored_clock_is_wall_time(self):
        from repro.obs.bench import set_wall_clock
        from repro.utils.timer import wall_unix

        assert set_wall_clock(None) is wall_unix
        rep = BenchReport(name="c", title="Clock", scale="tiny",
                          rows=[{"K": "a", "V": 1}], key=("K",))
        assert rep.created_unix > 1.6e9  # a real Unix timestamp

    def test_explicit_created_unix_wins(self):
        rep = make_report()  # created_unix=1.0 passed explicitly
        assert rep.created_unix == 1.0


class TestReportSchema:
    def test_roundtrip(self, tmp_path):
        rep = make_report(extra={"fitted": 2.5}, metrics={"rpc.calls": 30},
                          wall_s=0.5, virtual_s=4.5)
        path = write_report(tmp_path / "demo.json", rep)
        d = load_report(path)
        assert d["schema"] == REPORT_SCHEMA
        back = BenchReport.from_dict(d)
        assert back.rows == rep.rows
        assert back.key == ("Dataset",)
        assert back.metrics == {"rpc.calls": 30}
        assert back.wall_s == 0.5 and back.virtual_s == 4.5

    def test_numeric_records_excludes_keys_and_strings(self):
        rep = make_report(rows=[
            {"Dataset": "a", "RPCs": 10, "note": "fast", "ok": True},
        ])
        recs = rep.numeric_records()
        assert recs == {"a": {"RPCs": 10, "ok": True}}

    def test_validate_catches_structure(self):
        good = make_report().to_dict()
        assert validate_report(good) == []
        assert validate_report({"schema": "nope"})
        bad = make_report().to_dict()
        bad["scale"] = "huge"
        assert any("scale" in e for e in validate_report(bad))
        bad = make_report().to_dict()
        bad["rows"] = []
        assert any("non-empty" in e for e in validate_report(bad))
        bad = make_report().to_dict()
        del bad["rows"][1]["Dataset"]
        assert any("key column" in e for e in validate_report(bad))
        bad = make_report().to_dict()
        bad["rows"][1]["Dataset"] = "a"  # duplicate row key
        assert any("duplicate" in e for e in validate_report(bad))
        bad = make_report().to_dict()
        bad["rows"][0]["Time (s)"] = float("nan")
        assert any("non-finite" in e for e in validate_report(bad))
        bad = make_report().to_dict()
        bad["deterministic"] = ["Missing col"]
        assert any("deterministic" in e for e in validate_report(bad))

    def test_from_dict_rejects_invalid(self):
        bad = make_report().to_dict()
        bad["rows"] = []
        with pytest.raises(ValueError, match="invalid bench report"):
            BenchReport.from_dict(bad)


class TestExpectations:
    def run(self, exps, rows=None, extra=None, scale="tiny"):
        rep = make_report(rows=rows, expectations=list(exps),
                          extra=extra or {}, scale=scale)
        return evaluate_expectations(rep.to_dict())

    def test_cmp_with_factor_and_aggregates(self):
        exps = [{"kind": "cmp", "label": "b slower than a",
                 "left": {"col": "Time (s)", "where": {"Dataset": "b"}},
                 "op": "gt",
                 "right": {"col": "Time (s)", "where": {"Dataset": "a"}},
                 "factor": 1.5, "scales": "all"}]
        assert self.run(exps) == []
        exps[0]["factor"] = 3.0  # 3.0 !> 1.5*3.0
        (msg,) = self.run(exps)
        assert "b slower than a" in msg

    def test_cmp_extra_refs(self):
        exps = [{"kind": "cmp", "left": {"extra": "fitted"}, "op": "gt",
                 "right": 2.0, "scales": "all"}]
        assert self.run(exps, extra={"fitted": 2.5}) == []
        assert self.run(exps, extra={"fitted": 1.0})

    def test_per_row_against_column_and_literal(self):
        exps = [{"kind": "per_row", "left_col": "q/s", "op": "gt",
                 "right": 0, "scales": "all"},
                {"kind": "per_row", "left_col": "RPCs", "op": "le",
                 "right_col": "RPCs", "scales": "all"}]
        assert self.run(exps) == []
        bad = [{"kind": "per_row", "label": "impossible",
                "left_col": "q/s", "op": "gt", "right": 100,
                "scales": "all"}]
        (msg,) = self.run(bad)
        assert "impossible" in msg and "!gt" in msg

    def test_monotone_with_order_col(self):
        rows = [{"Dataset": "a", "n": 3, "v": 30.0},
                {"Dataset": "b", "n": 1, "v": 10.0},
                {"Dataset": "c", "n": 2, "v": 20.0}]
        exps = [{"kind": "monotone", "col": "v", "order_col": "n",
                 "direction": "increasing", "scales": "all"}]
        assert self.run(exps, rows=rows) == []
        rows[0]["v"] = 5.0  # now not increasing in n-order
        assert self.run(exps, rows=rows)

    def test_bounds_and_all_true(self):
        rows = [{"Dataset": "a", "ratio": 1.2, "Correct": True},
                {"Dataset": "b", "ratio": 2.9, "Correct": True}]
        exps = [{"kind": "bounds", "col": "ratio", "lo": 1.0, "hi": 3.0,
                 "scales": "all"},
                {"kind": "all_true", "col": "Correct", "scales": "all"}]
        assert self.run(exps, rows=rows) == []
        rows[1]["ratio"] = 3.5
        rows[0]["Correct"] = False
        msgs = self.run(exps, rows=rows)
        assert len(msgs) == 2

    def test_ratio_of_ratios(self):
        rows = [{"Dataset": "a", "hi": 8.0, "lo": 2.0}]
        exps = [{"kind": "ratio",
                 "left": [{"col": "hi"}, {"col": "lo"}],
                 "op": "gt", "right": 3.0, "scales": "all"}]
        assert self.run(exps, rows=rows) == []
        exps[0]["right"] = 5.0
        assert self.run(exps, rows=rows)

    def test_scale_gating(self):
        full_only = {"kind": "per_row", "left_col": "q/s", "op": "gt",
                     "right": 100}  # default scales: ["full"]
        assert not expectation_applies(full_only, "tiny")
        assert expectation_applies(full_only, "full")
        assert expectation_applies({**full_only, "scales": "all"}, "tiny")
        # gated out at tiny -> no failure even though the claim is false
        assert self.run([full_only], scale="tiny") == []

    def test_unevaluable_reports_not_crashes(self):
        exps = [{"kind": "cmp", "left": {"col": "No such"}, "op": "gt",
                 "right": 0, "scales": "all"}]
        (msg,) = self.run(exps)
        assert "unevaluable" in msg


class TestComparator:
    def trajectories(self, mutate=None):
        base_rep = make_report()
        cur_rep = make_report()
        if mutate:
            mutate(cur_rep)
        base = build_trajectory([base_rep.to_dict()], "tiny")
        cur = build_trajectory([cur_rep.to_dict()], "tiny")
        return base, cur

    def test_identical_is_clean(self):
        base, cur = self.trajectories()
        assert compare_trajectories(base, cur) == []

    def test_deterministic_drift_names_bench_and_field(self):
        def mutate(rep):
            rep.rows[0]["RPCs"] = 11
        base, cur = self.trajectories(mutate)
        (d,) = regressions(compare_trajectories(base, cur))
        assert d.bench == "demo" and d.field == "a.RPCs"
        assert d.kind == "deterministic" and d.base == 10 and d.cur == 11
        assert "demo.a.RPCs" in d.describe()

    def test_wall_fields_skipped_without_rtol(self):
        def mutate(rep):
            rep.rows[0]["q/s"] = 1.0  # huge throughput drop
        base, cur = self.trajectories(mutate)
        assert compare_trajectories(base, cur) == []

    def test_wall_rtol_gates_by_direction(self):
        def slower(rep):
            rep.rows[0]["q/s"] = 6.0       # fell 25%
            rep.rows[0]["Time (s)"] = 1.2  # improved — fine
        base, cur = self.trajectories(slower)
        regs = regressions(compare_trajectories(base, cur, wall_rtol=0.1))
        assert [d.field for d in regs] == ["a.q/s"]

        def faster(rep):
            rep.rows[0]["q/s"] = 50.0  # improvement is never a regression
        base, cur = self.trajectories(faster)
        deltas = compare_trajectories(base, cur, wall_rtol=0.1)
        assert deltas and not regressions(deltas)

    def test_structural_drift_always_regresses(self):
        def drop_row(rep):
            del rep.rows[1]
        base, cur = self.trajectories(drop_row)
        regs = regressions(compare_trajectories(base, cur))
        assert any(d.field == "n_rows" for d in regs)
        assert any("disappeared" in d.note for d in regs)

        base, _ = self.trajectories()
        regs = regressions(compare_trajectories(base, {"benches": {}}))
        assert any(d.field == "<bench>" for d in regs)

    def test_new_bench_is_note_only(self):
        base, cur = self.trajectories()
        extra = make_report(name="newbench")
        cur2 = build_trajectory([make_report().to_dict(),
                                 extra.to_dict()], "tiny")
        deltas = compare_trajectories(base, cur2)
        assert len(deltas) == 1 and not deltas[0].regressed

    def test_render_diff_readable(self):
        def mutate(rep):
            rep.rows[0]["RPCs"] = 99
        base, cur = self.trajectories(mutate)
        text = render_diff(base, cur)
        assert "baseline: scale=tiny" in text
        assert "-- demo" in text
        assert "a.RPCs" in text and "10 -> 99" in text
        assert "1 regression(s)" in text
        base, cur = self.trajectories()
        assert "no differences." in render_diff(base, cur)


class TestMergeReports:
    def reps(self, qps):
        out = []
        for v in qps:
            rep = make_report()
            rep.rows[0]["q/s"] = v
            out.append(rep.to_dict())
        return out

    def test_best_of_n_picks_by_direction(self):
        merged = merge_reports(self.reps([8.0, 12.0, 10.0]))
        assert merged["rows"][0]["q/s"] == 12.0  # higher_is_better -> max
        assert merged["reps"] == 3

    def test_lower_is_better_takes_min(self):
        reps = self.reps([8.0, 8.0])
        reps[1]["rows"][0]["Time (s)"] = 0.9
        merged = merge_reports(reps)
        assert merged["rows"][0]["Time (s)"] == 0.9

    def test_deterministic_mismatch_raises(self):
        reps = self.reps([8.0, 8.0])
        reps[1]["rows"][0]["RPCs"] = 11
        with pytest.raises(ValueError, match="deterministic field a.RPCs"):
            merge_reports(reps)


class TestResultsLinter:
    def write_pair(self, tmp_path, rows=None, body_lines=None):
        rep = make_report(rows=rows)
        write_report(tmp_path / "demo.json", rep)
        if body_lines is None:
            body_lines = ["  ".join(str(v) for v in row.values())
                          for row in rep.rows]
        txt = "\n".join(["== Demo bench ==", "Dataset RPCs Time q/s",
                         "-" * 30] + body_lines)
        (tmp_path / "demo.txt").write_text(txt + "\n")
        return rep

    def test_consistent_pair_is_clean(self, tmp_path):
        self.write_pair(tmp_path)
        assert lint_results(tmp_path) == []

    def test_missing_txt_sibling(self, tmp_path):
        write_report(tmp_path / "demo.json", make_report())
        (msg,) = lint_results(tmp_path)
        assert "missing .txt sibling" in msg

    def test_row_count_mismatch(self, tmp_path):
        self.write_pair(tmp_path, body_lines=["a 10 1.5 8.0"])
        (msg,) = lint_results(tmp_path)
        assert "row count mismatch" in msg

    def test_headline_value_drift(self, tmp_path):
        self.write_pair(tmp_path,
                        body_lines=["a 999 1.5 8.0", "b 20 3.0 4.0"])
        (msg,) = lint_results(tmp_path)
        assert "RPCs" in msg and "10" in msg


class TestBenchCli:
    @pytest.fixture()
    def results_dir(self, tmp_path):
        d = tmp_path / "results"
        d.mkdir()
        rep = make_report()
        write_report(d / "demo.json", rep)
        body = ["  ".join(str(v) for v in row.values()) for row in rep.rows]
        (d / "demo.txt").write_text("\n".join(
            ["== Demo bench ==", "Dataset RPCs Time q/s", "-" * 30] + body
        ) + "\n")
        return d

    def write_baseline(self, tmp_path, mutate=None):
        rep = make_report()
        if mutate:
            mutate(rep)
        traj = build_trajectory([rep.to_dict()], "tiny")
        path = tmp_path / "BENCH_tiny.json"
        path.write_text(json.dumps(traj))
        return path

    def test_check_ok(self, tmp_path, results_dir, capsys):
        baseline = self.write_baseline(tmp_path)
        rc = main(["bench", "check", "--scale", "tiny",
                   "--baseline", str(baseline),
                   "--results-dir", str(results_dir)])
        assert rc == 0
        assert "bench check OK" in capsys.readouterr().out

    def test_check_fails_naming_metric(self, tmp_path, results_dir, capsys):
        def mutate(rep):
            rep.rows[0]["RPCs"] = 11
        baseline = self.write_baseline(tmp_path, mutate)
        rc = main(["bench", "check", "--scale", "tiny",
                   "--baseline", str(baseline),
                   "--results-dir", str(results_dir)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSION" in out and "demo.a.RPCs" in out
        assert "bench check FAILED" in out

    def test_check_fails_on_stored_expectation(self, tmp_path, capsys):
        d = tmp_path / "results"
        d.mkdir()
        rep = make_report(expectations=[
            {"kind": "per_row", "label": "impossible", "left_col": "q/s",
             "op": "gt", "right": 100, "scales": "all"},
        ])
        write_report(d / "demo.json", rep)
        baseline = self.write_baseline(tmp_path)
        rc = main(["bench", "check", "--scale", "tiny",
                   "--baseline", str(baseline), "--results-dir", str(d),
                   "--no-lint"])
        out = capsys.readouterr().out
        assert rc == 1 and "EXPECTATION" in out and "impossible" in out

    def test_diff_command(self, tmp_path, results_dir, capsys):
        def mutate(rep):
            rep.rows[0]["RPCs"] = 99
        baseline = self.write_baseline(tmp_path, mutate)
        rc = main(["bench", "diff", str(baseline),
                   "--results-dir", str(results_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "a.RPCs" in out and "99 -> 10" in out

    def test_lint_command(self, tmp_path, results_dir, capsys):
        assert main(["bench", "lint",
                     "--results-dir", str(results_dir)]) == 0
        (results_dir / "demo.txt").write_text("== Demo ==\nh\n---\nonly\n")
        assert main(["bench", "lint",
                     "--results-dir", str(results_dir)]) == 1
        assert "LINT" in capsys.readouterr().out

    def test_report_command(self, results_dir, capsys):
        rc = main(["bench", "report", "--scale", "tiny",
                   "--results-dir", str(results_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "demo" in out and "bench" in out

    def test_legacy_bench_shim_routes_to_quick(self, tmp_path, capsys):
        from repro.graph import powerlaw_cluster, save_npz
        path = str(tmp_path / "g.npz")
        save_npz(path, powerlaw_cluster(300, 5, mixing=0.2, seed=0))
        rc = main(["bench", path, "--machines", "2", "--queries", "2"])
        assert rc == 0
        assert "engine" in capsys.readouterr().out.lower()


class TestScaleKeyedCaches:
    def test_get_graph_keyed_on_scale(self, monkeypatch):
        from benchmarks import common
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        g_tiny = common.get_graph("products")
        assert g_tiny is common.get_graph("products")  # cached
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        g_small = common.get_graph("products")
        assert g_small is not g_tiny
        assert g_small.n_nodes > g_tiny.n_nodes
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert common.get_graph("products") is g_tiny

    def test_get_sharded_keyed_on_scale(self, monkeypatch):
        from benchmarks import common
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        s_tiny = common.get_sharded("products", 2)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        s_small = common.get_sharded("products", 2)
        assert s_small is not s_tiny
        assert s_small.graph.n_nodes > s_tiny.graph.n_nodes
